#!/usr/bin/env python
"""Key-distribution study: does the input's shape matter? (Figures 5/9.)

Sorts all eight of the paper's key distributions at a large labeled size
under both algorithms and prints times relative to Gauss.  The punchline
(Section 4.2.2): realistic distributions barely differ, but distributions
whose keys arrive pre-grouped by destination (local, remote) avoid TLB and
cache misses in the local permutation and win once the per-processor data
no longer fits in L2.

Run:  python examples/distribution_study.py
"""

import numpy as np

import repro
from repro.data import PAPER_ORDER
from repro.report import bar_chart

N_PROCS = 64
N_LABELED = repro.SIZES["64M"]
SAMPLE = 1 << 17


def study(algorithm: str, model: str, radix: int) -> None:
    times = {}
    for dist in PAPER_ORDER:
        keys = repro.data.generate(dist, SAMPLE, N_PROCS, radix=radix)
        out = repro.simulate_sort(
            keys, algorithm=algorithm, model=model, n_procs=N_PROCS,
            radix=radix, n_labeled=N_LABELED,
        )
        assert np.array_equal(out.sorted_keys, np.sort(keys))
        times[dist] = out.time_ns
    rel = {d: t / times["gauss"] for d, t in times.items()}
    print()
    print(bar_chart(rel, title=f"{algorithm}/{model}, 64M keys, rel. gauss",
                    unit="x"))


def main() -> None:
    study("radix", "shmem", 8)
    study("sample", "ccsas", 11)


if __name__ == "__main__":
    main()
