#!/usr/bin/env python
"""Phase-level profiling: where does a parallel sort spend its time?

Reproduces the paper's instrumentation view for two contrasting runs --
the collapsed CC-SAS radix sort (exchange-dominated) and the healthy
SHMEM one (compute-dominated) -- phase by phase with imbalance factors.

Run:  python examples/phase_profile.py
"""

import repro
from repro.report import format_profile, profile_by_step

N_PROCS = 64
N_LABELED = repro.SIZES["64M"]
SAMPLE = 1 << 17


def main() -> None:
    keys = repro.data.generate("gauss", SAMPLE, N_PROCS)
    for model in ("ccsas", "shmem"):
        out = repro.simulate_sort(
            keys, algorithm="radix", model=model, n_procs=N_PROCS,
            radix=8, n_labeled=N_LABELED,
        )
        print()
        print(format_profile(out, min_ns=1e6))  # phases above 1 ms
        steps = profile_by_step(out)
        total = sum(steps.values()) or 1.0
        top = max(steps, key=steps.get)
        print(f"-> dominant step under {model}: '{top}' "
              f"({steps[top] / total:.0%} of phase time)")


if __name__ == "__main__":
    main()
