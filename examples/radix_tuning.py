#!/usr/bin/env python
"""Radix-size tuning (Figures 6/10): how wide should a digit be?

The radix r fixes the pass count (ceil(31/r)) against the per-pass message
count (2**r per processor).  Small data sets want few messages (small r
... wait, the opposite!): small data sets amortize message overhead badly,
so FEWER, larger messages -- i.e. a small radix and more passes -- win;
large data sets want fewer passes.  This script sweeps r for several
labeled sizes and reports the winner, reproducing the paper's observation
that the optimal radix grows with the data-set size.

Run:  python examples/radix_tuning.py
"""

import repro
from repro.report import format_table

N_PROCS = 64
SAMPLE = 1 << 16
RADIXES = range(6, 13)


def best_radix(algorithm: str, model: str, n_labeled: int) -> tuple[int, dict]:
    times = {}
    for r in RADIXES:
        keys = repro.data.generate("gauss", SAMPLE, N_PROCS, radix=r)
        out = repro.simulate_sort(
            keys, algorithm=algorithm, model=model, n_procs=N_PROCS,
            radix=r, n_labeled=n_labeled,
        )
        times[r] = out.time_ns
    winner = min(times, key=times.get)
    return winner, times


def main() -> None:
    rows = []
    for label in ("1M", "4M", "16M", "64M", "256M"):
        n = repro.SIZES[label]
        r_radix, t_radix = best_radix("radix", "shmem", n)
        r_sample, t_sample = best_radix("sample", "ccsas", n)
        rows.append(
            [
                label,
                r_radix,
                f"{t_radix[r_radix] / 1e6:.1f} ms",
                r_sample,
                f"{t_sample[r_sample] / 1e6:.1f} ms",
            ]
        )
    print(
        format_table(
            ["size", "radix: best r", "time", "sample: best r", "time"],
            rows,
            title="Optimal radix size per data-set size (paper Figs 6/10)",
        )
    )
    print("\nPaper: radix sort's best r grows 7 -> 12 with size; sample")
    print("sort prefers r=11 almost everywhere (local passes dominate).")


if __name__ == "__main__":
    main()
