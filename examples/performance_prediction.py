#!/usr/bin/env python
"""Performance prediction without sorting anything.

Implements the paper's stated future work ("developing a formula ... to
predict performance for each programming model"): closed-form per-model
time predictions for uniform random keys, instantly, for any (n, p, r) --
including configurations far beyond what the paper measured.

Run:  python examples/performance_prediction.py
"""

import repro
from repro.report import format_table

MODELS = ["ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem"]


def main() -> None:
    rows = []
    for label in ("1M", "16M", "256M"):
        n = repro.SIZES[label]
        for p in (16, 64):
            row = [f"{label}/{p}p"]
            for m in MODELS:
                t = repro.predict_time("radix", m, n, p, 8)
                row.append(f"{t / 1e6:,.0f}")
            rows.append(row)
    print(
        format_table(
            ["cell"] + MODELS, rows,
            title="Predicted radix-sort times (ms), uniform keys",
        )
    )

    print("\nExtrapolating beyond the paper's grid:")
    for n_log, label in ((28, "256M"), (30, "1G"), (32, "4G")):
        t = repro.predict_time("radix", "shmem", 1 << n_log, 64, 12)
        print(f"  {label:>4} keys, radix 12, 64p:  {t / 1e9:6.1f} s")
    print("\nThe paper measured 30 s for 1G keys at radix 12 (Section 4.2.3);")
    print("the calibrated formula predicts ~38 s.")

    print("\n128-processor what-if (the machine the paper's reference [8]")
    print("studied):")
    for m in ("ccsas", "shmem"):
        s = repro.predict_speedup("radix", m, repro.SIZES["256M"], 128, 12)
        print(f"  radix/{m:<6} 256M keys on 128p: predicted speedup {s:6.1f}x")


if __name__ == "__main__":
    main()
