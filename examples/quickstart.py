#!/usr/bin/env python
"""Quickstart: sort one workload on the simulated machine.

Generates 256K Gauss-distributed keys (the NAS-IS workload the paper
defaults to), sorts them with parallel radix sort under the SHMEM model on
a simulated 64-processor Origin2000, and prints where the time went.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

N = 1 << 18
N_PROCS = 64


def main() -> None:
    keys = repro.data.generate("gauss", N, N_PROCS)
    print(f"sorting {N:,} Gauss keys on {N_PROCS} simulated processors...")

    out = repro.simulate_sort(keys, algorithm="radix", model="shmem",
                              n_procs=N_PROCS, radix=8)
    assert np.array_equal(out.sorted_keys, np.sort(keys))

    seq = repro.sequential_baseline(keys)
    print(f"  sorted correctly in {out.passes} radix passes")
    print(f"  simulated parallel time : {out.time_us / 1e3:10.2f} ms")
    print(f"  simulated 1-cpu baseline: {seq.time_us / 1e3:10.2f} ms")
    print(f"  speedup vs baseline     : {out.speedup_vs(seq.time_ns):10.1f}x")

    print("\nwhere the time goes (mean per processor):")
    for category, ns in out.report.category_means_ns().items():
        frac = out.report.category_fractions()[category]
        print(f"  {category:<5} {ns / 1e6:9.2f} ms  ({frac:6.1%})")

    print("\ntry:  model='ccsas' | 'ccsas-new' | 'mpi-new' | 'mpi-sgi',")
    print("      algorithm='sample', n_procs=16/32/64, radix=6..12")


if __name__ == "__main__":
    main()
