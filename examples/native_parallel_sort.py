#!/usr/bin/env python
"""Actually-parallel sorting on *this* machine.

The simulation exists because the GIL forbids shared-memory parallel
sorting with threads; this example shows the same two algorithms running
for real across processes with shared-memory buffers
(:mod:`repro.native`).  Expect numpy's C sort to win on plain integers --
the interesting part is that the parallel algorithms are real, correct
and scale with workers.

Run:  python examples/native_parallel_sort.py
"""

import time

import numpy as np

from repro.native import WorkerPool, parallel_radix_sort, parallel_sample_sort

N = 1 << 21


def timed(label: str, fn) -> np.ndarray:
    t0 = time.perf_counter()
    out = fn()
    dt = time.perf_counter() - t0
    print(f"  {label:<28} {dt * 1e3:9.1f} ms")
    return out


def main() -> None:
    rng = np.random.default_rng(42)
    keys = rng.integers(0, 1 << 31, size=N, dtype=np.int64)
    print(f"sorting {N:,} random int64 keys")

    expected = timed("np.sort (1 core, C)", lambda: np.sort(keys))

    for workers in (1, 2, 4):
        with WorkerPool(workers) as pool:
            got = timed(
                f"sample sort ({workers} workers)",
                lambda: parallel_sample_sort(keys, pool=pool),
            )
            assert np.array_equal(got, expected)

    with WorkerPool(4) as pool:
        got = timed(
            "radix sort  (4 workers)",
            lambda: parallel_radix_sort(keys, pool=pool),
        )
        assert np.array_equal(got, expected)

    print("all parallel results match np.sort")


if __name__ == "__main__":
    main()
