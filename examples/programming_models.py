#!/usr/bin/env python
"""Programming-model shoot-out: the paper's central question.

Runs the same radix-sort workload under all five model implementations
(CC-SAS, CC-SAS-NEW, MPI-NEW, MPI-SGI, SHMEM) at a small and a large
labeled data-set size, and prints speedups plus per-category breakdowns --
a miniature of the paper's Figures 3 and 4.

Run:  python examples/programming_models.py
"""

import repro
from repro.report import bar_chart, breakdown_panel

N_PROCS = 64
SMALL, LARGE = repro.SIZES["1M"], repro.SIZES["64M"]
SAMPLE = 1 << 17  # functional sample size; the model sees labeled sizes


def study(n_labeled: int, label: str) -> None:
    keys = repro.data.generate("gauss", SAMPLE, N_PROCS)
    seq = repro.sequential_baseline(keys, n_labeled=n_labeled)
    outcomes = repro.compare_models(
        keys, "radix", n_procs=N_PROCS, radix=8, n_labeled=n_labeled
    )
    speedups = {m: o.speedup_vs(seq.time_ns) for m, o in outcomes.items()}
    print()
    print(bar_chart(speedups, title=f"radix sort speedups, {label} keys",
                    unit="x"))
    print()
    for m in ("ccsas", "shmem"):
        rep = outcomes[m].report
        print(breakdown_panel(f"{m} @ {label}", rep.category_means_ns(),
                              rep.total_time_ns))


def main() -> None:
    print("The paper's question: does the programming model matter?")
    study(SMALL, "1M")
    study(LARGE, "64M")
    print("\nAt 1M keys CC-SAS wins (cheap prefix-tree histograms, no")
    print("message overhead); at 64M its scattered remote writes collide")
    print("with the coherence protocol and SHMEM wins decisively.")


if __name__ == "__main__":
    main()
