"""The ambient sanitizer slot.

Mirrors :mod:`repro.trace.recorder`'s ambient-recorder mechanism: the
instrumented layers (DES kernel, resources, phase runtime, comm-matrix
construction, backends) look the current sanitizer up instead of having
one threaded through every call signature.  The default is ``None`` --
instrumented code guards every check with ``if san is not None`` so that
sanitizing costs one attribute check when off.

This module is deliberately import-free (no repro dependencies) so the
DES kernel can import it without cycles; the checks themselves live in
:mod:`repro.verify.sanitizer`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sanitizer import Sanitizer

_current: "Sanitizer | None" = None


def current_sanitizer() -> "Sanitizer | None":
    """The ambiently installed sanitizer, or ``None`` when checking is off."""
    return _current


@contextmanager
def use_sanitizer(sanitizer: "Sanitizer | None") -> Iterator["Sanitizer | None"]:
    """Install ``sanitizer`` as the ambient sanitizer for the duration.

    Note that :class:`~repro.sim.engine.Simulator` and
    :class:`~repro.smp.team.Team` capture the sanitizer at construction
    (like the trace recorder), so install it before building them.
    """
    global _current
    previous = _current
    _current = sanitizer
    try:
        yield sanitizer
    finally:
        _current = previous
