"""Simulation sanitizer and differential verification harness.

Two complementary layers of correctness tooling:

- the **runtime sanitizer** (:class:`Sanitizer`, installed ambiently with
  :func:`use_sanitizer`) enforces DES causality, resource and channel
  discipline, barrier-epoch matching, key/byte conservation and the
  paper's per-processor accounting identity while a run executes;
- the **differential oracle** (:func:`run_check`, also exposed as
  ``python -m repro check``) sweeps the model x algorithm x distribution
  grid through :func:`repro.core.api.sort` on both backends and asserts
  sorted-permutation agreement against ``np.sort`` plus report and trace
  shape sanity.

Violations raise :class:`VerifyError` naming the broken invariant; the
catalogue is documented in ``docs/VERIFY.md``.

This ``__init__`` only imports the dependency-free ambient slot eagerly:
the instrumented runtime modules (e.g. :mod:`repro.sim.engine`) import
:mod:`repro.verify.context` at module load, so everything that imports
back into the runtime is loaded lazily to keep the graph acyclic.
"""

from .context import current_sanitizer, use_sanitizer

__all__ = [
    "Sanitizer",
    "VerifyError",
    "check_chrome_trace",
    "check_comm_conservation",
    "check_report",
    "check_stream_conservation",
    "check_trace_events",
    "current_sanitizer",
    "default_grid",
    "run_check",
    "use_sanitizer",
]

_LAZY = {
    "VerifyError": "errors",
    "Sanitizer": "sanitizer",
    "check_chrome_trace": "invariants",
    "check_comm_conservation": "invariants",
    "check_report": "invariants",
    "check_stream_conservation": "invariants",
    "check_trace_events": "invariants",
    "default_grid": "differential",
    "run_check": "differential",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
