"""Differential verification across backends, models, machines and workloads.

Runs the model x algorithm x distribution grid through
:func:`repro.core.api.sort` on both execution substrates, with the
runtime sanitizer installed, and checks every run against the external
oracle ``np.sort``/``np.argsort``:

- the returned keys are exactly the sorted permutation of the input
  (payloads, where present, follow their keys through the stable
  reference permutation);
- the :class:`~repro.smp.perf.PerfReport` satisfies the accounting
  identity (enforced at the backend seam by the sanitizer);
- one traced run per backend exports a well-formed, per-track-monotone
  Chrome trace;
- the sanitizer's coverage counters prove each invariant family was
  actually evaluated -- a sweep that silently stopped checking is itself
  a failure.

Two orthogonal axes widen the sweep beyond the paper's grid
(ISSUE/docs/MACHINES.md):

- **machine**: every zoo member (:mod:`repro.machine.zoo`) runs the full
  workload matrix on the simulated backend, and machines the analytic
  predictor has no calibration artifact for must be *rejected* with a
  typed error (a silent mis-prediction is a failed cell);
- **workload**: 64-bit keys, IEEE doubles via the order-preserving
  transform, key+payload record sorts, and duplicate-heavy/adversarial
  anti-sampling distributions (:mod:`repro.data.workloads`).

Per-axis coverage counters (``axis.machine.*``, ``axis.workload.*``,
``axis.backend.*``, ``axis.negative.*``) prove every axis value was
actually exercised; an unfiltered sweep fails if any is zero.

With ``backend="predict"`` (or ``"all"``) the sweep additionally
cross-validates the analytic predictor: every simulated grid point on a
calibrated machine is re-predicted *on the same keys*, the predicted
report must satisfy the same structural invariants (sorted output,
shape, accounting identity), and the per-cell relative error of total
time against the simulation is aggregated -- the sweep fails if the
median absolute relative error over the paper's u32 workload exceeds
:data:`PREDICT_ERROR_GATE`.

Exposed as ``python -m repro check [--small] [--backend all|sim|native|predict]
[--machine NAME] [--workload KIND]``.
"""

from __future__ import annotations

import statistics
import sys
import time
from dataclasses import dataclass, replace
from typing import IO

import numpy as np

from .context import current_sanitizer, use_sanitizer
from .errors import VerifyError
from .invariants import check_trace_events
from .sanitizer import Sanitizer

#: Models per algorithm (the paper's grid; sample sort has no CC-SAS-NEW
#: variant -- its distribution phase is already chunk-contiguous).
RADIX_MODELS = ("ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem")
SAMPLE_MODELS = ("ccsas", "mpi-new", "mpi-sgi", "shmem")

#: ``--small`` keeps one distribution per communication regime: random
#: traffic (gauss), heavy duplication (zero), all-remote movement.
SMALL_DISTRIBUTIONS = ("gauss", "zero", "remote")

#: The machine-zoo members beyond the paper's Origin2000, each paired
#: with a programming model its transports support (the AP1000 has no
#: remote loads, so only message passing runs there).
NEW_MACHINES = ("multicore", "bsp", "ap1000")
ALL_MACHINES = ("origin2000",) + NEW_MACHINES

#: Workload kinds beyond the paper's uint32 keys (repro.data.workloads).
NEW_WORKLOADS = ("u64", "f64", "payload", "dupheavy", "antisample")
ALL_WORKLOADS = ("u32",) + NEW_WORKLOADS

#: Host worker processes for the native runs (small arrays; fork cost
#: dominates real sorting here).
NATIVE_WORKERS = 2

#: Differential gate for the analytic predictor: the sweep fails if the
#: median absolute relative error of predicted vs. simulated total time
#: over the paper's u32 workload exceeds this fraction.
PREDICT_ERROR_GATE = 0.15

#: Backend selections for :func:`run_check`.
CHECK_BACKENDS = ("all", "sim", "native", "predict")

#: Invariant families a healthy full sweep must have evaluated at least
#: once.  A zero count means an instrumentation hook came unplugged.
REQUIRED_COVERAGE = (
    "sim.clock-monotone",
    "resource.mutual-exclusion",
    "resource.fifo-grant",
    "resource.idle-release",
    "channel.occupancy",
    "exchange.drained",
    "team.phase-outcome",
    "team.barrier-epoch",
    "comm.key-conservation",
    "report.accounting-identity",
)

#: Axis coverage an *unfiltered* sweep must prove: every machine, every
#: workload kind, every backend, and both typed-rejection families.
REQUIRED_AXIS_COVERAGE = tuple(
    [f"axis.machine.{m}" for m in ALL_MACHINES]
    + [f"axis.workload.{w}" for w in ALL_WORKLOADS]
    + ["axis.backend.sim", "axis.backend.native", "axis.backend.predict"]
    + [
        "axis.negative.UnsupportedTransportError",
        "axis.negative.UncalibratedMachineError",
    ]
)


def machine_model(machine: str) -> str:
    """A programming model whose transports ``machine`` supports."""
    return "mpi-new" if machine == "ap1000" else "shmem"


@dataclass(frozen=True)
class CheckCase:
    """One grid point of the differential sweep."""

    backend: str
    algorithm: str
    distribution: str
    n: int
    p: int
    model: str | None = None
    #: Machine-zoo member the simulated/predicted cell runs on.
    machine: str = "origin2000"
    #: Workload kind (repro.data.workloads) the cell sorts.
    workload: str = "u32"
    #: Negative cells: the exception type name the run MUST raise;
    #: completing without it (or with a different type) fails the cell.
    expect_error: str | None = None

    @property
    def label(self) -> str:
        model = f"/{self.model}" if self.model else ""
        extra = ""
        if self.machine != "origin2000":
            extra += f" @{self.machine}"
        if self.workload != "u32":
            extra += f" [{self.workload}]"
        if self.expect_error:
            extra += f" !{self.expect_error}"
        return (
            f"{self.backend}/{self.algorithm}{model} "
            f"{self.distribution} n={self.n} p={self.p}{extra}"
        )


@dataclass
class CaseResult:
    case: CheckCase
    ok: bool
    wall_s: float
    error: str | None = None


def default_grid(
    small: bool = False, native: bool = True
) -> list[CheckCase]:
    """The sweep: every model x algorithm x distribution on the simulated
    backend plus every algorithm x distribution natively (the paper's
    grid), then the machine-zoo x workload cross-product, the widened
    workloads on the paper's machine and the native backend, and the
    typed-rejection negative cells."""
    from ..data import PAPER_ORDER

    n, p = (16 * 128, 16) if small else (16 * 512, 16)
    dists = SMALL_DISTRIBUTIONS if small else tuple(PAPER_ORDER)
    cases = []
    for dist in dists:
        for model in RADIX_MODELS:
            cases.append(CheckCase("sim", "radix", dist, n, p, model))
        for model in SAMPLE_MODELS:
            cases.append(CheckCase("sim", "sample", dist, n, p, model))
        if native:
            for algorithm in ("radix", "sample"):
                cases.append(CheckCase("native", algorithm, dist, n, p))

    # Machine zoo x workload matrix: every new machine sorts every
    # workload kind (u32 included) under both algorithms.
    for machine in NEW_MACHINES:
        model = machine_model(machine)
        for workload in ALL_WORKLOADS:
            for algorithm in ("radix", "sample"):
                cases.append(
                    CheckCase(
                        "sim", algorithm, "gauss", n, p, model,
                        machine=machine, workload=workload,
                    )
                )

    # Widened workloads on the paper's machine and on the host.
    for workload in NEW_WORKLOADS:
        for algorithm in ("radix", "sample"):
            cases.append(
                CheckCase(
                    "sim", algorithm, "gauss", n, p, "shmem",
                    workload=workload,
                )
            )
            if native:
                cases.append(
                    CheckCase(
                        "native", algorithm, "gauss", n, p,
                        workload=workload,
                    )
                )

    # Negative cells: shared-address transports cannot run on the
    # AP1000, and the predictor must refuse machines it was never
    # calibrated for -- with *typed* errors, not silent wrong numbers.
    cases.append(
        CheckCase(
            "sim", "radix", "gauss", n, p, "shmem",
            machine="ap1000", expect_error="UnsupportedTransportError",
        )
    )
    for machine in NEW_MACHINES:
        cases.append(
            CheckCase(
                "predict", "radix", "gauss", n, p, machine_model(machine),
                machine=machine, expect_error="UncalibratedMachineError",
            )
        )
    return cases


def _case_workload(case: CheckCase):
    """Generate the case's workload and its NumPy reference."""
    from ..data.workloads import make_workload, reference_sort

    w = make_workload(
        case.workload, case.n, case.p, seed=1, distribution=case.distribution
    )
    return w, reference_sort(w)


def _count_axes(case: CheckCase) -> None:
    """Per-axis coverage accounting (proves each axis value really ran)."""
    san = current_sanitizer()
    if san is None:
        return
    san.checks[f"axis.backend.{case.backend}"] += 1
    san.checks[f"axis.machine.{case.machine}"] += 1
    san.checks[f"axis.workload.{case.workload}"] += 1
    if case.expect_error:
        san.checks[f"axis.negative.{case.expect_error}"] += 1


def _run_case(case: CheckCase, backend, workload, reference):
    """Run one grid point and verify it against the NumPy reference.

    ``workload``/``reference`` are :class:`repro.data.workloads.Workload`
    instances (input and oracle).  Negative cells (``expect_error`` set)
    pass when the run raises exactly that exception type and fail
    otherwise; positive cells compare keys (and payload) against the
    reference.  Returns the backend result, or ``None`` for negative
    cells.
    """
    from ..core.api import sort
    from ..data.workloads import Workload, workloads_equal
    from ..machine.zoo import get_machine

    machine = (
        get_machine(case.machine, n_procs=case.p)
        if case.machine != "origin2000"
        else None
    )
    kwargs = dict(
        algorithm=case.algorithm,
        backend=backend,
        model=case.model or "shmem",
        n_procs=case.p if case.backend != "native" else None,
        machine=machine,
        payload=workload.payload,
    )
    if case.expect_error:
        try:
            sort(workload.keys, **kwargs)
        except Exception as exc:  # noqa: BLE001 - typed comparison below
            if type(exc).__name__ == case.expect_error:
                _count_axes(case)
                return None
            raise VerifyError(
                "differential.expected-rejection",
                f"{case.label}: raised {type(exc).__name__} instead of "
                f"{case.expect_error}: {exc}",
            ) from exc
        raise VerifyError(
            "differential.expected-rejection",
            f"{case.label}: completed without raising {case.expect_error}",
        )

    result = sort(workload.keys, **kwargs)
    got = Workload(case.workload, result.sorted_keys, result.payload)
    if not workloads_equal(got, reference):
        if len(got.keys) == len(reference.keys):
            n_bad = int(np.count_nonzero(got.keys != reference.keys))
            detail = f"disagrees with NumPy at {n_bad}/{len(got.keys)} keys"
            if (
                got.payload is not None
                and reference.payload is not None
                and not np.array_equal(got.payload, reference.payload)
            ):
                detail += " (payload did not follow its keys)"
        else:
            detail = (
                f"returned {len(got.keys)} keys, expected "
                f"{len(reference.keys)}"
            )
        raise VerifyError(
            "differential.sorted-permutation", f"{case.label}: {detail}"
        )
    if case.backend in ("sim", "predict") and result.report.n_procs != case.p:
        raise VerifyError(
            "differential.report-shape",
            f"{case.label}: report covers {result.report.n_procs} "
            f"processors, expected {case.p}",
        )
    if result.time_ns <= 0:
        raise VerifyError(
            "differential.report-shape",
            f"{case.label}: report accumulated no time",
        )
    _count_axes(case)
    return result


def _traced_probes(san: Sanitizer, n: int, p: int, native_backend) -> None:
    """One traced run per backend; the export must be track-monotone."""
    from ..core.api import sort
    from ..data import generate

    keys = generate("gauss", n, p)
    result = sort(
        keys, algorithm="radix", backend="sim", model="mpi-new",
        n_procs=p, trace=True,
    )
    check_trace_events(result.trace)
    san.checks["trace.track-monotone"] += 1
    if native_backend is not None:
        result = sort(keys, algorithm="radix", backend=native_backend, trace=True)
        check_trace_events(result.trace)
        san.checks["trace.track-monotone"] += 1


def _sim_case_worker(
    case: CheckCase,
) -> tuple[bool, float, str | None, dict, float]:
    """Subprocess body for one simulated grid point under ``--parallel``:
    runs the case under a private sanitizer and ships the coverage
    counters (and the simulated total time, for the predictor's
    cross-validation) back for the parent to merge."""
    san = Sanitizer()
    t0 = time.perf_counter()
    error = None
    time_ns = 0.0
    with use_sanitizer(san):
        try:
            workload, reference = _case_workload(case)
            result = _run_case(case, "sim", workload, reference)
            if result is not None:
                time_ns = result.time_ns
        except Exception as exc:  # noqa: BLE001 - report, don't abort
            error = f"{type(exc).__name__}: {exc}"
    return error is None, time.perf_counter() - t0, error, dict(san.checks), time_ns


def _map_sim_cases_parallel(
    cases: list[CheckCase], parallel: int, san: Sanitizer
) -> dict[CheckCase, tuple[bool, float, str | None, float]]:
    """Fan the simulated grid points out over worker processes, merging
    each worker's coverage counters into ``san``."""
    import concurrent.futures as cf
    import multiprocessing as mp

    sim_cases = [c for c in cases if c.backend == "sim"]
    if not sim_cases:
        return {}
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    done: dict[CheckCase, tuple[bool, float, str | None, float]] = {}
    workers = min(parallel, len(sim_cases))
    with cf.ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        for case, (ok, wall, error, checks, time_ns) in zip(
            sim_cases, pool.map(_sim_case_worker, sim_cases)
        ):
            done[case] = (ok, wall, error, time_ns)
            san.checks.update(checks)
    return done


def _predict_sweep(
    sim_cases: list[CheckCase],
    sim_times: dict[CheckCase, float],
    oracles: dict[tuple, tuple],
    results: list[CaseResult],
    out: IO[str],
) -> None:
    """Cross-validate the analytic predictor against every simulated grid
    point on a *calibrated* machine, appending one :class:`CaseResult`
    per prediction plus a final gate on the aggregate error band.

    The error band is computed over the paper's u32 workload (the cells
    the calibration artifact was fitted against); widened workloads are
    verified functionally and structurally but do not move the gate.
    """
    rel_errors: list[float] = []
    for case in sim_cases:
        if case.machine != "origin2000" or case.expect_error:
            continue  # the predictor rejects uncalibrated machines
        key = (case.workload, case.distribution, case.n, case.p)
        if key not in oracles:
            oracles[key] = _case_workload(case)
        workload, reference = oracles[key]
        pcase = replace(case, backend="predict")
        t0 = time.perf_counter()
        error = None
        note = ""
        try:
            result = _run_case(pcase, "predict", workload, reference)
            sim_ns = sim_times.get(case, 0.0)
            if result is not None and sim_ns > 0 and case.workload == "u32":
                rel = (result.time_ns - sim_ns) / sim_ns
                rel_errors.append(abs(rel))
                note = f" rel={rel:+.1%}"
        except Exception as exc:  # noqa: BLE001 - report, don't abort
            error = f"{type(exc).__name__}: {exc}"
        wall = time.perf_counter() - t0
        results.append(CaseResult(pcase, error is None, wall, error))
        status = "ok" if error is None else "FAIL"
        print(
            f"  {pcase.label:<46} {status} ({wall * 1e3:.0f} ms){note}",
            file=out,
        )
        if error is not None:
            print(f"    {error}", file=out)

    gateable = [
        c for c in sim_cases
        if c.machine == "origin2000" and not c.expect_error
        and c.workload == "u32"
    ]
    if not gateable:
        # A filtered sweep (--machine/--workload) can exclude every u32
        # origin2000 cell; with nothing to fit the band against, there
        # is no gate to apply.
        print("  predict error band: no u32 cells in selection", file=out)
        return
    gate_case = CheckCase("predict", "error-band", "all", 0, 0)
    if not rel_errors:
        results.append(
            CaseResult(gate_case, False, 0.0, "no simulated times to compare")
        )
        return
    median = statistics.median(rel_errors)
    p95 = sorted(rel_errors)[max(0, int(round(0.95 * len(rel_errors))) - 1)]
    ok = median <= PREDICT_ERROR_GATE
    error = (
        None
        if ok
        else f"median |rel error| {median:.1%} exceeds {PREDICT_ERROR_GATE:.0%}"
    )
    results.append(CaseResult(gate_case, ok, 0.0, error))
    print(
        f"  predict error band: median {median:.2%}, p95 {p95:.2%} over "
        f"{len(rel_errors)} u32 cells (gate {PREDICT_ERROR_GATE:.0%}) "
        f"{'ok' if ok else 'FAIL'}",
        file=out,
    )


def _print_axis_coverage(san: Sanitizer, out: IO[str]) -> None:
    """State the per-axis coverage counters the sweep accumulated."""
    for axis in ("backend", "machine", "workload", "negative"):
        prefix = f"axis.{axis}."
        counts = {
            k[len(prefix):]: v
            for k, v in sorted(san.checks.items())
            if k.startswith(prefix) and v > 0
        }
        if counts:
            summary = ", ".join(f"{k}={v}" for k, v in counts.items())
            print(f"  coverage {axis}: {summary}", file=out)


def run_check(
    small: bool = False,
    native: bool = True,
    stream: IO[str] | None = None,
    parallel: int | None = None,
    backend: str = "all",
    machine: str | None = None,
    workload: str | None = None,
) -> int:
    """Run the differential sweep; returns a process exit code (0 = all
    invariants held on every grid point).

    ``parallel`` > 1 computes the simulated grid points across that many
    worker processes (native points and the traced probes stay in the
    parent, which owns the worker pool); coverage counters are merged, so
    the result is identical to a serial sweep.

    ``backend`` restricts the sweep: ``"all"`` (default) runs everything
    including the predictor cross-validation, ``"sim"``/``"native"`` run
    one substrate, ``"predict"`` runs the simulated grid plus the
    predictor cross-validation (the simulation is the predictor's
    reference, so it cannot be skipped).

    ``machine``/``workload`` filter the grid to one machine-zoo member /
    workload kind.  Axis-coverage enforcement only applies to unfiltered
    ``backend="all"`` sweeps -- a filtered sweep cannot cover every axis
    by construction.
    """
    from ..native.pool import WorkerPool

    if backend not in CHECK_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {CHECK_BACKENDS}"
        )
    if machine is not None and machine not in ALL_MACHINES:
        raise ValueError(
            f"unknown machine {machine!r}; choose from {ALL_MACHINES}"
        )
    if workload is not None and workload not in ALL_WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; choose from {ALL_WORKLOADS}"
        )
    out = stream if stream is not None else sys.stdout
    native = native and backend in ("all", "native")
    with_sim = backend in ("all", "sim", "predict")
    with_predict = backend in ("all", "predict")
    filtered = machine is not None or workload is not None
    cases = default_grid(small=small, native=native)
    if not with_sim:
        cases = [c for c in cases if c.backend != "sim"]
    if not with_predict:
        cases = [c for c in cases if c.backend != "predict"]
    if machine is not None:
        cases = [c for c in cases if c.machine == machine]
    if workload is not None:
        cases = [c for c in cases if c.workload == workload]
    if not cases:
        print("repro check: nothing to run for this selection", file=out)
        return 1
    san = Sanitizer()
    results: list[CaseResult] = []
    #: (workload kind, distribution, n, p) -> (input, reference).
    oracles: dict[tuple, tuple] = {}
    sim_times: dict[CheckCase, float] = {}

    precomputed: dict[CheckCase, tuple[bool, float, str | None, float]] = {}
    if parallel is not None and parallel > 1:
        precomputed = _map_sim_cases_parallel(cases, parallel, san)

    pool = None
    native_backend = None
    if native:
        from ..backend.native import NativeBackend

        pool = WorkerPool(NATIVE_WORKERS, collect_timings=True)
        native_backend = NativeBackend(pool)
    try:
        with use_sanitizer(san):
            for case in cases:
                if case in precomputed:
                    ok, wall, error, time_ns = precomputed[case]
                    if time_ns > 0:
                        sim_times[case] = time_ns
                else:
                    key = (case.workload, case.distribution, case.n, case.p)
                    if key not in oracles:
                        oracles[key] = _case_workload(case)
                    workload_cell, reference = oracles[key]
                    run_backend = (
                        native_backend
                        if case.backend == "native"
                        else case.backend
                    )
                    t0 = time.perf_counter()
                    error = None
                    try:
                        result = _run_case(
                            case, run_backend, workload_cell, reference
                        )
                        if case.backend == "sim" and result is not None:
                            sim_times[case] = result.time_ns
                    except Exception as exc:  # noqa: BLE001 - report, don't abort
                        error = f"{type(exc).__name__}: {exc}"
                    wall = time.perf_counter() - t0
                results.append(CaseResult(case, error is None, wall, error))
                status = "ok" if error is None else "FAIL"
                print(f"  {case.label:<46} {status} ({wall * 1e3:.0f} ms)", file=out)
                if error is not None:
                    print(f"    {error}", file=out)
            if with_predict:
                _predict_sweep(
                    [c for c in cases if c.backend == "sim"],
                    sim_times, oracles, results, out,
                )
            try:
                _traced_probes(san, cases[0].n, cases[0].p, native_backend)
            except Exception as exc:  # noqa: BLE001
                results.append(
                    CaseResult(
                        CheckCase("trace", "probe", "gauss", cases[0].n, cases[0].p),
                        False, 0.0, f"{type(exc).__name__}: {exc}",
                    )
                )
                print(f"  trace probes FAIL: {exc}", file=out)
    finally:
        if pool is not None:
            pool.close()

    failures = [r for r in results if not r.ok]
    required = list(REQUIRED_COVERAGE) if with_sim else []
    if backend == "all" and not filtered and native:
        required += list(REQUIRED_AXIS_COVERAGE)
    missing = [k for k in required if san.checks[k] == 0]
    n_checks = sum(san.checks.values())
    _print_axis_coverage(san, out)
    print(
        f"repro check: {len(results)} cases, {len(failures)} failed; "
        f"sanitizer evaluated {n_checks} checks across "
        f"{len(san.checks)} invariants",
        file=out,
    )
    if missing:
        print(
            "COVERAGE FAILURE: these invariants were never evaluated "
            f"(instrumentation unplugged?): {', '.join(missing)}",
            file=out,
        )
    return 1 if failures or missing else 0
