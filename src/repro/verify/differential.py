"""Differential verification across backends, models and distributions.

Runs the model x algorithm x distribution grid through
:func:`repro.core.api.sort` on both execution substrates, with the
runtime sanitizer installed, and checks every run against the external
oracle ``np.sort``:

- the returned keys are exactly the sorted permutation of the input
  (identical to what every other backend/model produced for the same
  workload);
- the :class:`~repro.smp.perf.PerfReport` satisfies the accounting
  identity (enforced at the backend seam by the sanitizer);
- one traced run per backend exports a well-formed, per-track-monotone
  Chrome trace;
- the sanitizer's coverage counters prove each invariant family was
  actually evaluated -- a sweep that silently stopped checking is itself
  a failure.

With ``backend="predict"`` (or ``"all"``) the sweep additionally
cross-validates the analytic predictor: every simulated grid point is
re-predicted *on the same keys*, the predicted report must satisfy the
same structural invariants (sorted output, shape, accounting identity),
and the per-cell relative error of total time against the simulation is
aggregated -- the sweep fails if the median absolute relative error
exceeds :data:`PREDICT_ERROR_GATE`.

Exposed as ``python -m repro check [--small] [--backend all|sim|native|predict]``.
"""

from __future__ import annotations

import statistics
import sys
import time
from dataclasses import dataclass, replace
from typing import IO

import numpy as np

from .context import use_sanitizer
from .errors import VerifyError
from .invariants import check_trace_events
from .sanitizer import Sanitizer

#: Models per algorithm (the paper's grid; sample sort has no CC-SAS-NEW
#: variant -- its distribution phase is already chunk-contiguous).
RADIX_MODELS = ("ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem")
SAMPLE_MODELS = ("ccsas", "mpi-new", "mpi-sgi", "shmem")

#: ``--small`` keeps one distribution per communication regime: random
#: traffic (gauss), heavy duplication (zero), all-remote movement.
SMALL_DISTRIBUTIONS = ("gauss", "zero", "remote")

#: Host worker processes for the native runs (small arrays; fork cost
#: dominates real sorting here).
NATIVE_WORKERS = 2

#: Differential gate for the analytic predictor: the sweep fails if the
#: median absolute relative error of predicted vs. simulated total time
#: exceeds this fraction.
PREDICT_ERROR_GATE = 0.15

#: Backend selections for :func:`run_check`.
CHECK_BACKENDS = ("all", "sim", "native", "predict")

#: Invariant families a healthy full sweep must have evaluated at least
#: once.  A zero count means an instrumentation hook came unplugged.
REQUIRED_COVERAGE = (
    "sim.clock-monotone",
    "resource.mutual-exclusion",
    "resource.fifo-grant",
    "resource.idle-release",
    "channel.occupancy",
    "exchange.drained",
    "team.phase-outcome",
    "team.barrier-epoch",
    "comm.key-conservation",
    "report.accounting-identity",
)


@dataclass(frozen=True)
class CheckCase:
    """One grid point of the differential sweep."""

    backend: str
    algorithm: str
    distribution: str
    n: int
    p: int
    model: str | None = None

    @property
    def label(self) -> str:
        model = f"/{self.model}" if self.model else ""
        return (
            f"{self.backend}/{self.algorithm}{model} "
            f"{self.distribution} n={self.n} p={self.p}"
        )


@dataclass
class CaseResult:
    case: CheckCase
    ok: bool
    wall_s: float
    error: str | None = None


def default_grid(
    small: bool = False, native: bool = True
) -> list[CheckCase]:
    """The sweep: every model x algorithm x distribution on the simulated
    backend, plus every algorithm x distribution natively."""
    from ..data import PAPER_ORDER

    n, p = (16 * 128, 16) if small else (16 * 512, 16)
    dists = SMALL_DISTRIBUTIONS if small else tuple(PAPER_ORDER)
    cases = []
    for dist in dists:
        for model in RADIX_MODELS:
            cases.append(CheckCase("sim", "radix", dist, n, p, model))
        for model in SAMPLE_MODELS:
            cases.append(CheckCase("sim", "sample", dist, n, p, model))
        if native:
            for algorithm in ("radix", "sample"):
                cases.append(CheckCase("native", algorithm, dist, n, p))
    return cases


def _run_case(case: CheckCase, backend, oracle: np.ndarray, keys: np.ndarray):
    from ..core.api import sort

    result = sort(
        keys,
        algorithm=case.algorithm,
        backend=backend,
        model=case.model or "shmem",
        n_procs=case.p if case.backend != "native" else None,
    )
    if not np.array_equal(result.sorted_keys, oracle):
        n_bad = int(np.count_nonzero(result.sorted_keys != oracle))
        raise VerifyError(
            "differential.sorted-permutation",
            f"{case.label}: output disagrees with np.sort at "
            f"{n_bad}/{len(oracle)} positions",
        )
    if case.backend in ("sim", "predict") and result.report.n_procs != case.p:
        raise VerifyError(
            "differential.report-shape",
            f"{case.label}: report covers {result.report.n_procs} "
            f"processors, expected {case.p}",
        )
    if result.time_ns <= 0:
        raise VerifyError(
            "differential.report-shape",
            f"{case.label}: report accumulated no time",
        )
    return result


def _traced_probes(san: Sanitizer, n: int, p: int, native_backend) -> None:
    """One traced run per backend; the export must be track-monotone."""
    from ..core.api import sort
    from ..data import generate

    keys = generate("gauss", n, p)
    result = sort(
        keys, algorithm="radix", backend="sim", model="mpi-new",
        n_procs=p, trace=True,
    )
    check_trace_events(result.trace)
    san.checks["trace.track-monotone"] += 1
    if native_backend is not None:
        result = sort(keys, algorithm="radix", backend=native_backend, trace=True)
        check_trace_events(result.trace)
        san.checks["trace.track-monotone"] += 1


def _sim_case_worker(
    case: CheckCase,
) -> tuple[bool, float, str | None, dict, float]:
    """Subprocess body for one simulated grid point under ``--parallel``:
    runs the case under a private sanitizer and ships the coverage
    counters (and the simulated total time, for the predictor's
    cross-validation) back for the parent to merge."""
    from ..data import generate

    san = Sanitizer()
    keys = generate(case.distribution, case.n, case.p, radix=8)
    oracle = np.sort(keys)
    t0 = time.perf_counter()
    error = None
    time_ns = 0.0
    with use_sanitizer(san):
        try:
            time_ns = _run_case(case, "sim", oracle, keys).time_ns
        except Exception as exc:  # noqa: BLE001 - report, don't abort
            error = f"{type(exc).__name__}: {exc}"
    return error is None, time.perf_counter() - t0, error, dict(san.checks), time_ns


def _map_sim_cases_parallel(
    cases: list[CheckCase], parallel: int, san: Sanitizer
) -> dict[CheckCase, tuple[bool, float, str | None, float]]:
    """Fan the simulated grid points out over worker processes, merging
    each worker's coverage counters into ``san``."""
    import concurrent.futures as cf
    import multiprocessing as mp

    sim_cases = [c for c in cases if c.backend == "sim"]
    if not sim_cases:
        return {}
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    done: dict[CheckCase, tuple[bool, float, str | None, float]] = {}
    workers = min(parallel, len(sim_cases))
    with cf.ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        for case, (ok, wall, error, checks, time_ns) in zip(
            sim_cases, pool.map(_sim_case_worker, sim_cases)
        ):
            done[case] = (ok, wall, error, time_ns)
            san.checks.update(checks)
    return done


def _predict_sweep(
    sim_cases: list[CheckCase],
    sim_times: dict[CheckCase, float],
    oracles: dict[str, tuple[np.ndarray, np.ndarray]],
    results: list[CaseResult],
    out: IO[str],
) -> None:
    """Cross-validate the analytic predictor against every simulated grid
    point *on the same key arrays*, appending one :class:`CaseResult` per
    prediction plus a final gate on the aggregate error band."""
    from ..data import generate

    rel_errors: list[float] = []
    for case in sim_cases:
        if case.distribution not in oracles:
            keys = generate(case.distribution, case.n, case.p, radix=8)
            oracles[case.distribution] = (keys, np.sort(keys))
        keys, oracle = oracles[case.distribution]
        pcase = replace(case, backend="predict")
        t0 = time.perf_counter()
        error = None
        note = ""
        try:
            result = _run_case(pcase, "predict", oracle, keys)
            sim_ns = sim_times.get(case, 0.0)
            if sim_ns > 0:
                rel = (result.time_ns - sim_ns) / sim_ns
                rel_errors.append(abs(rel))
                note = f" rel={rel:+.1%}"
        except Exception as exc:  # noqa: BLE001 - report, don't abort
            error = f"{type(exc).__name__}: {exc}"
        wall = time.perf_counter() - t0
        results.append(CaseResult(pcase, error is None, wall, error))
        status = "ok" if error is None else "FAIL"
        print(
            f"  {pcase.label:<46} {status} ({wall * 1e3:.0f} ms){note}",
            file=out,
        )
        if error is not None:
            print(f"    {error}", file=out)

    gate_case = CheckCase("predict", "error-band", "all", 0, 0)
    if not rel_errors:
        results.append(
            CaseResult(gate_case, False, 0.0, "no simulated times to compare")
        )
        return
    median = statistics.median(rel_errors)
    p95 = sorted(rel_errors)[max(0, int(round(0.95 * len(rel_errors))) - 1)]
    ok = median <= PREDICT_ERROR_GATE
    error = (
        None
        if ok
        else f"median |rel error| {median:.1%} exceeds {PREDICT_ERROR_GATE:.0%}"
    )
    results.append(CaseResult(gate_case, ok, 0.0, error))
    print(
        f"  predict error band: median {median:.2%}, p95 {p95:.2%} over "
        f"{len(rel_errors)} cells (gate {PREDICT_ERROR_GATE:.0%}) "
        f"{'ok' if ok else 'FAIL'}",
        file=out,
    )


def run_check(
    small: bool = False,
    native: bool = True,
    stream: IO[str] | None = None,
    parallel: int | None = None,
    backend: str = "all",
) -> int:
    """Run the differential sweep; returns a process exit code (0 = all
    invariants held on every grid point).

    ``parallel`` > 1 computes the simulated grid points across that many
    worker processes (native points and the traced probes stay in the
    parent, which owns the worker pool); coverage counters are merged, so
    the result is identical to a serial sweep.

    ``backend`` restricts the sweep: ``"all"`` (default) runs everything
    including the predictor cross-validation, ``"sim"``/``"native"`` run
    one substrate, ``"predict"`` runs the simulated grid plus the
    predictor cross-validation (the simulation is the predictor's
    reference, so it cannot be skipped).
    """
    from ..data import generate
    from ..native.pool import WorkerPool

    if backend not in CHECK_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {CHECK_BACKENDS}"
        )
    out = stream if stream is not None else sys.stdout
    native = native and backend in ("all", "native")
    with_sim = backend in ("all", "sim", "predict")
    with_predict = backend in ("all", "predict")
    cases = default_grid(small=small, native=native)
    if not with_sim:
        cases = [c for c in cases if c.backend != "sim"]
    if not cases:
        print("repro check: nothing to run for this backend selection", file=out)
        return 1
    san = Sanitizer()
    results: list[CaseResult] = []
    oracles: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    sim_times: dict[CheckCase, float] = {}

    precomputed: dict[CheckCase, tuple[bool, float, str | None, float]] = {}
    if parallel is not None and parallel > 1:
        precomputed = _map_sim_cases_parallel(cases, parallel, san)

    pool = None
    native_backend = None
    if native:
        from ..backend.native import NativeBackend

        pool = WorkerPool(NATIVE_WORKERS, collect_timings=True)
        native_backend = NativeBackend(pool)
    try:
        with use_sanitizer(san):
            for case in cases:
                if case in precomputed:
                    ok, wall, error, time_ns = precomputed[case]
                    if time_ns > 0:
                        sim_times[case] = time_ns
                else:
                    if case.distribution not in oracles:
                        keys = generate(case.distribution, case.n, case.p, radix=8)
                        oracles[case.distribution] = (keys, np.sort(keys))
                    keys, oracle = oracles[case.distribution]
                    run_backend = (
                        native_backend if case.backend == "native" else "sim"
                    )
                    t0 = time.perf_counter()
                    error = None
                    try:
                        result = _run_case(case, run_backend, oracle, keys)
                        if case.backend == "sim":
                            sim_times[case] = result.time_ns
                    except Exception as exc:  # noqa: BLE001 - report, don't abort
                        error = f"{type(exc).__name__}: {exc}"
                    wall = time.perf_counter() - t0
                results.append(CaseResult(case, error is None, wall, error))
                status = "ok" if error is None else "FAIL"
                print(f"  {case.label:<46} {status} ({wall * 1e3:.0f} ms)", file=out)
                if error is not None:
                    print(f"    {error}", file=out)
            if with_predict:
                _predict_sweep(
                    [c for c in cases if c.backend == "sim"],
                    sim_times, oracles, results, out,
                )
            try:
                _traced_probes(san, cases[0].n, cases[0].p, native_backend)
            except Exception as exc:  # noqa: BLE001
                results.append(
                    CaseResult(
                        CheckCase("trace", "probe", "gauss", cases[0].n, cases[0].p),
                        False, 0.0, f"{type(exc).__name__}: {exc}",
                    )
                )
                print(f"  trace probes FAIL: {exc}", file=out)
    finally:
        if pool is not None:
            pool.close()

    failures = [r for r in results if not r.ok]
    required = REQUIRED_COVERAGE if with_sim else ()
    missing = [k for k in required if san.checks[k] == 0]
    n_checks = sum(san.checks.values())
    print(
        f"repro check: {len(results)} cases, {len(failures)} failed; "
        f"sanitizer evaluated {n_checks} checks across "
        f"{len(san.checks)} invariants",
        file=out,
    )
    if missing:
        print(
            "COVERAGE FAILURE: these invariants were never evaluated "
            f"(instrumentation unplugged?): {', '.join(missing)}",
            file=out,
        )
    return 1 if failures or missing else 0
