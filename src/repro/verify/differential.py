"""Differential verification across backends, models and distributions.

Runs the model x algorithm x distribution grid through
:func:`repro.core.api.sort` on both execution substrates, with the
runtime sanitizer installed, and checks every run against the external
oracle ``np.sort``:

- the returned keys are exactly the sorted permutation of the input
  (identical to what every other backend/model produced for the same
  workload);
- the :class:`~repro.smp.perf.PerfReport` satisfies the accounting
  identity (enforced at the backend seam by the sanitizer);
- one traced run per backend exports a well-formed, per-track-monotone
  Chrome trace;
- the sanitizer's coverage counters prove each invariant family was
  actually evaluated -- a sweep that silently stopped checking is itself
  a failure.

Exposed as ``python -m repro check [--small]``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import IO

import numpy as np

from .context import use_sanitizer
from .errors import VerifyError
from .invariants import check_trace_events
from .sanitizer import Sanitizer

#: Models per algorithm (the paper's grid; sample sort has no CC-SAS-NEW
#: variant -- its distribution phase is already chunk-contiguous).
RADIX_MODELS = ("ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem")
SAMPLE_MODELS = ("ccsas", "mpi-new", "mpi-sgi", "shmem")

#: ``--small`` keeps one distribution per communication regime: random
#: traffic (gauss), heavy duplication (zero), all-remote movement.
SMALL_DISTRIBUTIONS = ("gauss", "zero", "remote")

#: Host worker processes for the native runs (small arrays; fork cost
#: dominates real sorting here).
NATIVE_WORKERS = 2

#: Invariant families a healthy full sweep must have evaluated at least
#: once.  A zero count means an instrumentation hook came unplugged.
REQUIRED_COVERAGE = (
    "sim.clock-monotone",
    "resource.mutual-exclusion",
    "resource.fifo-grant",
    "resource.idle-release",
    "channel.occupancy",
    "exchange.drained",
    "team.phase-outcome",
    "team.barrier-epoch",
    "comm.key-conservation",
    "report.accounting-identity",
)


@dataclass(frozen=True)
class CheckCase:
    """One grid point of the differential sweep."""

    backend: str
    algorithm: str
    distribution: str
    n: int
    p: int
    model: str | None = None

    @property
    def label(self) -> str:
        model = f"/{self.model}" if self.model else ""
        return (
            f"{self.backend}/{self.algorithm}{model} "
            f"{self.distribution} n={self.n} p={self.p}"
        )


@dataclass
class CaseResult:
    case: CheckCase
    ok: bool
    wall_s: float
    error: str | None = None


def default_grid(
    small: bool = False, native: bool = True
) -> list[CheckCase]:
    """The sweep: every model x algorithm x distribution on the simulated
    backend, plus every algorithm x distribution natively."""
    from ..data import PAPER_ORDER

    n, p = (16 * 128, 16) if small else (16 * 512, 16)
    dists = SMALL_DISTRIBUTIONS if small else tuple(PAPER_ORDER)
    cases = []
    for dist in dists:
        for model in RADIX_MODELS:
            cases.append(CheckCase("sim", "radix", dist, n, p, model))
        for model in SAMPLE_MODELS:
            cases.append(CheckCase("sim", "sample", dist, n, p, model))
        if native:
            for algorithm in ("radix", "sample"):
                cases.append(CheckCase("native", algorithm, dist, n, p))
    return cases


def _run_case(case: CheckCase, backend, oracle: np.ndarray, keys: np.ndarray):
    from ..core.api import sort

    result = sort(
        keys,
        algorithm=case.algorithm,
        backend=backend,
        model=case.model or "shmem",
        n_procs=case.p if case.backend == "sim" else None,
    )
    if not np.array_equal(result.sorted_keys, oracle):
        n_bad = int(np.count_nonzero(result.sorted_keys != oracle))
        raise VerifyError(
            "differential.sorted-permutation",
            f"{case.label}: output disagrees with np.sort at "
            f"{n_bad}/{len(oracle)} positions",
        )
    if case.backend == "sim" and result.report.n_procs != case.p:
        raise VerifyError(
            "differential.report-shape",
            f"{case.label}: report covers {result.report.n_procs} "
            f"processors, expected {case.p}",
        )
    if result.time_ns <= 0:
        raise VerifyError(
            "differential.report-shape",
            f"{case.label}: report accumulated no time",
        )


def _traced_probes(san: Sanitizer, n: int, p: int, native_backend) -> None:
    """One traced run per backend; the export must be track-monotone."""
    from ..core.api import sort
    from ..data import generate

    keys = generate("gauss", n, p)
    result = sort(
        keys, algorithm="radix", backend="sim", model="mpi-new",
        n_procs=p, trace=True,
    )
    check_trace_events(result.trace)
    san.checks["trace.track-monotone"] += 1
    if native_backend is not None:
        result = sort(keys, algorithm="radix", backend=native_backend, trace=True)
        check_trace_events(result.trace)
        san.checks["trace.track-monotone"] += 1


def _sim_case_worker(case: CheckCase) -> tuple[bool, float, str | None, dict]:
    """Subprocess body for one simulated grid point under ``--parallel``:
    runs the case under a private sanitizer and ships the coverage
    counters back for the parent to merge."""
    from ..data import generate

    san = Sanitizer()
    keys = generate(case.distribution, case.n, case.p, radix=8)
    oracle = np.sort(keys)
    t0 = time.perf_counter()
    error = None
    with use_sanitizer(san):
        try:
            _run_case(case, "sim", oracle, keys)
        except Exception as exc:  # noqa: BLE001 - report, don't abort
            error = f"{type(exc).__name__}: {exc}"
    return error is None, time.perf_counter() - t0, error, dict(san.checks)


def _map_sim_cases_parallel(
    cases: list[CheckCase], parallel: int, san: Sanitizer
) -> dict[CheckCase, tuple[bool, float, str | None]]:
    """Fan the simulated grid points out over worker processes, merging
    each worker's coverage counters into ``san``."""
    import concurrent.futures as cf
    import multiprocessing as mp

    sim_cases = [c for c in cases if c.backend == "sim"]
    if not sim_cases:
        return {}
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    done: dict[CheckCase, tuple[bool, float, str | None]] = {}
    workers = min(parallel, len(sim_cases))
    with cf.ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        for case, (ok, wall, error, checks) in zip(
            sim_cases, pool.map(_sim_case_worker, sim_cases)
        ):
            done[case] = (ok, wall, error)
            san.checks.update(checks)
    return done


def run_check(
    small: bool = False,
    native: bool = True,
    stream: IO[str] | None = None,
    parallel: int | None = None,
) -> int:
    """Run the differential sweep; returns a process exit code (0 = all
    invariants held on every grid point).

    ``parallel`` > 1 computes the simulated grid points across that many
    worker processes (native points and the traced probes stay in the
    parent, which owns the worker pool); coverage counters are merged, so
    the result is identical to a serial sweep.
    """
    from ..data import generate
    from ..native.pool import WorkerPool

    out = stream if stream is not None else sys.stdout
    cases = default_grid(small=small, native=native)
    san = Sanitizer()
    results: list[CaseResult] = []
    oracles: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    precomputed: dict[CheckCase, tuple[bool, float, str | None]] = {}
    if parallel is not None and parallel > 1:
        precomputed = _map_sim_cases_parallel(cases, parallel, san)

    pool = None
    native_backend = None
    if native:
        from ..backend.native import NativeBackend

        pool = WorkerPool(NATIVE_WORKERS, collect_timings=True)
        native_backend = NativeBackend(pool)
    try:
        with use_sanitizer(san):
            for case in cases:
                if case in precomputed:
                    ok, wall, error = precomputed[case]
                else:
                    if case.distribution not in oracles:
                        keys = generate(case.distribution, case.n, case.p, radix=8)
                        oracles[case.distribution] = (keys, np.sort(keys))
                    keys, oracle = oracles[case.distribution]
                    backend = native_backend if case.backend == "native" else "sim"
                    t0 = time.perf_counter()
                    error = None
                    try:
                        _run_case(case, backend, oracle, keys)
                    except Exception as exc:  # noqa: BLE001 - report, don't abort
                        error = f"{type(exc).__name__}: {exc}"
                    wall = time.perf_counter() - t0
                results.append(CaseResult(case, error is None, wall, error))
                status = "ok" if error is None else "FAIL"
                print(f"  {case.label:<46} {status} ({wall * 1e3:.0f} ms)", file=out)
                if error is not None:
                    print(f"    {error}", file=out)
            try:
                _traced_probes(san, cases[0].n, cases[0].p, native_backend)
            except Exception as exc:  # noqa: BLE001
                results.append(
                    CaseResult(
                        CheckCase("trace", "probe", "gauss", cases[0].n, cases[0].p),
                        False, 0.0, f"{type(exc).__name__}: {exc}",
                    )
                )
                print(f"  trace probes FAIL: {exc}", file=out)
    finally:
        if pool is not None:
            pool.close()

    failures = [r for r in results if not r.ok]
    missing = [k for k in REQUIRED_COVERAGE if san.checks[k] == 0]
    n_checks = sum(san.checks.values())
    print(
        f"repro check: {len(results)} cases, {len(failures)} failed; "
        f"sanitizer evaluated {n_checks} checks across "
        f"{len(san.checks)} invariants",
        file=out,
    )
    if missing:
        print(
            "COVERAGE FAILURE: these invariants were never evaluated "
            f"(instrumentation unplugged?): {', '.join(missing)}",
            file=out,
        )
    return 1 if failures or missing else 0
