"""Standalone invariant checkers shared by the sanitizer, the differential
oracle and the test suite.

Each function raises :class:`~repro.verify.errors.VerifyError` naming the
violated invariant; see ``docs/VERIFY.md`` for the full catalogue.  They
are pure functions over already-built artifacts (reports, comm matrices,
exported traces) -- the *runtime* checks that need to observe execution as
it happens live on :class:`~repro.verify.sanitizer.Sanitizer` instead.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

import numpy as np

from ..smp.perf import PerfReport
from ..trace.events import TraceEvent
from .errors import VerifyError

#: Relative tolerance for accounting identities (float accumulation over
#: thousands of phase applications).
REL_TOL = 1e-6
#: Absolute slack in nanoseconds (identities over ~1e12 ns totals).
ABS_TOL_NS = 1e-3

#: Span categories that must tile a (pid, tid) track without overlap.
#: ``sim.phase`` and ``sim.barrier`` share one simulated-processor
#: timeline and are checked together; the native categories each form
#: their own sequential series per track.
_SEQUENTIAL_FAMILIES: dict[str, str] = {
    "sim.phase": "sim",
    "sim.barrier": "sim",
    "native.phase": "native.phase",
    "native.task": "native.task",
    "native.sort": "native.sort",
}


def _span(name: str, ts_ns: float = 0.0, pid: int = 0, tid: int = 0) -> TraceEvent:
    return TraceEvent(name, cat="verify.violation", ts_us=ts_ns / 1e3, pid=pid, tid=tid)


# ----------------------------------------------------------------------
# The paper's accounting identity
# ----------------------------------------------------------------------
def check_report(report: PerfReport, label: str = "") -> None:
    """Enforce the per-processor accounting identity of a PerfReport.

    Every phase contributes exactly its per-processor elapsed time to both
    the category counters (BUSY/LMEM/RMEM/SYNC) and the phase records, so
    for every processor ``i``::

        BUSY_i + LMEM_i + RMEM_i + SYNC_i == sum over phases of span_i

    -- the invariant behind the paper's stacked bars summing to wall-clock
    time.  Also rejects negative or non-finite category times and phase
    records whose width does not match the team.
    """
    where = label or report.label or "report"
    p = report.n_procs
    for i, c in enumerate(report.counters):
        for cat, v in zip(("BUSY", "LMEM", "RMEM", "SYNC"), c.as_tuple()):
            if not math.isfinite(v) or v < -ABS_TOL_NS:
                raise VerifyError(
                    "report.category-sane",
                    f"{where}: processor {i} has invalid {cat} time {v!r}",
                    span=_span(where, tid=i),
                )
    spans = np.zeros(p)
    for rec in report.phases:
        arr = np.asarray(rec.per_proc_ns, dtype=np.float64)
        if arr.shape != (p,):
            raise VerifyError(
                "report.phase-shape",
                f"{where}: phase {rec.name!r} records {arr.shape} "
                f"per-processor times for {p} processors",
                span=_span(rec.name),
            )
        if not np.all(np.isfinite(arr)) or np.any(arr < -ABS_TOL_NS):
            raise VerifyError(
                "report.category-sane",
                f"{where}: phase {rec.name!r} has negative or non-finite "
                "per-processor time",
                span=_span(rec.name),
            )
        spans += arr
    totals = np.array([c.total_ns for c in report.counters])
    tol = ABS_TOL_NS + REL_TOL * np.maximum(totals, spans)
    bad = np.nonzero(np.abs(totals - spans) > tol)[0]
    if bad.size:
        i = int(bad[0])
        raise VerifyError(
            "report.accounting-identity",
            f"{where}: processor {i} counters sum to {totals[i]:g} ns but "
            f"its phase spans sum to {spans[i]:g} ns",
            span=_span(where, ts_ns=float(totals[i]), tid=i),
            delta_ns=float(totals[i] - spans[i]),
        )


# ----------------------------------------------------------------------
# Key conservation through the out-of-core stream path
# ----------------------------------------------------------------------
def check_stream_conservation(
    ingested: int, in_runs: int, merged: int, where: str = "stream"
) -> None:
    """Keys flow through spill and merge, never appear or vanish.

    The external sorter counts keys three times -- as chunks leave the
    ingest reader, as run-file footers are sealed, and as merged output
    is emitted -- and all three totals must agree exactly (counts are
    integers; there is no tolerance).
    """
    ingested, in_runs, merged = int(ingested), int(in_runs), int(merged)
    if min(ingested, in_runs, merged) < 0:
        raise VerifyError(
            "stream.key-conservation",
            f"{where}: negative key count (ingested={ingested}, "
            f"in runs={in_runs}, merged={merged})",
        )
    if not ingested == in_runs == merged:
        raise VerifyError(
            "stream.key-conservation",
            f"{where}: {ingested} keys ingested, {in_runs} in spilled "
            f"runs, {merged} merged out",
            delta_keys=float(max(ingested, in_runs, merged) - min(ingested, in_runs, merged)),
        )


# ----------------------------------------------------------------------
# Key/byte conservation of communication matrices
# ----------------------------------------------------------------------
def check_comm_conservation(
    bytes_matrix: np.ndarray,
    chunks_matrix: np.ndarray,
    row_bytes: np.ndarray | float | None = None,
    col_bytes: np.ndarray | float | None = None,
    where: str = "comm",
) -> None:
    """Keys are moved, never created or destroyed.

    ``row_bytes`` (what each source must send in total: its whole
    partition) and ``col_bytes`` (what each destination must receive) are
    scalars or per-processor arrays; pass ``None`` to skip a direction
    (sample sort's receive sides are data-dependent).  Also enforces
    non-negativity and that non-zero traffic travels in at least one
    chunk.
    """
    b = np.asarray(bytes_matrix, dtype=np.float64)
    c = np.asarray(chunks_matrix, dtype=np.float64)
    if b.shape != c.shape or b.ndim != 2 or b.shape[0] != b.shape[1]:
        raise VerifyError(
            "comm.matrix-shape",
            f"{where}: bytes {b.shape} and chunks {c.shape} must be equal "
            "square matrices",
        )
    if not (np.all(np.isfinite(b)) and np.all(np.isfinite(c))):
        raise VerifyError(
            "comm.matrix-sane", f"{where}: non-finite traffic entries"
        )
    if np.any(b < 0) or np.any(c < 0):
        raise VerifyError(
            "comm.matrix-sane", f"{where}: negative traffic entries"
        )
    if np.any((b > 0) & (c < 1.0 - 1e-9)):
        i, j = np.argwhere((b > 0) & (c < 1.0 - 1e-9))[0]
        raise VerifyError(
            "comm.chunkless-traffic",
            f"{where}: {b[i, j]:g} bytes from {i} to {j} travel in "
            f"{c[i, j]:g} chunks",
        )
    for axis, expected, invariant in (
        (1, row_bytes, "comm.key-conservation.send"),
        (0, col_bytes, "comm.key-conservation.recv"),
    ):
        if expected is None:
            continue
        sums = b.sum(axis=axis)
        want = np.broadcast_to(
            np.asarray(expected, dtype=np.float64), sums.shape
        )
        tol = ABS_TOL_NS + REL_TOL * np.maximum(sums, want)
        bad = np.nonzero(np.abs(sums - want) > tol)[0]
        if bad.size:
            i = int(bad[0])
            side = "sends" if axis == 1 else "receives"
            raise VerifyError(
                invariant,
                f"{where}: processor {i} {side} {sums[i]:g} bytes but its "
                f"partition holds {want[i]:g}",
                span=_span(where, tid=i),
                delta_bytes=float(sums[i] - want[i]),
            )


# ----------------------------------------------------------------------
# Chrome-trace export shape
# ----------------------------------------------------------------------
def check_chrome_trace(
    doc: Mapping[str, Any], sequential: bool = True
) -> None:
    """Validate an exported Chrome/Perfetto trace document.

    Structural checks (always): every event carries the fields its phase
    requires with sane types, ``X`` durations are non-negative, and ``B``/
    ``E`` events pair up in stack discipline per (pid, tid) track.

    ``sequential=True`` (single-run traces) additionally requires the
    phase-level span categories to be emitted in non-decreasing ``ts``
    order per (pid, tid) track and to not overlap -- a simulated processor
    or native worker executes one phase at a time.  Pass ``False`` for
    recorders that accumulated several runs (each run restarts its clock).
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise VerifyError("trace.document", "traceEvents must be a list")
    stacks: dict[tuple[int, int], list[str]] = {}
    last_span: dict[tuple[int, int, str], tuple[float, float, str]] = {}
    for idx, e in enumerate(events):
        ph = e.get("ph")
        name = e.get("name")
        pid, tid = e.get("pid"), e.get("tid")
        if (
            ph not in ("X", "i", "C", "M", "B", "E")
            or not isinstance(name, str)
            or not name
            or not isinstance(pid, int)
            or not isinstance(tid, int)
        ):
            raise VerifyError(
                "trace.event-shape",
                f"event #{idx} is malformed: ph={ph!r}, name={name!r}, "
                f"pid={pid!r}, tid={tid!r}",
            )
        if ph == "M":
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            raise VerifyError(
                "trace.event-shape",
                f"event #{idx} ({name!r}) has invalid ts {ts!r}",
            )
        if ph == "B":
            stacks.setdefault((pid, tid), []).append(name)
        elif ph == "E":
            stack = stacks.setdefault((pid, tid), [])
            if not stack:
                raise VerifyError(
                    "trace.begin-end-pairing",
                    f"event #{idx}: 'E' for {name!r} on track "
                    f"(pid={pid}, tid={tid}) without a matching 'B'",
                )
            stack.pop()
        elif ph == "X":
            dur = e.get("dur")
            if (
                not isinstance(dur, (int, float))
                or not math.isfinite(dur)
                or dur < 0
            ):
                raise VerifyError(
                    "trace.event-shape",
                    f"event #{idx} ({name!r}) has invalid dur {dur!r}",
                )
            family = _SEQUENTIAL_FAMILIES.get(e.get("cat", ""))
            if sequential and family is not None:
                key = (pid, tid, family)
                prev = last_span.get(key)
                if prev is not None:
                    prev_ts, prev_end, prev_name = prev
                    tol = 1e-9 + REL_TOL * max(abs(prev_end), abs(ts))
                    if ts < prev_ts - tol:
                        raise VerifyError(
                            "trace.track-monotone",
                            f"span {name!r} at ts={ts:g} precedes earlier "
                            f"span {prev_name!r} at ts={prev_ts:g} on track "
                            f"(pid={pid}, tid={tid})",
                        )
                    if ts < prev_end - tol:
                        raise VerifyError(
                            "trace.span-overlap",
                            f"span {name!r} starts at ts={ts:g} before "
                            f"{prev_name!r} ends at {prev_end:g} on track "
                            f"(pid={pid}, tid={tid})",
                        )
                last_span[key] = (float(ts), float(ts) + float(dur), name)
    for (pid, tid), stack in stacks.items():
        if stack:
            raise VerifyError(
                "trace.begin-end-pairing",
                f"track (pid={pid}, tid={tid}) ends with unclosed 'B' "
                f"events: {stack!r}",
            )


def check_trace_events(
    events: Iterable[TraceEvent], sequential: bool = True
) -> None:
    """Convenience: validate in-memory events via the Chrome export path
    (what gets checked is exactly what gets written)."""
    from ..trace.chrome import to_chrome_trace

    check_chrome_trace(to_chrome_trace(events), sequential=sequential)
