"""The opt-in runtime sanitizer.

A :class:`Sanitizer` is a set of always-on assertions threaded through the
execution layers -- the DES kernel (:mod:`repro.sim.engine`), its queued
resources (:mod:`repro.sim.resources`), the SPMD phase runtime
(:mod:`repro.smp.team` / :mod:`repro.smp.executor`), the communication
matrices (:mod:`repro.sorts.common`) and the backend seam.  Install one
ambiently::

    from repro.verify import Sanitizer, use_sanitizer

    with use_sanitizer(Sanitizer()) as san:
        result = sort(keys, backend="sim")
    assert san.checks["report.accounting-identity"]

Every violated invariant raises a :class:`VerifyError` naming it; the
``checks`` counter records how often each invariant was *evaluated*, so a
clean run can prove the sanitizer actually looked.  The hooks are called
only when a sanitizer is installed (the instrumentation guards on the
ambient slot), so the unsanitized hot paths pay one ``None`` check.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any

import numpy as np

from ..trace.events import PID_SIM, TraceEvent
from .errors import VerifyError
from .invariants import (
    check_comm_conservation,
    check_report,
    check_stream_conservation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Event, Process, Simulator
    from ..sim.resources import Channel, Resource
    from ..smp.perf import PerfReport
    from ..smp.team import Team

#: Clock-comparison slack: DES timestamps are sums of float delays.
_EPS = 1e-9


class Sanitizer:
    """Runtime invariant checks for the simulated execution stack."""

    def __init__(self) -> None:
        #: How many times each invariant was evaluated (not violated).
        self.checks: Counter[str] = Counter()
        #: Violations raised through this sanitizer, in order.
        self.violations: list[VerifyError] = []
        #: Recoverable events witnessed (per site), e.g. injected channel
        #: delays/drops absorbed by retransmission.  Informational only.
        self.recoverable: Counter[str] = Counter()

    # ------------------------------------------------------------------
    def on_recoverable(
        self, site: str, message: str, span: TraceEvent | None = None
    ) -> None:
        """Record a fault the runtime absorbed (never raises).

        Injected faults (:mod:`repro.faults`) that a subsystem handles by
        design -- a delayed or retransmitted simulated message, a cache
        entry degraded to a recompute -- land here so a sanitized chaos
        run can distinguish "survived N faults" from "saw none".
        """
        del message, span  # recorded only as a count, by design
        self.recoverable[site] += 1

    def violation(
        self,
        invariant: str,
        message: str,
        span: TraceEvent | None = None,
        **context: Any,
    ) -> None:
        """Record and raise a :class:`VerifyError`."""
        err = VerifyError(invariant, message, span=span, **context)
        self.violations.append(err)
        raise err

    @staticmethod
    def _sim_span(name: str, t_ns: float, tid: int = 0) -> TraceEvent:
        return TraceEvent(
            name, cat="verify.violation", ts_us=t_ns / 1e3, pid=PID_SIM, tid=tid
        )

    # ------------------------------------------------------------------
    # DES kernel causality
    # ------------------------------------------------------------------
    def on_step(self, sim: "Simulator", at: float) -> None:
        """Virtual time never runs backwards."""
        self.checks["sim.clock-monotone"] += 1
        if at < sim.now - _EPS:
            self.violation(
                "sim.clock-monotone",
                f"event fires at t={at:g} after the clock reached {sim.now:g}",
                span=self._sim_span("sim.step", at),
            )

    def on_schedule(self, sim: "Simulator", at: float) -> None:
        """Callbacks cannot be scheduled into the past."""
        self.checks["sim.schedule-past"] += 1
        if at < sim.now - _EPS:
            self.violation(
                "sim.schedule-past",
                f"schedule at t={at:g} while the clock is at {sim.now:g}",
                span=self._sim_span("sim.schedule", at),
            )

    def on_event_refire(self, sim: "Simulator", event: "Event") -> None:
        """One-shot events fire exactly once."""
        self.violation(
            "sim.event-refire",
            f"event {event.name or hex(id(event))!r} succeeded twice",
            span=self._sim_span(event.name or "event", sim.now),
        )

    def on_late_resume(self, sim: "Simulator", process: "Process") -> None:
        """Nothing runs after its process completed."""
        self.violation(
            "sim.event-after-complete",
            f"process {process.name!r} resumed after completion",
            span=self._sim_span(process.name, sim.now, tid=process._tid),
        )

    # ------------------------------------------------------------------
    # Resource and channel discipline
    # ------------------------------------------------------------------
    def on_grant(self, resource: "Resource", ticket: int) -> None:
        """Grants respect capacity and strict FIFO request order."""
        self.checks["resource.mutual-exclusion"] += 1
        sim = resource.sim
        if resource.in_use > resource.capacity:
            self.violation(
                "resource.mutual-exclusion",
                f"resource {resource.name!r} holds {resource.in_use} users "
                f"over capacity {resource.capacity}",
                span=self._sim_span(resource.name or "resource", sim.now),
            )
        self.checks["resource.fifo-grant"] += 1
        if ticket != resource._next_grant:
            self.violation(
                "resource.fifo-grant",
                f"resource {resource.name!r} granted request #{ticket} "
                f"while #{resource._next_grant} is still waiting",
                span=self._sim_span(resource.name or "resource", sim.now),
            )

    def on_release(self, resource: "Resource") -> None:
        """Only held resources can be released."""
        self.checks["resource.idle-release"] += 1
        if resource.in_use <= 0:
            self.violation(
                "resource.idle-release",
                f"release of idle resource {resource.name!r}",
                span=self._sim_span(
                    resource.name or "resource", resource.sim.now
                ),
            )

    def on_channel(self, channel: "Channel") -> None:
        """Bounded buffers never exceed their capacity."""
        self.checks["channel.occupancy"] += 1
        if channel.occupancy > channel.capacity:
            self.violation(
                "channel.occupancy",
                f"channel {channel.name!r} buffers {channel.occupancy} "
                f"messages over capacity {channel.capacity}",
                span=self._sim_span(
                    channel.name or "channel", channel.sim.now
                ),
            )

    # ------------------------------------------------------------------
    # SPMD phase runtime
    # ------------------------------------------------------------------
    def on_phase(self, team: "Team", name: str, outcome: Any) -> None:
        """Phase outcomes are well-shaped, finite and non-negative."""
        self.checks["team.phase-outcome"] += 1
        if outcome.n_procs != team.n_procs:
            self.violation(
                "team.phase-outcome",
                f"phase {name!r} produced {outcome.n_procs} outcomes for a "
                f"team of {team.n_procs}",
            )
        for cat in ("busy", "lmem", "rmem", "sync"):
            arr = getattr(outcome, cat)
            if not np.all(np.isfinite(arr)) or np.any(arr < -_EPS):
                tid = int(np.argmin(arr))
                self.violation(
                    "team.phase-outcome",
                    f"phase {name!r} charged processor {tid} an invalid "
                    f"{cat.upper()} time {arr[tid]!r}",
                    span=self._sim_span(name, float(team.clock[tid]), tid),
                )

    def on_barrier(self, team: "Team", name: str) -> None:
        """Every processor arrives at the same barrier epoch."""
        self.checks["team.barrier-epoch"] += 1
        epochs = team.epochs
        if int(epochs.min()) != int(epochs.max()):
            tid = int(np.argmax(epochs != epochs[0]))
            self.violation(
                "team.barrier-epoch",
                f"barrier {name!r}: processor {tid} arrives at epoch "
                f"{int(epochs[tid])} while processor 0 is at "
                f"{int(epochs[0])}",
                span=self._sim_span(name, float(team.clock[tid]), tid),
            )

    def on_exchange_drained(
        self, sim: "Simulator", channels: Any, name: str
    ) -> None:
        """A finished exchange leaves no undelivered or unawaited message."""
        self.checks["exchange.drained"] += 1
        if not sim.idle:
            self.violation(
                "exchange.drained",
                f"exchange {name!r} ended with work still queued",
                span=self._sim_span(name, sim.now),
            )
        for ch in channels:
            if ch.occupancy or ch.blocked_senders or ch._getters:
                self.violation(
                    "exchange.drained",
                    f"exchange {name!r} ended with channel {ch.name!r} "
                    f"holding {ch.occupancy} messages, "
                    f"{ch.blocked_senders} blocked senders and "
                    f"{len(ch._getters)} starved receivers",
                    span=self._sim_span(ch.name or name, sim.now),
                )

    # ------------------------------------------------------------------
    # Algorithm-level accounting
    # ------------------------------------------------------------------
    def on_comm(
        self,
        bytes_matrix: np.ndarray,
        chunks_matrix: np.ndarray,
        row_bytes: np.ndarray | float | None,
        col_bytes: np.ndarray | float | None,
        where: str,
    ) -> None:
        """Key/byte conservation of a communication matrix."""
        self.checks["comm.key-conservation"] += 1
        try:
            check_comm_conservation(
                bytes_matrix, chunks_matrix, row_bytes, col_bytes, where
            )
        except VerifyError as err:
            self.violations.append(err)
            raise

    def on_stream_conservation(
        self, ingested: int, in_runs: int, merged: int, where: str = "stream"
    ) -> None:
        """Key conservation through the out-of-core spill/merge path."""
        self.checks["stream.key-conservation"] += 1
        try:
            check_stream_conservation(ingested, in_runs, merged, where)
        except VerifyError as err:
            self.violations.append(err)
            raise

    def on_report(self, report: "PerfReport", label: str = "") -> None:
        """The paper's accounting identity for a finished run."""
        self.checks["report.accounting-identity"] += 1
        try:
            check_report(report, label)
        except VerifyError as err:
            self.violations.append(err)
            raise
