"""Structured verification failures.

A :class:`VerifyError` names the violated invariant (see
``docs/VERIFY.md`` for the catalogue) and can carry the offending trace
span as a :class:`~repro.trace.TraceEvent`, so a failure points at the
exact (pid, tid, timestamp) where the runtime went wrong.

``VerifyError`` subclasses :class:`~repro.sim.engine.SimError`: several
invariants (double event fire, idle release, scheduling into the past)
were already fatal ``SimError``s in the unsanitized kernel, and code or
tests catching ``SimError`` must keep working when the sanitizer upgrades
those failures to structured ones.
"""

from __future__ import annotations

from typing import Any

from ..sim.engine import SimError
from ..trace.events import TraceEvent


class VerifyError(SimError):
    """An invariant of the runtime or its accounting was violated."""

    def __init__(
        self,
        invariant: str,
        message: str,
        span: TraceEvent | None = None,
        **context: Any,
    ):
        self.invariant = invariant
        self.span = span
        self.context = dict(context)
        parts = [f"[{invariant}] {message}"]
        if span is not None:
            parts.append(
                f"at {span.name!r} (pid={span.pid}, tid={span.tid}, "
                f"ts={span.ts_us:g}us)"
            )
        if context:
            parts.append(
                "{" + ", ".join(f"{k}={v!r}" for k, v in context.items()) + "}"
            )
        super().__init__(" ".join(parts))
