"""Command-line interface: regenerate any of the paper's tables/figures,
or trace one sort end to end.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig3                 # full grid (slow, minutes)
    python -m repro fig3 --small         # 2 sizes x 2 processor counts
    python -m repro table1 fig4 --small  # several at once
    python -m repro fig3 --small --trace-out fig3.json   # + Perfetto trace
    python -m repro tables2_and_3 --parallel 4           # fan cells out
    python -m repro fig3 --no-cache      # skip the persistent disk cache

    # Inspect / manage the persistent result cache (~/.cache/repro or
    # $REPRO_CACHE_DIR; see docs/CACHE.md):
    python -m repro cache stats
    python -m repro cache gc --max-age-days 30
    python -m repro cache clear

    # Run a single sort under either backend and export its trace:
    python -m repro trace --backend native --algorithm sample --out t.json
    python -m repro trace --backend sim --model ccsas --procs 16

    # Analytic prediction (no simulation; milliseconds per cell):
    python -m repro predict --size 256M --procs 64 --sweep
    python -m repro calibrate --small     # fit the predictor to the DES
    python -m repro fig3 --small --backend predict

    # Verify the whole stack: run the model x algorithm x distribution
    # grid (plus the machine-zoo x workload matrix, docs/MACHINES.md) on
    # both backends under the runtime sanitizer, checking every result
    # against np.sort / np.argsort:
    python -m repro check --small
    python -m repro check --small --machine bsp
    python -m repro check --small --workload f64

    # Machine-zoo sweep as a reportable experiment (BENCH_5.json):
    python -m repro machine_zoo --small --json benchmarks/BENCH_5.json

    # Chaos-test the resilience machinery: inject a seeded, deterministic
    # fault schedule (worker crashes/hangs, shm failures, cache
    # corruption, message drops) and assert every sort still equals
    # np.sort with all faults recovered (see docs/FAULTS.md):
    python -m repro chaos --seed 0 --small
    python -m repro chaos --soak 10
    python -m repro chaos --small --scenario serve-traffic

    # Sort-as-a-service: a persistent job server on the resilient native
    # pool, and the load/latency harness that drives it (docs/SERVE.md):
    python -m repro serve --port 7453
    python -m repro loadgen --port 7453 --clients 8 --duration 30
    python -m repro loadgen --spawn-server --clients 8 --duration 30 \\
        --json benchmarks/BENCH_2.json
"""

from __future__ import annotations

import argparse
import sys

from .core.experiment import ExperimentRunner
from .report.experiments import EXPERIMENTS
from .trace import MemoryRecorder, write_chrome_trace

SMALL_GRID = {
    "table1": dict(sizes=["1M", "16M"]),
    "fig1": dict(sizes=["1M", "64M"], procs=[16, 64]),
    "fig2": dict(sizes=["1M", "64M"], procs=[16, 64]),
    "fig3": dict(sizes=["1M", "64M"], procs=[16, 64]),
    "fig4": dict(),
    "fig5": dict(sizes=["1M", "256M"]),
    "fig6": dict(sizes=["1M", "256M"]),
    "fig7": dict(sizes=["1M", "64M"], procs=[16, 64]),
    "fig8": dict(),
    "fig9": dict(sizes=["1M", "256M"]),
    "fig10": dict(sizes=["1M", "256M"]),
    "tables2_and_3": dict(
        sizes=["1M", "64M"], procs=[16, 64], radix_choices=[8, 11]
    ),
    "summary": dict(sizes=["1M", "64M"], procs=[16, 64]),
    "predict_compare": dict(sizes=["1M"], procs=[16]),
    "native_path": dict(
        sizes=[1 << 18], distributions=["random", "zero"], repeats=2
    ),
    "stream_path": dict(
        sizes=[1 << 18], distributions=["random", "zero"], n_workers=2
    ),
    "machine_zoo": dict(n=16 * 128, p=16),
}


def _trace_main(argv: list[str]) -> int:
    """The ``trace`` subcommand: run one sort, export a Chrome trace."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one sort on a chosen backend and write a "
        "Chrome-trace JSON (chrome://tracing / Perfetto).",
    )
    parser.add_argument(
        "--backend", choices=["sim", "native"], default="sim",
        help="execution substrate (default: sim)",
    )
    parser.add_argument(
        "--algorithm", choices=["radix", "sample"], default="radix"
    )
    parser.add_argument(
        "--model", default="shmem",
        help="programming model, sim backend only (default: shmem)",
    )
    parser.add_argument(
        "--size", type=int, default=1 << 16,
        help="number of keys (default: 65536)",
    )
    parser.add_argument(
        "--procs", type=int, default=None,
        help="simulated processors / native workers (default: backend's)",
    )
    parser.add_argument(
        "--distribution", default="gauss",
        help="key distribution (default: gauss)",
    )
    parser.add_argument(
        "--verbose-trace", action="store_true",
        help="include per-message and per-DES-process events",
    )
    parser.add_argument(
        "--out", "--trace-out", dest="out", default="trace.json",
        help="output path (default: trace.json)",
    )
    args = parser.parse_args(argv)

    from .core.api import sort
    from .data import generate

    n_procs = args.procs
    if args.backend == "sim" and n_procs is None:
        n_procs = 16
    gen_procs = n_procs if args.backend == "sim" else 1
    keys = generate(args.distribution, args.size, gen_procs or 1)
    recorder = MemoryRecorder(verbose=args.verbose_trace)
    result = sort(
        keys,
        algorithm=args.algorithm,
        backend=args.backend,
        model=args.model,
        n_procs=n_procs,
        trace=recorder,
    )
    write_chrome_trace(args.out, recorder)
    means = result.report.category_means_ns()
    print(
        f"{args.backend}/{args.algorithm}: {len(keys)} keys on "
        f"{result.n_procs} procs -> {result.time_us:,.1f} us"
        + (f" ({result.wall_time_s * 1e3:.1f} ms wall)" if result.wall_time_s else "")
    )
    print(
        "  " + "  ".join(f"{k}={v / 1e3:,.1f}us" for k, v in means.items())
    )
    print(f"  {len(recorder.events)} trace events -> {args.out}")
    return 0


def _check_main(argv: list[str]) -> int:
    """The ``check`` subcommand: sanitized differential verification."""
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Run every model x algorithm x distribution through "
        "both backends under the runtime sanitizer and compare each "
        "result against np.sort.  Exit 0 iff every invariant held.",
    )
    parser.add_argument(
        "--small", action="store_true",
        help="reduced grid: 3 distributions, 2K keys (seconds, not minutes)",
    )
    parser.add_argument(
        "--no-native", action="store_true",
        help="skip the native (real host processes) backend",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="run the simulated grid points across N worker processes",
    )
    parser.add_argument(
        "--backend", choices=["all", "sim", "native", "predict"],
        default="all",
        help="restrict the sweep: 'predict' cross-validates the analytic "
        "predictor against the simulated grid on the same keys "
        "(default: all)",
    )
    parser.add_argument(
        "--machine", metavar="NAME", default=None,
        help="restrict the sweep to one machine-zoo member "
        "(origin2000, multicore, bsp, ap1000; see docs/MACHINES.md)",
    )
    parser.add_argument(
        "--workload", metavar="KIND", default=None,
        help="restrict the sweep to one workload kind "
        "(u32, u64, f64, payload, dupheavy, antisample)",
    )
    args = parser.parse_args(argv)

    from .verify import run_check

    return run_check(
        small=args.small, native=not args.no_native, parallel=args.parallel,
        backend=args.backend, machine=args.machine, workload=args.workload,
    )


def _parse_size(text: str) -> int:
    """Accept the paper's size labels ('256M') or raw key counts."""
    from .core.experiment import SIZES

    if text in SIZES:
        return SIZES[text]
    try:
        return int(text)
    except ValueError:
        raise SystemExit(
            f"unknown size {text!r}; use a key count or one of "
            f"{', '.join(SIZES)}"
        ) from None


def _predict_main(argv: list[str]) -> int:
    """The ``predict`` subcommand: analytic prediction, no simulation."""
    parser = argparse.ArgumentParser(
        prog="python -m repro predict",
        description="Predict sort performance analytically (the "
        "calibrated 'predict' backend) -- milliseconds per cell, no "
        "discrete-event simulation, no key array at paper scale.",
    )
    parser.add_argument(
        "--algorithm", choices=["radix", "sample"], default="radix"
    )
    parser.add_argument(
        "--model", default="shmem",
        help="programming model (default: shmem); ignored with --sweep",
    )
    parser.add_argument(
        "--size", default="256M",
        help="labeled key count: a paper label like 256M or an integer "
        "(default: 256M)",
    )
    parser.add_argument(
        "--procs", type=int, default=64,
        help="processor count (default: 64)",
    )
    parser.add_argument(
        "--radix", type=int, default=None,
        help="radix-digit width (default: the algorithm's tuned choice)",
    )
    parser.add_argument(
        "--distribution", default="gauss",
        help="key-distribution family (default: gauss)",
    )
    parser.add_argument(
        "--calibration", metavar="PATH", default=None,
        help="calibration artifact to apply (default: the active one -- "
        "$REPRO_CALIBRATION, the user cache, or the packaged default)",
    )
    parser.add_argument(
        "--uncalibrated", action="store_true",
        help="disable calibration (raw closed-form predictions)",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="predict every model x both algorithms at this size/procs "
        "and print one table (the paper-scale sweep)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the predictions as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    import time as _time

    import numpy as np

    from .core.api import sort
    from .predict import PredictedBackend, load_calibration
    from .verify.differential import RADIX_MODELS, SAMPLE_MODELS

    if args.uncalibrated:
        backend = PredictedBackend(calibration=False)
    elif args.calibration is not None:
        backend = PredictedBackend(
            calibration=load_calibration(args.calibration)
        )
    else:
        backend = PredictedBackend()
    n = _parse_size(args.size)

    cells = (
        [
            (alg, model)
            for alg, models in (
                ("radix", RADIX_MODELS), ("sample", SAMPLE_MODELS)
            )
            for model in models
        ]
        if args.sweep
        else [(args.algorithm, args.model)]
    )
    rows = []
    t0 = _time.perf_counter()
    for alg, model in cells:
        result = sort(
            np.empty(0, dtype=np.int64),
            algorithm=alg,
            backend=backend,
            model=model,
            n_procs=args.procs,
            radix=args.radix,
            n_labeled=n,
            distribution=args.distribution,
        )
        rows.append((alg, model, result))
    wall_s = _time.perf_counter() - t0

    print(
        f"predicted: {n:,} {args.distribution} keys on {args.procs} procs "
        f"({wall_s * 1e3:.0f} ms wall for {len(rows)} cell"
        f"{'s' if len(rows) != 1 else ''})"
    )
    print(f"  {'cell':<18} {'time':>12}  per-processor category means")
    for alg, model, result in rows:
        means = result.report.category_means_ns()
        detail = "  ".join(f"{k}={v / 1e6:,.1f}ms" for k, v in means.items())
        print(
            f"  {alg + '/' + model:<18} {result.time_us / 1e3:>9,.1f} ms  "
            f"{detail}"
        )
    if args.json:
        import json

        payload = {
            "n_labeled": n,
            "n_procs": args.procs,
            "distribution": args.distribution,
            "wall_s": wall_s,
            "cells": [
                {
                    "algorithm": alg,
                    "model": model,
                    "time_ns": result.time_ns,
                    "category_means_ns": result.report.category_means_ns(),
                }
                for alg, model, result in rows
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"{len(rows)} predictions -> {args.json}", file=sys.stderr)
    return 0


def _calibrate_main(argv: list[str]) -> int:
    """The ``calibrate`` subcommand: fit the predictor to the simulator."""
    parser = argparse.ArgumentParser(
        prog="python -m repro calibrate",
        description="Fit the analytic predictor's per-(algorithm, model) "
        "exchange overhead factors against simulated grid cells and "
        "persist the calibration artifact with its error bands.",
    )
    parser.add_argument(
        "--small", action="store_true",
        help="reduced fitting grid (seconds, not minutes)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="artifact path (default: the user cache, "
        "$REPRO_CACHE_DIR/calibration.json)",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="compute the simulated reference cells across N workers",
    )
    args = parser.parse_args(argv)

    from .predict import default_calibration_path, fit_calibration

    cal = fit_calibration(small=args.small, parallel=args.parallel)
    out = args.out if args.out is not None else str(default_calibration_path())
    cal.save(out)
    print(f"calibration ({cal.meta.get('n_cells', '?')} cells) -> {out}")
    print(f"  {'group':<16} {'BUSY':>6} {'LMEM':>6} {'RMEM':>6} {'SYNC':>6}"
          f"  {'median err':>10} {'p95 err':>8}")
    for group in sorted(cal.factors):
        f = cal.factors[group]
        band = cal.error.get(group, {})
        print(
            f"  {group:<16} "
            + " ".join(f"{f[c]:>6.3f}" for c in ("BUSY", "LMEM", "RMEM", "SYNC"))
            + f"  {band.get('median_abs_rel', 0.0):>10.2%}"
            + f" {band.get('p95_abs_rel', 0.0):>8.2%}"
        )
    worst = cal.worst_median_error()
    print(f"  worst per-group median |rel error|: {worst:.2%}")
    return 0


def _chaos_main(argv: list[str]) -> int:
    """The ``chaos`` subcommand: seeded fault-injection matrix."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run the deterministic chaos matrix: inject seeded "
        "faults (worker crash/hang/slowdown, shared-memory and cache "
        "failures, simulated message delay/drop) across both backends "
        "and assert every sort equals np.sort with every fault "
        "recovered.  Exit 0 iff all scenarios pass.",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="fault-schedule seed; the same seed replays the identical "
        "schedule (default: 0)",
    )
    parser.add_argument(
        "--small", action="store_true",
        help="reduced key counts (seconds, not minutes)",
    )
    parser.add_argument(
        "--soak", type=int, default=1, metavar="N",
        help="repeat the matrix N times with derived seeds (default: 1)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="also write a Chrome-trace JSON including the fault track",
    )
    parser.add_argument(
        "--scenario", metavar="NAME", default=None,
        help="run only the named scenario (e.g. serve-traffic); the "
        "fault-kind coverage floor applies to full runs only",
    )
    args = parser.parse_args(argv)

    from .faults import run_chaos

    return run_chaos(
        seed=args.seed, small=args.small, soak=args.soak,
        trace_out=args.trace_out, scenario=args.scenario,
    )


def _serve_main(argv: list[str]) -> int:
    """The ``serve`` subcommand: run the sort job server until stopped."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve sort jobs over TCP on the resilient native "
        "worker pool with a preallocated shared-memory arena (zero "
        "per-job segment create/attach at steady state).  Runs until "
        "Ctrl-C or a client 'shutdown' op; see docs/SERVE.md.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = pick a free port and print it)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="pool width (default: $REPRO_WORKERS or the CPU count)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=8,
        help="admission cap on queued+running jobs (default: 8)",
    )
    parser.add_argument(
        "--data-slab-mb", type=int, default=8,
        help="data-slab size; bounds the largest job (default: 8 MiB)",
    )
    parser.add_argument(
        "--deadline-s", type=float, default=30.0,
        help="default per-job deadline (default: 30)",
    )
    parser.add_argument(
        "--max-frame-mb", type=int, default=64,
        help="per-frame wire cap; FrameTooLarge rejections report it and "
        "streaming jobs chunk under it (default: 64 MiB)",
    )
    parser.add_argument(
        "--max-streams", type=int, default=2,
        help="concurrent streaming sessions (default: 2)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome-trace JSON (serve.job spans on the serve "
        "track) on shutdown",
    )
    args = parser.parse_args(argv)

    import asyncio
    import signal

    from .serve import ServeServer

    recorder = MemoryRecorder() if args.trace_out else None
    server = ServeServer(
        args.host, args.port,
        n_workers=args.workers,
        queue_depth=args.queue_depth,
        data_slab_bytes=args.data_slab_mb << 20,
        default_deadline_s=args.deadline_s,
        recorder=recorder,
        max_frame=args.max_frame_mb << 20,
        max_streams=args.max_streams,
    )

    async def _amain() -> None:
        await server.start()
        print(f"serving on {server.host}:{server.port} "
              f"({server.engine.pool.n_workers} workers, "
              f"queue depth {server.queue_depth})", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.request_stop)
        try:
            await server._stop_event.wait()
        finally:
            await server.aclose()

    asyncio.run(_amain())
    if recorder is not None:
        write_chrome_trace(args.trace_out, recorder)
        print(f"{len(recorder.events)} trace events -> {args.trace_out}",
              file=sys.stderr)
    return 0


def _loadgen_main(argv: list[str]) -> int:
    """The ``loadgen`` subcommand: drive a server, verify, measure."""
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description="Generate concurrent sort jobs against a repro.serve "
        "endpoint, verify every result against np.sort, and report "
        "jobs/sec with p50/p99 latency.  Exit 0 iff every completed job "
        "was correct and no client errored.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help="server port (omit with --spawn-server)",
    )
    parser.add_argument(
        "--spawn-server", action="store_true",
        help="run a server in-process for the duration of the test",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent client threads (default: 4)",
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, metavar="S",
        help="seconds of load (default: 10)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="spawned server's pool width (with --spawn-server)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=8,
        help="spawned server's admission cap (with --spawn-server)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the metrics as a BENCH_2.json-style document",
    )
    args = parser.parse_args(argv)

    if args.port is None and not args.spawn_server:
        parser.error("need --port or --spawn-server")

    from contextlib import nullcontext

    from .serve import loadgen_ok, loadgen_results, run_loadgen, server_in_thread

    ctx = (
        server_in_thread(
            n_workers=args.workers, queue_depth=args.queue_depth
        )
        if args.spawn_server
        else nullcontext()
    )
    with ctx as server:
        port = server.port if server is not None else args.port
        metrics = run_loadgen(
            args.host, port,
            clients=args.clients, duration_s=args.duration, seed=args.seed,
        )

    jobs, thr, lat = metrics["jobs"], metrics["throughput"], metrics["latency"]
    steady = metrics["steady_state"]
    print(
        f"loadgen: {jobs['completed']} jobs in {thr['wall_s']:.1f}s "
        f"({thr['jobs_per_s']:.1f} jobs/s) across {args.clients} clients"
    )
    if lat["p50_s"] is not None:
        print(
            f"  latency p50={lat['p50_s'] * 1e3:.1f}ms "
            f"p99={lat['p99_s'] * 1e3:.1f}ms max={lat['max_s'] * 1e3:.1f}ms"
        )
    rejected = ", ".join(f"{k}={v}" for k, v in jobs["rejected"].items())
    print(
        f"  incorrect={jobs['incorrect']} errors={jobs['errors']}"
        + (f" rejected: {rejected}" if rejected else "")
    )
    print(
        f"  steady state: shm_creates={steady['shm_creates']} "
        f"shm_attaches={steady['shm_attaches']} "
        f"(warmup took {steady['warmup_rounds']} rounds)"
    )
    for sample in jobs["error_samples"]:
        print(f"  ERROR {sample}", file=sys.stderr)
    if args.json:
        from .report.emit import write_results_json

        write_results_json(
            args.json, loadgen_results(metrics),
            meta={"clients": args.clients, "duration_s": args.duration,
                  "seed": args.seed},
        )
        print(f"metrics -> {args.json}", file=sys.stderr)
    return 0 if loadgen_ok(metrics) else 1


def _cache_main(argv: list[str]) -> int:
    """The ``cache`` subcommand: stats / clear / gc for the disk cache."""
    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect or manage the persistent experiment result "
        "cache (default ~/.cache/repro, override with REPRO_CACHE_DIR).",
    )
    parser.add_argument("action", choices=["stats", "clear", "gc"])
    parser.add_argument(
        "--dir", metavar="PATH", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--max-age-days", type=float, default=None, metavar="D",
        help="gc only: additionally remove entries older than D days",
    )
    args = parser.parse_args(argv)

    from .core.gridcache import GridCache, format_stats

    cache = GridCache(args.dir)
    if args.action == "stats":
        print(format_stats(cache))
    elif args.action == "clear":
        n = cache.clear()
        print(f"removed {n} cached entries from {cache.root}")
    else:  # gc
        removed = cache.gc(max_age_days=args.max_age_days)
        total = sum(removed.values())
        detail = ", ".join(f"{k}={v}" for k, v in removed.items() if v)
        print(
            f"gc removed {total} entries from {cache.root}"
            + (f" ({detail})" if detail else "")
        )
    return 0


def _stream_main(argv: list[str]) -> int:
    """The ``stream`` subcommand: out-of-core sort / top-k over a file
    or a generated distribution (docs/STREAM.md)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro stream",
        description="Externally sort (or take the top-k of) a key stream "
        "that need not fit the chunk budget: chunked ingest, sorted spill "
        "runs on the native pool, fault-tolerant k-way merge.",
    )
    parser.add_argument(
        "mode", choices=["sort", "topk"],
        help="'sort': full external sort; 'topk': bounded-memory largest-k",
    )
    parser.add_argument(
        "--input", metavar="PATH", default=None,
        help="raw little-endian key file to ingest (default: generate)",
    )
    parser.add_argument(
        "--dtype", default="<i8",
        choices=["<i4", "<i8", "<u4", "<u8"],
        help="key dtype of the input stream (default: <i8)",
    )
    parser.add_argument(
        "--size", type=int, default=1 << 20,
        help="generated keys when no --input (default: 1Mi)",
    )
    parser.add_argument(
        "--distribution", default="random",
        help="generated key distribution (default: random)",
    )
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--chunk-keys", type=int, default=None,
        help="keys per in-memory chunk / spill run (default: 4Mi, or "
        "size/8 for generated input so runs and a merge are exercised)",
    )
    parser.add_argument(
        "--fan-in", type=int, default=None,
        help="max runs merged per pass (default: 16)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="native pool width for chunk sorts (default: auto)",
    )
    parser.add_argument(
        "--k", type=int, default=100,
        help="topk only: how many largest keys to keep (default: 100)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="sort only: write the sorted keys as raw bytes here",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="sort only: skip the streaming order/conservation checks",
    )
    args = parser.parse_args(argv)

    import numpy as np

    from .stream import DEFAULT_FAN_IN, external_sort, stream_topk

    if args.input is not None:
        source: object = args.input
        n_hint = None
    else:
        from .data import generate

        n = args.size - (args.size % 4) or 4
        keys = generate(args.distribution, n, 4, seed=max(1, args.seed))
        source = keys.astype(np.dtype(args.dtype))
        n_hint = n

    if args.mode == "topk":
        chunk = args.chunk_keys or (1 << 20)
        top = stream_topk(source, args.k, chunk_keys=chunk, dtype=args.dtype)
        print(
            f"top-{args.k} of stream ({top.dtype.str}): "
            f"min={top[0]} max={top[-1]}" if len(top) else "empty stream"
        )
        if args.out:
            np.ascontiguousarray(top).tofile(args.out)
            print(f"{len(top)} keys -> {args.out}")
        return 0

    chunk = args.chunk_keys
    if chunk is None:
        chunk = max(4, n_hint // 8) if n_hint else 4 << 20
    result = external_sort(
        source,
        chunk_keys=chunk,
        dtype=args.dtype,
        fan_in=args.fan_in or DEFAULT_FAN_IN,
        n_workers=args.workers,
        out=args.out,
        verify=not args.no_verify,
    )
    print(
        f"externally sorted {result.n_keys:,} keys "
        f"({result.mb_sorted:.1f} MB, {result.dtype}) in "
        f"{result.elapsed_s * 1e3:,.1f} ms: {result.runs} run(s), "
        f"{result.merge_passes} merge pass(es), "
        f"{result.bytes_spilled / 1e6:.1f} MB spilled, "
        f"{result.throughput_mb_s:.1f} MB/s"
        + (", verified" if result.verified else "")
    )
    if result.faults.injected:
        print(
            f"  faults: {result.faults.injected} injected, "
            f"{result.faults.recovered} recovered"
        )
    if args.out:
        print(f"sorted keys -> {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "stream":
        return _stream_main(argv[1:])
    if argv and argv[0] == "check":
        return _check_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        return _loadgen_main(argv[1:])
    if argv and argv[0] == "predict":
        return _predict_main(argv[1:])
    if argv and argv[0] == "calibrate":
        return _calibrate_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from Shan & Singh (SC 1999).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'list'), 'list' / 'all', or 'trace' "
        "(see 'python -m repro trace --help')",
    )
    parser.add_argument(
        "--small", action="store_true", help="reduced grid (much faster)"
    )
    parser.add_argument(
        "--backend",
        choices=["sim", "predict"],
        default="sim",
        help="execution substrate for experiment grid cells: 'sim' (the "
        "discrete-event simulation) or 'predict' (the calibrated "
        "analytic model; milliseconds per cell, bypasses the cache and "
        "process pool).  Use the 'trace' subcommand for the native "
        "backend",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="also record a structured trace of every simulated run and "
        "write it as Chrome-trace JSON (chrome://tracing / Perfetto); "
        "implies --no-cache (a cached cell would run no simulation to "
        "trace)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write every experiment's numbers as machine-readable "
        "JSON (diff against benchmarks/BENCH_0.json)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="compute grid cells missing from the cache across N worker "
        "processes (default: serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the persistent disk cache (results are neither read "
        "from nor written to $REPRO_CACHE_DIR / ~/.cache/repro)",
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:<14} {doc}")
        print("trace          run one sort on a backend and export its trace")
        print("predict        analytic performance prediction (no simulation)")
        print("calibrate      fit the analytic predictor against the simulator")
        print("cache          stats / clear / gc for the persistent result cache")
        print("chaos          seeded fault-injection matrix over both backends")
        print("serve          TCP sort-job server on the resilient native pool")
        print("loadgen        load/latency harness for a repro.serve endpoint")
        print("stream         out-of-core sort / top-k over a key stream")
        return 0

    wanted = (
        list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    )
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    recorder = MemoryRecorder() if args.trace_out else None
    runner = ExperimentRunner(
        cache=False if (args.no_cache or args.trace_out) else None,
        parallel=args.parallel,
        backend=args.backend,
    )
    from .trace import use_recorder

    collected = []
    with use_recorder(recorder):
        for exp_id in wanted:
            kwargs = SMALL_GRID.get(exp_id, {}) if args.small else {}
            result = EXPERIMENTS[exp_id](runner, **kwargs)
            results = result if isinstance(result, tuple) else (result,)
            for r in results:
                collected.append(r)
                print()
                print(r.text)
    if args.json:
        from .report.emit import write_results_json

        write_results_json(
            args.json,
            collected,
            meta={"experiments": wanted, "small": args.small},
        )
        print(f"\n{len(collected)} experiment results -> {args.json}",
              file=sys.stderr)
    if recorder is not None:
        write_chrome_trace(args.trace_out, recorder)
        print(
            f"\n{len(recorder.events)} trace events -> {args.trace_out}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
