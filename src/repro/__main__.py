"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig3                 # full grid (slow, minutes)
    python -m repro fig3 --small         # 2 sizes x 2 processor counts
    python -m repro table1 fig4 --small  # several at once
"""

from __future__ import annotations

import argparse
import sys

from .core.experiment import ExperimentRunner
from .report.experiments import EXPERIMENTS

SMALL_GRID = {
    "table1": dict(sizes=["1M", "16M"]),
    "fig1": dict(sizes=["1M", "64M"], procs=[16, 64]),
    "fig2": dict(sizes=["1M", "64M"], procs=[16, 64]),
    "fig3": dict(sizes=["1M", "64M"], procs=[16, 64]),
    "fig4": dict(),
    "fig5": dict(sizes=["1M", "256M"]),
    "fig6": dict(sizes=["1M", "256M"]),
    "fig7": dict(sizes=["1M", "64M"], procs=[16, 64]),
    "fig8": dict(),
    "fig9": dict(sizes=["1M", "256M"]),
    "fig10": dict(sizes=["1M", "256M"]),
    "tables2_and_3": dict(
        sizes=["1M", "64M"], procs=[16, 64], radix_choices=[8, 11]
    ),
    "summary": dict(sizes=["1M", "64M"], procs=[16, 64]),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from Shan & Singh (SC 1999).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'list'), or 'list' / 'all'",
    )
    parser.add_argument(
        "--small", action="store_true", help="reduced grid (much faster)"
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:<14} {doc}")
        return 0

    wanted = (
        list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    )
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    runner = ExperimentRunner()
    for exp_id in wanted:
        kwargs = SMALL_GRID.get(exp_id, {}) if args.small else {}
        result = EXPERIMENTS[exp_id](runner, **kwargs)
        results = result if isinstance(result, tuple) else (result,)
        for r in results:
            print()
            print(r.text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
