"""The native (actually-parallel) backend.

Wraps :mod:`repro.native` behind the :class:`~repro.backend.base.Backend`
seam and gives it real performance accounting: every pool phase is timed
per worker (in-task wall clock = BUSY) and in the parent (phase span), so
the barrier wait each worker spends idle behind stragglers -- plus the
parent's between-phase coordination (offset/splitter computation) --
becomes SYNC.  The result is a :class:`~repro.smp.perf.PerfReport` with
the same shape the simulated backend emits; LMEM/RMEM stay zero because a
host process cannot observe its own cache misses, mirroring the paper's
note that its CC-SAS tools could not separate memory categories either.
"""

from __future__ import annotations

import time

import numpy as np

from ..faults.context import current_fault_plan
from ..native.kernels import resolve as resolve_kernel
from ..native.pool import PhaseTiming, WorkerPool, POOL_TID
from ..native.radix import parallel_radix_sort
from ..native.sample import parallel_sample_sort
from ..smp.perf import PerfCounters, PerfReport, PhaseRecord
from ..trace import PID_NATIVE, TraceRecorder, current_recorder, use_recorder
from ..verify.context import current_sanitizer
from .base import (
    Backend,
    SortJob,
    SortResult,
    check_keys,
    finish_workload,
    prepare_workload,
    warn_ignored_fields,
)

_S_TO_NS = 1e9


def report_from_timings(
    timings: list[PhaseTiming], wall_s: float, label: str
) -> PerfReport:
    """Map per-phase wall-clock timings onto the paper's report shape."""
    if not timings:
        # Degenerate runs (serial fallback with no phases): all wall time
        # is the one processor's BUSY.
        return PerfReport(
            n_procs=1,
            counters=[PerfCounters(busy_ns=wall_s * _S_TO_NS)],
            phases=[PhaseRecord("sort", np.array([wall_s * _S_TO_NS]))],
            label=label,
        )
    p = max(len(t.tasks) for t in timings)
    counters = [PerfCounters() for _ in range(p)]
    records: list[PhaseRecord] = []
    prev_end: float | None = None
    for t in timings:
        if prev_end is not None:
            # Workers idle while the parent computes offsets/splitters
            # between phases: pure synchronization from their view.
            gap = max(0.0, t.begin - prev_end)
            if gap > 0.0:
                for c in counters:
                    c.sync_ns += gap * _S_TO_NS
                records.append(
                    PhaseRecord("coordinate", np.full(p, gap * _S_TO_NS))
                )
        prev_end = t.end
        wall = t.elapsed_s
        for w in range(p):
            busy = t.tasks[w][1] - t.tasks[w][0] if w < len(t.tasks) else 0.0
            busy = min(max(0.0, busy), wall)
            counters[w].busy_ns += busy * _S_TO_NS
            counters[w].sync_ns += (wall - busy) * _S_TO_NS
        records.append(PhaseRecord(t.name, np.full(p, wall * _S_TO_NS)))
    return PerfReport(n_procs=p, counters=counters, phases=records, label=label)


class NativeBackend(Backend):
    """Sorts with real processes on the host and reports wall-clock time."""

    name = "native"

    def __init__(self, pool: WorkerPool | None = None):
        """An externally supplied ``pool`` amortizes fork startup across
        jobs; it must have been built with ``collect_timings=True`` for
        per-phase accounting and is not closed by this backend."""
        self._shared_pool = pool

    def run(
        self, job: SortJob, recorder: TraceRecorder | None = None
    ) -> SortResult:
        # Warn about the fields the *caller* set before the workload seam
        # rewrites the job (the transform sets key_bits itself).
        warn_ignored_fields(
            job, self.name,
            ("model", "machine", "costs", "n_labeled", "key_bits", "distribution"),
        )
        job, workload_plan = prepare_workload(job)
        keys = check_keys(job.keys, job.algorithm)
        with use_recorder(recorder) as rec:
            if rec is None:  # pragma: no cover - use_recorder always yields
                rec = current_recorder()
            plan = current_fault_plan()
            pool = self._shared_pool or WorkerPool(
                job.n_procs,
                collect_timings=True,
                # An ambient fault plan arms supervision so injected
                # worker faults are absorbed instead of fatal.
                supervise=plan is not None,
                phase_timeout_s=10.0 if plan is not None else None,
            )
            stats_before = plan.stats() if plan is not None else None
            first_timing = len(pool.timings)
            t0 = time.perf_counter()
            try:
                if job.algorithm == "radix":
                    kwargs = {} if job.radix is None else {"radix": job.radix}
                    out = parallel_radix_sort(keys, pool=pool, **kwargs)
                else:
                    out = parallel_sample_sort(keys, pool=pool)
                t1 = time.perf_counter()
            finally:
                if self._shared_pool is None:
                    pool.close()
            timings = pool.timings[first_timing:]
            if rec.enabled:
                rec.complete(
                    f"native.{job.algorithm}",
                    cat="native.sort",
                    ts_us=t0 * 1e6,
                    dur_us=(t1 - t0) * 1e6,
                    pid=PID_NATIVE,
                    tid=POOL_TID,
                    args={
                        "n_keys": len(keys),
                        "n_workers": pool.n_workers,
                        "kernel": resolve_kernel().name,
                    },
                )
        report = report_from_timings(
            timings, t1 - t0, label=f"native/{job.algorithm}"
        )
        san = current_sanitizer()
        if san is not None:
            # Same accounting identity as the simulated backend: per
            # worker, BUSY + SYNC must tile the recorded phase spans.
            san.on_report(report, label=f"native/{job.algorithm}")
        result = SortResult(
            sorted_keys=out,
            report=report,
            backend=self.name,
            algorithm=job.algorithm,
            model_name=None,
            n_procs=report.n_procs,
            radix=job.radix,
            trace=self._collect_trace(recorder),
            wall_time_s=t1 - t0,
            faults=(
                plan.stats().since(stats_before)
                if plan is not None and stats_before is not None
                else None
            ),
        )
        return finish_workload(result, workload_plan)
