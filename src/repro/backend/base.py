"""The Backend abstraction: one runtime seam over every execution substrate.

A :class:`SortJob` describes *what* to sort; a :class:`Backend` decides
*how* (on the simulated DSM machine, or actually in parallel on the host);
a :class:`SortResult` is the uniform answer: sorted keys, a
:class:`~repro.smp.perf.PerfReport` in the paper's BUSY/LMEM/RMEM/SYNC
vocabulary, and an optional structured trace.  Everything above this seam
(public API, CLI, experiment grid, benchmarks) is backend-agnostic.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, field, replace

import numpy as np

from ..data.workloads import (
    decode_records,
    encode_records,
    float_to_sortable_u64,
    sortable_u64_to_float,
)
from ..faults.plan import FaultStats
from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..smp.perf import PerfReport
from ..sorts.radix import SortOutcome
from ..trace import MemoryRecorder, TraceEvent, TraceRecorder

ALGORITHMS = ("radix", "sample")


def infer_key_bits(keys: np.ndarray) -> int:
    """Significant bits of the largest key (the paper: "the maximum key
    value determines how many iterations will actually be needed")."""
    if len(keys) == 0:
        return 1
    return max(1, int(keys.max()).bit_length())


def check_keys(keys: np.ndarray, algorithm: str) -> np.ndarray:
    """Shared request validation; returns the keys as a contiguous array."""
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
        )
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if len(keys) == 0:
        raise ValueError("keys must be non-empty")
    return keys


@dataclass(frozen=True)
class SortJob:
    """One sort request, understood by every backend.

    Field applicability per backend (``sim`` = simulated Origin2000,
    ``native`` = host multiprocessing, ``predict`` = calibrated analytic
    model):

    ============== ===== ======== ======== ==============================
    field          sim   native   predict  meaning
    ============== ===== ======== ======== ==============================
    keys           yes   yes      yes*     the workload (* ``predict``
                                           also accepts empty keys with
                                           ``distribution``+``n_labeled``
                                           set, deriving statistics from
                                           the named family instead)
    algorithm      yes   yes      yes      "radix" or "sample"
    model          yes   ignored  yes      programming model
    n_procs        yes   yes      yes      simulated processors / host
                                           worker processes; ``None`` =
                                           backend default (64 / cores)
    radix          yes   yes      yes      digit width (``None`` = the
                                           paper's per-algorithm best)
    machine        yes   ignored  yes      machine configuration
    costs          yes   ignored  yes      cost-model calibration
    n_labeled      yes   ignored  yes      labeled size for the cost
                                           model (scaled sampling)
    key_bits       yes   ignored  yes      key width driving pass count
                                           (``None`` infers from keys)
    distribution   ignored ignored yes     key-distribution family name
    ============== ===== ======== ======== ==============================

    Backends emit a :class:`RuntimeWarning` for fields set to non-default
    values that they ignore (see :func:`warn_ignored_fields`).
    """

    keys: np.ndarray = field(repr=False)
    algorithm: str = "radix"
    model: str = "shmem"
    n_procs: int | None = None
    radix: int | None = None
    machine: MachineConfig | None = None
    costs: CostModel = DEFAULT_COSTS
    n_labeled: int | None = None
    #: Simulated/predicted backends: key width driving the number of
    #: radix passes.  ``None`` infers it from the actual maximum key; the
    #: experiment grid pins it to the paper's 31-bit workload width so
    #: that sampled functional arrays still pay full-width pass counts.
    key_bits: int | None = None
    #: Predicted backend only: the key-distribution family whose expected
    #: workload statistics to predict from when ``keys`` is empty.
    distribution: str | None = None
    #: Record sorts: a payload array (same length as ``keys``) permuted
    #: alongside the keys.  Handled at the seam by
    #: :func:`prepare_workload`: the original index is packed into the
    #: low bits of a composite key, so every backend sorts records
    #: stably without algorithm changes.  All backends honor it.
    payload: np.ndarray | None = field(default=None, repr=False)


#: For each backend, the job fields it ignores, with the default value a
#: field must differ from before the backend warns about it.
_FIELD_DEFAULTS = {
    "model": "shmem",
    "machine": None,
    "costs": DEFAULT_COSTS,
    "n_labeled": None,
    "key_bits": None,
    "distribution": None,
}


def warn_ignored_fields(job: SortJob, backend_name: str, fields: tuple[str, ...]) -> None:
    """Warn (once per call site) about non-default job fields the backend
    will not honor -- a silently ignored ``machine=`` or ``costs=`` is a
    misconfigured experiment, not a preference."""
    ignored = [
        name
        for name in fields
        if getattr(job, name) != _FIELD_DEFAULTS[name]
    ]
    if ignored:
        warnings.warn(
            f"backend {backend_name!r} ignores SortJob field(s): "
            + ", ".join(ignored),
            RuntimeWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class WorkloadPlan:
    """What :func:`prepare_workload` did, so the result can be undone.

    ``orig_keys`` holds the caller's keys when a permutation must be
    applied back (record sorts); ``idx_bits`` is the width of the index
    packed into each composite key; ``was_float`` marks keys that went
    through the order-preserving float<->uint64 transform.
    """

    orig_keys: np.ndarray | None
    payload: np.ndarray | None
    idx_bits: int = 0
    was_float: bool = False


def prepare_workload(job: SortJob) -> tuple[SortJob, WorkloadPlan | None]:
    """Normalize a widened workload into the integer keys backends sort.

    Float keys are mapped through the order-preserving transform
    (:mod:`repro.data.workloads`); record sorts pack the original index
    into the low bits of a composite key.  Returns the (possibly
    rewritten) job plus a plan for :func:`finish_workload`, or
    ``(job, None)`` when no normalization was needed.
    """
    keys = np.ascontiguousarray(job.keys)
    is_float = keys.size > 0 and np.issubdtype(keys.dtype, np.floating)
    if job.payload is None and not is_float:
        return job, None
    orig = keys
    if is_float:
        keys = float_to_sortable_u64(keys)
    key_bits = job.key_bits or infer_key_bits(keys)
    idx_bits = 0
    if job.payload is not None:
        payload = np.ascontiguousarray(job.payload)
        if payload.shape[:1] != keys.shape:
            raise ValueError(
                f"payload length {payload.shape[0] if payload.ndim else 0} "
                f"does not match {len(keys)} keys"
            )
        keys, idx_bits = encode_records(keys, key_bits)
    else:
        payload = None
    new_job = replace(
        job, keys=keys, payload=None, key_bits=infer_key_bits(keys)
    )
    return new_job, WorkloadPlan(
        orig_keys=orig if idx_bits else None,
        payload=payload,
        idx_bits=idx_bits,
        was_float=is_float,
    )


def finish_workload(
    result: "SortResult", plan: WorkloadPlan | None
) -> "SortResult":
    """Map a backend's sorted (composite) integer keys back to the
    caller's key dtype, carrying the payload permutation along."""
    if plan is None:
        return result
    keys = result.sorted_keys
    payload = None
    if plan.idx_bits:
        perm = decode_records(keys, plan.idx_bits)
        assert plan.orig_keys is not None
        keys = plan.orig_keys[perm]
        if plan.payload is not None:
            payload = plan.payload[perm]
    elif plan.was_float:
        keys = sortable_u64_to_float(keys)
    outcome = result.outcome
    if outcome is not None:
        # Keep the embedded simulation outcome consistent with the
        # caller-visible keys (the deprecated shims return it directly).
        outcome = replace(outcome, sorted_keys=keys)
    return replace(result, sorted_keys=keys, payload=payload, outcome=outcome)


@dataclass(frozen=True)
class SortResult:
    """Sorted keys plus uniform accounting, from any backend."""

    sorted_keys: np.ndarray = field(repr=False)
    report: PerfReport
    backend: str
    algorithm: str
    model_name: str | None
    n_procs: int
    radix: int | None
    trace: tuple[TraceEvent, ...] = ()
    #: Record sorts only: the payload permuted alongside the keys
    #: (``None`` for keys-only jobs).
    payload: np.ndarray | None = field(default=None, repr=False)
    #: Simulated backend only: the full simulation outcome (passes,
    #: communication matrices, ...).
    outcome: SortOutcome | None = None
    #: Native backend only: end-to-end host wall-clock seconds.
    wall_time_s: float | None = None
    #: Faults injected into and recovered during *this* sort, when an
    #: ambient :class:`~repro.faults.FaultPlan` was installed (else None).
    faults: FaultStats | None = None

    @property
    def time_ns(self) -> float:
        return self.report.total_time_ns

    @property
    def time_us(self) -> float:
        return self.report.total_time_us

    def speedup_vs(self, sequential_ns: float) -> float:
        return self.report.speedup_vs(sequential_ns)


class Backend(abc.ABC):
    """One execution substrate for :class:`SortJob` requests."""

    #: Registry key ("sim", "native").
    name: str = ""

    @abc.abstractmethod
    def run(
        self, job: SortJob, recorder: TraceRecorder | None = None
    ) -> SortResult:
        """Execute ``job``; record structured events into ``recorder``
        (or the ambient recorder when ``None``)."""

    # ------------------------------------------------------------------
    @staticmethod
    def _collect_trace(recorder: TraceRecorder | None) -> tuple[TraceEvent, ...]:
        """Events captured by ``recorder``, if it keeps any."""
        if isinstance(recorder, MemoryRecorder):
            return tuple(recorder.events)
        return ()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
