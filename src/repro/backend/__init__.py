"""Unified execution backends.

One seam over both execution substrates::

    from repro.backend import SortJob, get_backend

    job = SortJob(keys, algorithm="radix")
    sim = get_backend("sim").run(job)      # simulated Origin2000 time
    host = get_backend("native").run(job)  # real multiprocessing wall-clock

All backends return a :class:`SortResult` with identically sorted keys
and a :class:`~repro.smp.perf.PerfReport` in the paper's
BUSY/LMEM/RMEM/SYNC vocabulary; ``get_backend("predict")`` adds the
calibrated analytic model (milliseconds per job, no DES).  Pass a
:class:`~repro.trace.MemoryRecorder` to ``run`` to capture a structured
trace exportable with :func:`repro.trace.write_chrome_trace`.
"""

from .base import (
    ALGORITHMS,
    Backend,
    SortJob,
    SortResult,
    check_keys,
    infer_key_bits,
    warn_ignored_fields,
)
from .native import NativeBackend, report_from_timings
from .simulated import DEFAULT_RADIX, SimulatedBackend


def _predicted_backend() -> Backend:
    # Imported lazily: repro.predict pulls in the experiment layer, which
    # imports this package.
    from ..predict.backend import PredictedBackend

    return PredictedBackend()


#: Registered backend constructors by public name (plus aliases).
#: Values are constructors; entries may be thunks resolved at lookup.
BACKENDS: dict[str, object] = {
    "sim": SimulatedBackend,
    "simulated": SimulatedBackend,
    "native": NativeBackend,
    "predict": _predicted_backend,
    "predicted": _predicted_backend,
}


def get_backend(name: str | Backend) -> Backend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(name, Backend):
        return name
    try:
        return BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from "
            f"{sorted(set(BACKENDS))}"
        ) from None


__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "Backend",
    "DEFAULT_RADIX",
    "NativeBackend",
    "SimulatedBackend",
    "SortJob",
    "SortResult",
    "check_keys",
    "get_backend",
    "infer_key_bits",
    "report_from_timings",
    "warn_ignored_fields",
]
