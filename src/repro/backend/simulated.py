"""The simulated-machine backend.

Wraps the existing stack -- :mod:`repro.sorts` algorithm drivers over the
:mod:`repro.smp` phase runtime over the :mod:`repro.sim` discrete-event
kernel -- behind the :class:`~repro.backend.base.Backend` seam.  The
per-processor BUSY/LMEM/RMEM/SYNC report comes straight from the
simulation; trace events are emitted by the instrumented layers (phase
spans from :class:`~repro.smp.team.Team`, message instants from the DES
exchange phases) while the job runs under the given recorder.
"""

from __future__ import annotations

import numpy as np

from ..faults.context import current_fault_plan
from ..sorts.radix import ParallelRadixSort, default_machine
from ..sorts.sample import ParallelSampleSort
from ..trace import TraceRecorder, use_recorder
from ..verify.context import current_sanitizer
from .base import (
    Backend,
    SortJob,
    SortResult,
    check_keys,
    finish_workload,
    infer_key_bits,
    prepare_workload,
    warn_ignored_fields,
)

#: The paper's best radix-digit width per algorithm (8 for radix sort,
#: 11 for sample sort's local sorts).
DEFAULT_RADIX = {"radix": 8, "sample": 11}


class SimulatedBackend(Backend):
    """Sorts on the modeled Origin2000 and reports simulated time."""

    name = "sim"

    def run(
        self, job: SortJob, recorder: TraceRecorder | None = None
    ) -> SortResult:
        job, workload_plan = prepare_workload(job)
        keys = check_keys(job.keys, job.algorithm)
        warn_ignored_fields(job, self.name, ("distribution",))
        if np.issubdtype(keys.dtype, np.signedinteger) and keys.min() < 0:
            raise ValueError("keys must be non-negative")
        if not np.issubdtype(keys.dtype, np.integer):
            raise TypeError("radix/sample sorting requires integer keys")

        radix = job.radix if job.radix is not None else DEFAULT_RADIX[job.algorithm]
        sorter_cls = (
            ParallelRadixSort if job.algorithm == "radix" else ParallelSampleSort
        )
        sorter = sorter_cls(job.model, radix=radix)
        n_procs = job.n_procs if job.n_procs is not None else 64
        machine = job.machine or default_machine(n_procs)

        key_bits = job.key_bits if job.key_bits is not None else infer_key_bits(keys)
        plan = current_fault_plan()
        stats_before = plan.stats() if plan is not None else None
        with use_recorder(recorder):
            outcome = sorter.run(
                keys,
                n_procs=n_procs,
                machine=machine,
                costs=job.costs,
                n_labeled=job.n_labeled,
                key_bits=key_bits,
            )
        san = current_sanitizer()
        if san is not None:
            # The paper's accounting identity must hold for every report
            # that crosses the backend seam.
            san.on_report(outcome.report, label=f"sim/{job.algorithm}")
        result = SortResult(
            sorted_keys=outcome.sorted_keys,
            report=outcome.report,
            backend=self.name,
            algorithm=outcome.algorithm,
            model_name=outcome.model_name,
            n_procs=outcome.n_procs,
            radix=outcome.radix,
            trace=self._collect_trace(recorder),
            outcome=outcome,
            faults=(
                plan.stats().since(stats_before)
                if plan is not None and stats_before is not None
                else None
            ),
        )
        return finish_workload(result, workload_plan)
