"""Chunked readers that slice arbitrary key streams into sorter chunks.

The external sorter never materializes its input: :func:`iter_chunks`
adapts every supported source into an iterator of contiguous ndarrays of
at most ``chunk_keys`` keys (the "arena size" of the out-of-core path --
the only full-width allocations the sort ever makes are one chunk plus
its shared sort buffers).

Sources:

- an ``np.ndarray`` -- sliced, zero-copy;
- an iterable of arrays (e.g. a generator over a message queue) --
  re-blocked so every yielded chunk except the last is exactly
  ``chunk_keys`` long;
- a ``str``/``Path`` -- opened and read as raw little-endian keys
  (``dtype`` required);
- a binary file-like object with ``.read`` -- same raw framing; sockets
  plug in via ``sock.makefile("rb")``.

Raw byte sources must be a whole number of keys; a trailing partial key
raises :class:`~repro.stream.runfile.StreamError` rather than silently
dropping bytes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from .runfile import SUPPORTED_DTYPES, StreamError


def _check_key_dtype(dtype: np.dtype | type | str) -> np.dtype:
    dt = np.dtype(dtype)
    if dt.str not in SUPPORTED_DTYPES:
        raise StreamError(
            f"unsupported key dtype {dt.str!r}; expected one of "
            f"{SUPPORTED_DTYPES}"
        )
    return dt


def _chunks_from_array(
    keys: np.ndarray, chunk_keys: int
) -> Iterator[np.ndarray]:
    for lo in range(0, len(keys), chunk_keys):
        yield keys[lo : lo + chunk_keys]


def _chunks_from_iterable(
    parts: Iterable[np.ndarray], chunk_keys: int, dtype: np.dtype | None
) -> Iterator[np.ndarray]:
    """Re-block a stream of arbitrarily-sized arrays into full chunks."""
    pending: list[np.ndarray] = []
    pending_n = 0
    dt = dtype
    for part in parts:
        arr = np.ascontiguousarray(part)
        if arr.ndim != 1:
            raise StreamError("stream parts must be one-dimensional arrays")
        if dt is None:
            dt = _check_key_dtype(arr.dtype)
        arr = np.ascontiguousarray(arr, dtype=dt)
        if not len(arr):
            continue
        pending.append(arr)
        pending_n += len(arr)
        while pending_n >= chunk_keys:
            chunk = np.concatenate(pending) if len(pending) > 1 else pending[0]
            yield chunk[:chunk_keys]
            rest = chunk[chunk_keys:]
            pending = [rest] if len(rest) else []
            pending_n = len(rest)
    if pending_n:
        yield np.concatenate(pending) if len(pending) > 1 else pending[0]


def _chunks_from_file(
    f, chunk_keys: int, dtype: np.dtype
) -> Iterator[np.ndarray]:
    itemsize = dtype.itemsize
    want = chunk_keys * itemsize
    carry = b""
    while True:
        data = f.read(want - len(carry))
        if not data:
            break
        buf = carry + data
        n_whole = len(buf) // itemsize
        carry = buf[n_whole * itemsize :]
        if n_whole:
            yield np.frombuffer(buf[: n_whole * itemsize], dtype=dtype)
    if carry:
        raise StreamError(
            f"raw key stream ends mid-key: {len(carry)} trailing bytes "
            f"(itemsize {itemsize})"
        )


def iter_chunks(
    source,
    chunk_keys: int,
    dtype: np.dtype | type | str | None = None,
) -> Iterator[np.ndarray]:
    """Adapt ``source`` into chunks of at most ``chunk_keys`` keys.

    ``dtype`` is required for raw byte sources (paths, file-likes) and
    optional elsewhere (inferred from the first array, then enforced).
    """
    if chunk_keys < 1:
        raise ValueError("chunk_keys must be >= 1")
    dt = _check_key_dtype(dtype) if dtype is not None else None

    if isinstance(source, np.ndarray):
        if source.ndim != 1:
            raise StreamError("key array must be one-dimensional")
        src_dt = _check_key_dtype(source.dtype) if dt is None else dt
        keys = np.ascontiguousarray(source, dtype=src_dt)
        return _chunks_from_array(keys, chunk_keys)

    if isinstance(source, (str, Path, os.PathLike)):
        if dt is None:
            raise StreamError("dtype is required when reading raw key files")

        def _from_path() -> Iterator[np.ndarray]:
            with open(os.fspath(source), "rb") as f:
                yield from _chunks_from_file(f, chunk_keys, dt)

        return _from_path()

    if hasattr(source, "read"):
        if dt is None:
            raise StreamError("dtype is required when reading raw key streams")
        return _chunks_from_file(source, chunk_keys, dt)

    if hasattr(source, "__iter__"):
        return _chunks_from_iterable(source, chunk_keys, dt)

    raise StreamError(
        f"unsupported stream source {type(source).__name__!r}: expected "
        "ndarray, path, binary file-like, or iterable of arrays"
    )
