"""Bounded top-k over an unbounded key stream (continuous mode).

:class:`TopK` maintains a sorted run of the ``k`` largest keys seen so
far in O(k) memory, independent of stream length: each pushed chunk is
cut down with :func:`np.partition` (O(chunk + k)) and only the survivors
are kept sorted.  :func:`stream_topk` drives it from any
:func:`~repro.stream.ingest.iter_chunks` source, so the same file /
socket / iterable framings the external sorter ingests also feed the
continuous operator -- this is the "sorted-run maintenance" degenerate
case where the maintained run is capped at ``k`` keys and never spills.
"""

from __future__ import annotations

import numpy as np

from .ingest import iter_chunks
from .runfile import StreamError


class TopK:
    """Maintain the ``k`` largest keys pushed so far, sorted ascending."""

    def __init__(self, k: int, dtype: np.dtype | type | str | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self._dtype = np.dtype(dtype) if dtype is not None else None
        self._best: np.ndarray | None = None
        self.n_pushed = 0

    def push(self, chunk: np.ndarray) -> None:
        chunk = np.ascontiguousarray(chunk)
        if chunk.ndim != 1:
            raise StreamError("top-k chunks must be one-dimensional")
        if not len(chunk):
            return
        if self._dtype is None:
            self._dtype = chunk.dtype
        chunk = np.ascontiguousarray(chunk, dtype=self._dtype)
        self.n_pushed += len(chunk)
        pool = (
            chunk
            if self._best is None
            else np.concatenate([self._best, chunk])
        )
        if len(pool) > self.k:
            # Keep the k largest without fully sorting the pool; the
            # survivors are re-sorted (O(k log k)) to stay a sorted run.
            pool = np.partition(pool, len(pool) - self.k)[-self.k :]
        self._best = np.sort(pool)

    def result(self) -> np.ndarray:
        """The ``min(k, n_pushed)`` largest keys, ascending."""
        if self._best is None:
            dt = self._dtype if self._dtype is not None else np.dtype(np.int64)
            return np.empty(0, dtype=dt)
        return self._best.copy()


def stream_topk(
    source,
    k: int,
    *,
    chunk_keys: int = 1 << 20,
    dtype: np.dtype | type | str | None = None,
) -> np.ndarray:
    """The ``k`` largest keys of ``source``, ascending, in O(k + chunk)
    memory.  Equals ``np.sort(concatenated)[-k:]`` for finite streams."""
    op = TopK(k, dtype)
    for chunk in iter_chunks(source, chunk_keys, dtype):
        op.push(chunk)
    return op.result()
