"""K-way merge over sorted run files with bounded read-ahead.

The merge is *vectorized by block* rather than key-at-a-time through a
heap: each input run keeps one frame buffered (bounded read-ahead), and
every step computes the safe bound -- the minimum over active runs of
the *last* buffered key -- takes each run's prefix ``<=`` that bound (a
``searchsorted``), and emits their sorted concatenation as one block.
Every unread key in any run is ``>=`` its run's buffered tail ``>=`` the
bound, so the block really is the next stretch of the global order; and
the run whose tail *is* the bound drains its whole frame, so each step
consumes at least one full frame.  On heavily interleaved inputs (the
common case) that is ~``fan_in`` frames sorted per step, where a
head-vs-head prefix rule would degenerate to a key or two per step.

When the number of runs exceeds ``fan_in`` the merge goes multi-pass:
runs are grouped into at most ``fan_in``-wide groups and each group is
merged into an intermediate run file.  Intermediate groups are
independent, so they run as one supervised :class:`WorkerPool` phase
(``stream.merge.passN``) -- a worker crash mid-merge is absorbed by the
pool's rebuild/retry machinery, and the group task is idempotent (it
spills to a fresh ``.tmp`` and atomically renames, so a re-run after a
kill simply overwrites).  The final pass always merges in the parent,
streaming verified output chunks to the caller.
"""

from __future__ import annotations

import os
import time
from typing import Iterator, Sequence

import numpy as np

from ..trace import PID_STREAM, current_recorder
from .runfile import RunReader, RunWriter, StreamError

#: Default fan-in cap: how many runs one merge pass reads at once.  Each
#: open run costs one frame of read-ahead, so fan-in bounds merge memory.
DEFAULT_FAN_IN = 16


class _BufferedRun:
    """One merge input: a run file with a single buffered frame."""

    __slots__ = ("reader", "buf", "pos")

    def __init__(self, reader: RunReader):
        self.reader = reader
        self.buf: np.ndarray | None = None
        self.pos = 0
        self._refill()

    def _refill(self) -> None:
        while True:
            frame = self.reader.next_frame()
            if frame is None:
                self.buf = None
                return
            if len(frame):
                self.buf = frame
                self.pos = 0
                return

    @property
    def exhausted(self) -> bool:
        return self.buf is None

    def tail(self):
        """Largest buffered key (the buffer is a sorted-run slice)."""
        return self.buf[-1]

    def take_leq(self, bound) -> list[np.ndarray]:
        """Take every buffered key ``<= bound`` (refilling across frame
        boundaries); ``bound=None`` means take everything."""
        out: list[np.ndarray] = []
        while self.buf is not None:
            if bound is None:
                out.append(self.buf[self.pos :])
                self._refill()
                continue
            hi = int(np.searchsorted(self.buf, bound, side="right"))
            if hi <= self.pos:
                break
            out.append(self.buf[self.pos : hi])
            if hi == len(self.buf):
                self._refill()
            else:
                self.pos = hi
                break
        return out


def merge_iter_over(readers: Sequence[RunReader]) -> Iterator[np.ndarray]:
    """The core block merge over already-open readers (see module doc)."""
    runs = [_BufferedRun(r) for r in readers]
    active = [r for r in runs if not r.exhausted]
    while active:
        if len(active) == 1:
            parts = active[0].take_leq(None)
            if parts:
                yield np.concatenate(parts) if len(parts) > 1 else parts[0]
            active = []
            continue
        # Safe bound: every unread key of any run is >= that run's
        # buffered tail >= the min tail, so the <=bound prefixes across
        # all runs are exactly the next stretch of the global order.
        bound = min(r.tail() for r in active)
        parts: list[np.ndarray] = []
        for r in active:
            parts.extend(r.take_leq(bound))
        if len(parts) == 1:
            # A single contributing slice is already sorted; don't sort
            # in place -- it may be a view into a live buffer.
            yield parts[0]
        elif parts:
            block = np.concatenate(parts)
            block.sort()
            yield block
        active = [r for r in active if not r.exhausted]


def merge_iter(run_paths: Sequence[str | os.PathLike]) -> Iterator[np.ndarray]:
    """Single-pass merge: yield sorted blocks over the given runs.

    The concatenation of the yielded blocks is the sorted union of the
    runs' keys.  Read-ahead is one frame per run.
    """
    readers = [RunReader(p) for p in run_paths]
    try:
        yield from merge_iter_over(readers)
    finally:
        for r in readers:
            r.close()


def _merge_once(
    run_paths: Sequence[str | os.PathLike],
    out_path: str | os.PathLike,
    frame_keys: int,
    dtype: np.dtype,
) -> tuple[int, int]:
    readers_bytes = 0
    writer = RunWriter(out_path, dtype, frame_keys)
    try:
        readers = [RunReader(p) for p in run_paths]
        try:
            for block in merge_iter_over(readers):
                writer.write(block)
        finally:
            for r in readers:
                readers_bytes += r.bytes_read
                r.close()
        written = writer.bytes_written
        writer.close()
    except BaseException:
        writer.abort()
        raise
    return readers_bytes, written


def merge_to_run(
    run_paths: Sequence[str | os.PathLike],
    out_path: str | os.PathLike,
    *,
    frame_keys: int,
    dtype: np.dtype,
    retries: int = 2,
    backoff_s: float = 0.005,
) -> tuple[int, int]:
    """Merge runs into a new run file (atomic publish); returns
    ``(bytes_read, bytes_written)``.  ``ENOSPC`` mid-merge drops the
    partial ``.tmp``, backs off and remerges (same policy as
    :func:`~repro.stream.runfile.write_run`)."""
    import errno

    failures = 0
    for attempt in range(retries + 1):
        try:
            result = _merge_once(run_paths, out_path, frame_keys, dtype)
        except OSError as err:
            if err.errno != errno.ENOSPC or attempt == retries:
                raise
            failures += 1
            time.sleep(backoff_s * (2.0**attempt))
            continue
        if failures:
            from ..faults.context import current_fault_plan

            plan = current_fault_plan()
            if plan is not None:
                plan.note_recovered("spill.enospc", failures)
        return result
    raise AssertionError("unreachable")  # pragma: no cover


def _merge_group_task(args) -> tuple[int, int]:
    """Pool task: merge one group of runs into an intermediate run.

    Module-level so it pickles; idempotent under supervised re-execution
    because :class:`RunWriter` spills to ``.tmp`` and atomically renames
    (a re-run after a worker kill overwrites the orphaned partial).
    """
    run_paths, out_path, frame_keys, dtype_str = args
    return merge_to_run(
        run_paths, out_path, frame_keys=frame_keys, dtype=np.dtype(dtype_str)
    )


def reduce_runs(
    run_paths: Sequence[str],
    *,
    fan_in: int = DEFAULT_FAN_IN,
    workdir: str,
    frame_keys: int,
    dtype: np.dtype,
    pool=None,
) -> tuple[list[str], int, int, int]:
    """Merge passes until at most ``fan_in`` runs remain.

    Returns ``(surviving_paths, merge_passes, bytes_read, bytes_written)``.
    Intermediate passes run as supervised pool phases when a pool is
    given (each group one task); otherwise they merge inline.
    """
    if fan_in < 2:
        raise ValueError("fan_in must be >= 2")
    paths = [os.fspath(p) for p in run_paths]
    rec = current_recorder()
    passes = 0
    bytes_read = 0
    bytes_written = 0
    gen = 0
    while len(paths) > fan_in:
        passes += 1
        gen += 1
        groups = [paths[i : i + fan_in] for i in range(0, len(paths), fan_in)]
        # A trailing singleton group would be a pointless copy: pass it
        # through to the next generation untouched.
        passthrough = []
        if len(groups[-1]) == 1:
            passthrough = groups.pop()
        tasks = []
        outs = []
        for g, group in enumerate(groups):
            out = os.path.join(workdir, f"repro_run_g{gen}_{g:04d}.run")
            outs.append(out)
            tasks.append((tuple(group), out, frame_keys, dtype.str))
        begin = time.perf_counter()
        if pool is not None:
            results = pool.run_phase(
                _merge_group_task, tasks, name=f"stream.merge.pass{passes}"
            )
        else:
            results = [_merge_group_task(t) for t in tasks]
        pass_read = sum(r for r, _w in results)
        pass_written = sum(w for _r, w in results)
        bytes_read += pass_read
        bytes_written += pass_written
        if rec.enabled:
            rec.complete(
                f"stream.merge.pass{passes}",
                cat="stream.merge",
                ts_us=begin * 1e6,
                dur_us=(time.perf_counter() - begin) * 1e6,
                pid=PID_STREAM,
                args={
                    "fan_in": fan_in,
                    "runs_in": len(paths),
                    "runs_out": len(outs) + len(passthrough),
                    "bytes_read": pass_read,
                    "bytes_written": pass_written,
                },
            )
        for group in groups:
            for p in group:
                try:
                    os.unlink(p)
                except FileNotFoundError:
                    pass
        paths = outs + passthrough
        if passes > 64:  # pragma: no cover - defensive
            raise StreamError("merge failed to converge")
    return paths, passes, bytes_read, bytes_written
