"""The external-sort driver: ingest -> spill runs -> k-way merge.

:func:`external_sort` sorts a key stream of any size in bounded memory:
the only full-width allocations are one ingest chunk (``chunk_keys``
keys -- the out-of-core path's "arena") plus the shared sort buffers the
chunk sort borrows.  Each chunk is sorted on the persistent supervised
:class:`~repro.native.pool.WorkerPool` through the engineered kernel
seam (run formation), spilled as a checksummed run file, and the runs
are k-way merged -- multi-pass under a ``fan_in`` cap, intermediate
passes as supervised pool phases, final pass streaming verified sorted
blocks to the caller.

Everything is threaded through the existing seams:

- ``repro.trace``: ``stream.ingest`` / ``stream.run`` / ``stream.merge``
  spans on the :data:`~repro.trace.PID_STREAM` track;
- ``repro.faults``: ``spill.*`` probes in the run file layer, worker
  crash/hang/slow absorbed by the supervised merge phases, and a
  :class:`~repro.faults.plan.FaultStats` delta on the result;
- ``repro.verify``: key conservation (ingested == in runs == merged out,
  with the run-side count re-read from sealed footers) is checked always
  and reported to the ambient sanitizer when one is installed.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..faults.context import current_fault_plan
from ..faults.plan import FaultStats
from ..native.pool import WorkerPool, default_workers
from ..native.radix import parallel_radix_sort
from ..trace import PID_STREAM, current_recorder
from ..verify.context import current_sanitizer
from .ingest import iter_chunks
from .merge import DEFAULT_FAN_IN, merge_iter, reduce_runs
from .runfile import (
    DEFAULT_FRAME_KEYS,
    StreamError,
    run_total_keys,
    write_run,
)

#: Default chunk budget: 4 Mi keys (32 MiB of int64) per in-memory chunk.
DEFAULT_CHUNK_KEYS = 4 << 20

WORKDIR_PREFIX = "repro_stream_"


@dataclass
class StreamResult:
    """What one external sort did (returned by :func:`external_sort`)."""

    n_keys: int = 0
    dtype: str = "<i8"
    runs: int = 0
    merge_passes: int = 0
    bytes_spilled: int = 0
    bytes_merge_read: int = 0
    elapsed_s: float = 0.0
    verified: bool = False
    faults: FaultStats = field(default_factory=FaultStats)

    @property
    def mb_sorted(self) -> float:
        return self.n_keys * np.dtype(self.dtype).itemsize / 1e6

    @property
    def throughput_mb_s(self) -> float:
        return self.mb_sorted / self.elapsed_s if self.elapsed_s > 0 else 0.0


def _sort_chunk(
    chunk: np.ndarray,
    pool: WorkerPool | None,
    radix: int,
    kernel: str | None,
) -> np.ndarray:
    """Run formation: sort one chunk on the pool via the kernel seam.

    The radix kernels are signed-int64 shared-memory paths; unsigned
    chunks ride them through a value-preserving int64 round trip, except
    uint64 keys past ``2**63 - 1`` which fall back to ``np.sort``.
    """
    if chunk.dtype.kind == "u":
        if (
            chunk.dtype.itemsize == 8
            and len(chunk)
            and int(chunk.max()) > np.iinfo(np.int64).max
        ):
            return np.sort(chunk)
        widened = parallel_radix_sort(
            chunk.astype(np.int64), pool=pool, radix=radix, kernel=kernel
        )
        return widened.astype(chunk.dtype)
    return parallel_radix_sort(chunk, pool=pool, radix=radix, kernel=kernel)


def external_sort(
    source,
    *,
    chunk_keys: int = DEFAULT_CHUNK_KEYS,
    dtype: np.dtype | type | str | None = None,
    fan_in: int = DEFAULT_FAN_IN,
    frame_keys: int = DEFAULT_FRAME_KEYS,
    workdir: str | os.PathLike | None = None,
    pool: WorkerPool | None = None,
    n_workers: int | None = None,
    radix: int = 11,
    kernel: str | None = None,
    out=None,
    on_block: Callable[[np.ndarray], None] | None = None,
    verify: bool = True,
) -> StreamResult:
    """Externally sort ``source`` (any :func:`iter_chunks` source).

    Sorted output streams out in ascending blocks: ``on_block`` is
    called with each block, and/or ``out`` (a path or binary file-like)
    receives the raw little-endian key bytes.  Spill files live in a
    fresh ``repro_stream_*`` directory under ``workdir`` (default: the
    system temp dir) and are removed on every path, including errors.

    ``verify=True`` checks each output block is ascending and no block
    starts below the previous block's last key; key conservation
    (ingested == spilled-run footers == merged out) is enforced always
    and reported to the ambient sanitizer when one is installed.
    """
    if chunk_keys < 4:
        raise ValueError("chunk_keys must be >= 4")
    rec = current_recorder()
    plan = current_fault_plan()
    faults_before = plan.stats() if plan is not None else None
    t0 = time.perf_counter()

    own_pool: WorkerPool | None = None
    own_out = False
    out_file = None
    if out is not None:
        if hasattr(out, "write"):
            out_file = out
        else:
            out_file = open(os.fspath(out), "wb")
            own_out = True

    work = tempfile.mkdtemp(
        prefix=WORKDIR_PREFIX,
        dir=os.fspath(workdir) if workdir is not None else None,
    )
    result = StreamResult()
    try:
        # ------------------------------------------------------ ingest +
        # run formation: sort each chunk on the pool, spill it as a run.
        run_paths: list[str] = []
        ingested = 0
        key_dtype: np.dtype | None = None
        for chunk in iter_chunks(source, chunk_keys, dtype):
            t_chunk = time.perf_counter()
            if key_dtype is None:
                key_dtype = chunk.dtype
                width = (
                    pool.n_workers
                    if pool is not None
                    else (n_workers if n_workers is not None else default_workers())
                )
                if pool is None and width > 1 and chunk_keys // 4 > 1:
                    own_pool = pool = WorkerPool(
                        width, supervise=True, phase_timeout_s=60.0
                    )
            ingested += len(chunk)
            if rec.enabled:
                rec.complete(
                    "stream.ingest",
                    cat="stream.ingest",
                    ts_us=t_chunk * 1e6,
                    dur_us=(time.perf_counter() - t_chunk) * 1e6,
                    pid=PID_STREAM,
                    args={"keys": len(chunk), "bytes": int(chunk.nbytes)},
                )
            t_run = time.perf_counter()
            sorted_chunk = _sort_chunk(chunk, pool, radix, kernel)
            path = os.path.join(work, f"repro_run_{len(run_paths):04d}.run")
            spilled = write_run(path, sorted_chunk, frame_keys=frame_keys)
            run_paths.append(path)
            result.bytes_spilled += spilled
            if rec.enabled:
                rec.complete(
                    "stream.run",
                    cat="stream.run",
                    ts_us=t_run * 1e6,
                    dur_us=(time.perf_counter() - t_run) * 1e6,
                    pid=PID_STREAM,
                    tid=len(run_paths) - 1,
                    args={"keys": len(sorted_chunk), "bytes_spilled": spilled},
                )
        if key_dtype is None:
            key_dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.int64)
        result.runs = len(run_paths)
        result.dtype = key_dtype.str

        # Independent run-side count: what the sealed footers say landed
        # on disk (not what we think we wrote).
        in_runs = sum(run_total_keys(p) for p in run_paths)

        # --------------------------------------------------- merge passes
        paths, passes, m_read, m_written = reduce_runs(
            run_paths,
            fan_in=fan_in,
            workdir=work,
            frame_keys=frame_keys,
            dtype=key_dtype,
            pool=pool,
        )
        result.merge_passes = passes
        result.bytes_spilled += m_written

        # ------------------------------------------------------ final pass
        t_final = time.perf_counter()
        merged = 0
        final_read = 0
        prev_last = None
        verified = True
        for block in merge_iter(paths):
            merged += len(block)
            final_read += int(block.nbytes)
            if verify and len(block):
                if np.any(block[1:] < block[:-1]) or (
                    prev_last is not None and block[0] < prev_last
                ):
                    verified = False
                    raise StreamError(
                        "merge emitted an out-of-order block "
                        f"(after {merged - len(block)} keys)"
                    )
                prev_last = block[-1]
            if out_file is not None:
                out_file.write(np.ascontiguousarray(block).tobytes())
            if on_block is not None:
                on_block(block)
        result.bytes_merge_read = m_read + final_read
        if rec.enabled:
            rec.complete(
                "stream.merge.final",
                cat="stream.merge",
                ts_us=t_final * 1e6,
                dur_us=(time.perf_counter() - t_final) * 1e6,
                pid=PID_STREAM,
                args={
                    "fan_in": len(paths),
                    "runs_in": len(paths),
                    "bytes_read": final_read,
                    "keys": merged,
                },
            )

        # ------------------------------------------------ conservation
        san = current_sanitizer()
        if san is not None:
            san.on_stream_conservation(ingested, in_runs, merged, "external_sort")
        elif not ingested == in_runs == merged:
            raise StreamError(
                f"key conservation violated: {ingested} ingested, "
                f"{in_runs} in runs, {merged} merged out"
            )
        result.n_keys = merged
        result.verified = bool(verify and verified)
        result.elapsed_s = time.perf_counter() - t0
        if plan is not None and faults_before is not None:
            result.faults = plan.stats().since(faults_before)
        return result
    finally:
        if own_pool is not None:
            own_pool.close()
        if own_out and out_file is not None:
            out_file.close()
        shutil.rmtree(work, ignore_errors=True)
