"""Out-of-core sorting: chunked ingest, spill runs, k-way merge, top-k.

The paper's algorithms (and the native pool) assume the key array fits
the shared-memory arena; this subsystem opens the workload class beyond
it.  :func:`external_sort` sorts streams of any size in bounded memory
-- chunks are sorted on the supervised :class:`~repro.native.pool.
WorkerPool` through the engineered kernel seam, spilled as framed,
checksummed run files, and k-way merged (multi-pass under a fan-in cap,
intermediate passes as supervised pool phases).  :func:`stream_topk`
is the continuous-mode operator: a bounded top-k over an unbounded
stream.  See ``docs/STREAM.md``.
"""

from .external import (
    DEFAULT_CHUNK_KEYS,
    StreamResult,
    WORKDIR_PREFIX,
    external_sort,
)
from .ingest import iter_chunks
from .merge import DEFAULT_FAN_IN, merge_iter, merge_to_run, reduce_runs
from .runfile import (
    DEFAULT_FRAME_KEYS,
    RunCorrupt,
    RunReader,
    RunTruncated,
    RunWriter,
    StreamError,
    run_total_keys,
    write_run,
)
from .topk import TopK, stream_topk

__all__ = [
    "DEFAULT_CHUNK_KEYS",
    "DEFAULT_FAN_IN",
    "DEFAULT_FRAME_KEYS",
    "RunCorrupt",
    "RunReader",
    "RunTruncated",
    "RunWriter",
    "StreamError",
    "StreamResult",
    "TopK",
    "WORKDIR_PREFIX",
    "external_sort",
    "iter_chunks",
    "merge_iter",
    "merge_to_run",
    "reduce_runs",
    "run_total_keys",
    "stream_topk",
    "write_run",
]
