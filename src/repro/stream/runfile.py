"""Framed, checksummed sorted-run files with an atomic-rename writer.

A run file holds one sorted slice of the stream being externally sorted.
The layout is deliberately close to the grid cache's defensive framing
(magic, versioned header, per-payload CRC) so a truncated spill, a
bit-flipped block or a stale partial ``.tmp`` is *detected*, never
silently merged:

========  ============================================================
section   bytes
========  ============================================================
magic     ``b"RRUN"``
version   ``u8`` (currently 1)
header    ``u32`` length + that many bytes of JSON
          (``{"dtype": "<i8", "frame_keys": 65536}``)
frame*    ``u32 n_keys`` (> 0), ``u32 crc32(payload)``, then
          ``n_keys * itemsize`` bytes of little-endian keys
footer    ``u32 0`` end marker, ``u64 total_keys``,
          ``u32 crc32(total_keys bytes)``
========  ============================================================

Writers spill to ``<path>.tmp`` and only :func:`os.replace` onto the
final name after the footer is flushed and fsynced, so a run file that
*exists* is complete by construction; readers still verify every CRC and
the footer count because disks lie.

Fault injection (``repro.faults``, parent-side only -- the ambient plan
is owner-PID-guarded so pool workers never see it):

- ``spill.enospc``  -- a frame write raises ``ENOSPC``; the run-formation
  driver deletes the partial ``.tmp`` and rewrites the run.
- ``spill.short_write`` -- a frame write lands only partially; the
  writer's write loop detects the short count and completes the
  remainder (recovered in place).
- ``spill.corrupt`` -- a frame read decodes as corrupt (a bit is flipped
  in the in-memory copy); the reader seeks back and re-reads the frame
  once before giving up.  Genuine on-disk corruption fails the re-read
  and raises :class:`RunCorrupt`.
"""

from __future__ import annotations

import errno
import json
import os
import struct
import zlib
from typing import Iterator

import numpy as np

from ..faults.context import current_fault_plan

MAGIC = b"RRUN"
VERSION = 1

#: Keys per frame when the writer re-blocks its input (64 Ki keys keeps a
#: frame's payload at 512 KiB for int64 -- one read-ahead buffer per
#: merge input stays small even at high fan-in).
DEFAULT_FRAME_KEYS = 64 * 1024

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: dtypes a run file may carry (what :mod:`repro.stream.ingest` accepts).
SUPPORTED_DTYPES = ("<u4", "<u8", "<i4", "<i8")


class StreamError(RuntimeError):
    """Base error for the out-of-core stream subsystem."""


class RunCorrupt(StreamError):
    """A run-file frame failed its CRC (even after one re-read)."""


class RunTruncated(StreamError):
    """A run file ended before its footer (partial spill)."""


def _check_dtype(dtype: np.dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt.str not in SUPPORTED_DTYPES:
        raise StreamError(
            f"unsupported run dtype {dt.str!r}; expected one of "
            f"{SUPPORTED_DTYPES}"
        )
    return dt


def _write_all(f, payload: bytes, *, probe_faults: bool) -> None:
    """Write ``payload``, absorbing injected short writes.

    ``spill.short_write`` splits one write in two: the first lands only a
    prefix, the loop detects the short count and completes the rest --
    the same loop a raw ``os.write`` spill path would need for real
    partial writes on pipes/near-full disks.
    """
    plan = current_fault_plan() if probe_faults else None
    if plan is not None and len(payload) > 1 and plan.should("spill.short_write"):
        cut = len(payload) // 2
        f.write(payload[:cut])
        written = cut
        f.write(payload[written:])
        plan.note_recovered("spill.short_write")
        return
    f.write(payload)


class RunWriter:
    """Spill sorted key blocks into ``<path>.tmp``; atomically publish.

    Use as a context manager: a clean ``__exit__`` seals the footer and
    renames onto ``path``; an exception (or :meth:`abort`) removes the
    partial ``.tmp`` so no orphan spill survives the error path.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        dtype: np.dtype | type | str = np.int64,
        frame_keys: int = DEFAULT_FRAME_KEYS,
    ):
        if frame_keys < 1:
            raise ValueError("frame_keys must be >= 1")
        self.path = os.fspath(path)
        self.dtype = _check_dtype(np.dtype(dtype))
        self.frame_keys = int(frame_keys)
        self.total_keys = 0
        self.bytes_written = 0
        self._tmp = self.path + ".tmp"
        self._file = open(self._tmp, "wb")
        self._closed = False
        header = json.dumps(
            {"dtype": self.dtype.str, "frame_keys": self.frame_keys}
        ).encode()
        self._file.write(MAGIC)
        self._file.write(bytes([VERSION]))
        self._file.write(_U32.pack(len(header)))
        self._file.write(header)

    # ------------------------------------------------------------------
    def write(self, keys: np.ndarray) -> None:
        """Append sorted keys, re-blocked into ``frame_keys`` frames."""
        if self._closed:
            raise StreamError("run writer is closed")
        keys = np.ascontiguousarray(keys, dtype=self.dtype)
        plan = current_fault_plan()
        for lo in range(0, len(keys), self.frame_keys):
            frame = keys[lo : lo + self.frame_keys]
            if plan is not None and plan.should("spill.enospc"):
                raise OSError(errno.ENOSPC, "injected: no space left on device")
            payload = frame.tobytes()
            self._file.write(_U32.pack(len(frame)))
            self._file.write(_U32.pack(zlib.crc32(payload)))
            _write_all(self._file, payload, probe_faults=True)
            self.total_keys += len(frame)
            self.bytes_written += 8 + len(payload)

    def close(self) -> str:
        """Seal the footer, fsync, and atomically publish the run."""
        if self._closed:
            return self.path
        total = _U64.pack(self.total_keys)
        self._file.write(_U32.pack(0))
        self._file.write(total)
        self._file.write(_U32.pack(zlib.crc32(total)))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._closed = True
        os.replace(self._tmp, self.path)
        return self.path

    def abort(self) -> None:
        """Drop the partial spill; the final path is never created."""
        if self._closed:
            return
        self._closed = True
        self._file.close()
        try:
            os.unlink(self._tmp)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "RunWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class RunReader:
    """Iterate a run file's frames as ndarrays, verifying every CRC."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._file = open(self.path, "rb")
        self.bytes_read = 0
        self._exhausted = False
        self._keys_seen = 0
        try:
            magic = self._file.read(4)
            if magic != MAGIC:
                raise RunCorrupt(f"{self.path}: bad magic {magic!r}")
            version = self._file.read(1)
            if len(version) != 1 or version[0] != VERSION:
                raise RunCorrupt(f"{self.path}: unsupported version {version!r}")
            raw_len = self._file.read(4)
            if len(raw_len) != 4:
                raise RunTruncated(f"{self.path}: truncated header")
            (hdr_len,) = _U32.unpack(raw_len)
            raw_hdr = self._file.read(hdr_len)
            if len(raw_hdr) != hdr_len:
                raise RunTruncated(f"{self.path}: truncated header")
            header = json.loads(raw_hdr)
            self.dtype = _check_dtype(np.dtype(header["dtype"]))
            self.frame_keys = int(header["frame_keys"])
        except Exception:
            self._file.close()
            raise

    # ------------------------------------------------------------------
    def _read_exact(self, n: int, what: str) -> bytes:
        data = self._file.read(n)
        if len(data) != n:
            raise RunTruncated(
                f"{self.path}: truncated {what} "
                f"(wanted {n} bytes, got {len(data)})"
            )
        return data

    def _read_payload(self, n_keys: int, crc: int) -> np.ndarray:
        """One frame payload, with a single seek-back retry on CRC
        mismatch (absorbing the injected ``spill.corrupt`` bit flip)."""
        nbytes = n_keys * self.dtype.itemsize
        start = self._file.tell()
        payload = bytearray(self._read_exact(nbytes, "frame payload"))
        plan = current_fault_plan()
        injected = False
        if plan is not None and nbytes > 0 and plan.should("spill.corrupt"):
            payload[0] ^= 0x40  # flip a bit in the in-memory copy only
            injected = True
        if zlib.crc32(bytes(payload)) != crc:
            # Re-read once: an in-flight corruption (or the injected bit
            # flip) is gone on the second read; real on-disk rot is not.
            self._file.seek(start)
            payload = bytearray(self._read_exact(nbytes, "frame payload"))
            if zlib.crc32(bytes(payload)) != crc:
                raise RunCorrupt(
                    f"{self.path}: frame CRC mismatch at offset {start}"
                )
            if injected and plan is not None:
                plan.note_recovered("spill.corrupt")
        self.bytes_read += nbytes
        return np.frombuffer(bytes(payload), dtype=self.dtype)

    def frames(self) -> Iterator[np.ndarray]:
        """Yield each frame; validates the footer at end of stream."""
        while True:
            arr = self.next_frame()
            if arr is None:
                return
            yield arr

    def next_frame(self) -> np.ndarray | None:
        """The next frame, or ``None`` at the (validated) footer."""
        if self._exhausted:
            return None
        (n_keys,) = _U32.unpack(self._read_exact(4, "frame length"))
        self.bytes_read += 4
        if n_keys == 0:
            raw_total = self._read_exact(8, "footer")
            (crc,) = _U32.unpack(self._read_exact(4, "footer CRC"))
            if zlib.crc32(raw_total) != crc:
                raise RunCorrupt(f"{self.path}: footer CRC mismatch")
            (total,) = _U64.unpack(raw_total)
            if total != self._keys_seen:
                raise RunCorrupt(
                    f"{self.path}: footer says {total} keys, "
                    f"read {self._keys_seen}"
                )
            self.total_keys = total
            self._exhausted = True
            return None
        (crc,) = _U32.unpack(self._read_exact(4, "frame CRC"))
        self.bytes_read += 4
        arr = self._read_payload(n_keys, crc)
        self._keys_seen += n_keys
        return arr

    def read_all(self) -> np.ndarray:
        """The whole run as one array (tests and tiny merges only)."""
        parts = list(self.frames())
        if not parts:
            return np.empty(0, dtype=self.dtype)
        return np.concatenate(parts)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "RunReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def run_total_keys(path: str | os.PathLike) -> int:
    """A sealed run's key count, read from the footer (O(1))."""
    with open(path, "rb") as f:
        f.seek(0, os.SEEK_END)
        size = f.tell()
        if size < 16:
            raise RunTruncated(f"{os.fspath(path)}: no footer")
        f.seek(size - 16)
        tail = f.read(16)
    (marker,) = _U32.unpack(tail[:4])
    (total,) = _U64.unpack(tail[4:12])
    (crc,) = _U32.unpack(tail[12:])
    if marker != 0 or zlib.crc32(tail[4:12]) != crc:
        raise RunCorrupt(f"{os.fspath(path)}: bad footer")
    return total


def write_run(
    path: str | os.PathLike,
    keys: np.ndarray,
    *,
    frame_keys: int = DEFAULT_FRAME_KEYS,
    retries: int = 2,
    backoff_s: float = 0.005,
) -> int:
    """Spill one sorted array as a run file, retrying the whole run on
    ``ENOSPC`` (mirroring the shm allocation retry policy): the partial
    ``.tmp`` is deleted, the write backs off and starts over.  Returns
    the bytes written.  Recovered retries are noted on the ambient fault
    plan as ``spill.enospc`` recoveries.
    """
    import time

    failures = 0
    for attempt in range(retries + 1):
        writer = RunWriter(path, keys.dtype, frame_keys)
        try:
            writer.write(keys)
            bytes_written = writer.bytes_written
            writer.close()
        except OSError as err:
            writer.abort()
            if err.errno != errno.ENOSPC or attempt == retries:
                raise
            failures += 1
            time.sleep(backoff_s * (2.0**attempt))
            continue
        except BaseException:
            writer.abort()
            raise
        if failures:
            plan = current_fault_plan()
            if plan is not None:
                plan.note_recovered("spill.enospc", failures)
        return bytes_written
    raise AssertionError("unreachable")  # pragma: no cover
