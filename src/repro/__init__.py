"""repro: Parallel Sorting on Cache-coherent DSM Multiprocessors.

A full reproduction of Shan & Singh (SC 1999): parallel radix and sample
sorting under three programming models (CC-SAS, MPI, SHMEM) on a simulated
SGI Origin2000, plus a real ``multiprocessing``-based parallel sorting
backend for the host machine.

Quick start::

    import numpy as np
    import repro

    keys = repro.data.generate("gauss", 1 << 18, 64)
    out = repro.sort(keys, algorithm="radix", model="shmem",
                     backend="sim", n_procs=64)
    print(out.time_us, out.report.category_fractions())

    host = repro.sort(keys, algorithm="sample", backend="native")
    print(host.wall_time_s, host.report.category_means_ns())

Packages:

- :mod:`repro.machine` -- the simulated CC-NUMA machine
- :mod:`repro.sim` -- discrete-event simulation kernel
- :mod:`repro.smp` -- SPMD phase runtime and perf accounting
- :mod:`repro.models` -- CC-SAS / MPI / SHMEM programming models
- :mod:`repro.sorts` -- the sorting algorithms
- :mod:`repro.data` -- the paper's eight key distributions
- :mod:`repro.backend` -- the unified Backend seam (sim | native)
- :mod:`repro.trace` -- structured event tracing + Chrome-trace export
- :mod:`repro.core` -- public API and experiment grid
- :mod:`repro.report` -- per-table/figure reproduction harnesses
- :mod:`repro.native` -- real multiprocessing parallel sorts
"""

from . import data, machine, models, report, sim, smp, sorts, trace
from . import backend as backends
from .backend import (
    Backend,
    NativeBackend,
    SimulatedBackend,
    SortJob,
    SortResult,
    get_backend,
)
from .core import (
    ExperimentRunner,
    RunSpec,
    SIZES,
    compare_models,
    predict_speedup,
    predict_time,
    sequential_baseline,
    simulate_sort,
    sort,
)
from .machine import CostModel, MachineConfig
from .sorts import ParallelRadixSort, ParallelSampleSort, SortOutcome
from .trace import MemoryRecorder, write_chrome_trace

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "CostModel",
    "ExperimentRunner",
    "MachineConfig",
    "MemoryRecorder",
    "NativeBackend",
    "ParallelRadixSort",
    "ParallelSampleSort",
    "RunSpec",
    "SIZES",
    "SimulatedBackend",
    "SortJob",
    "SortOutcome",
    "SortResult",
    "backends",
    "compare_models",
    "data",
    "get_backend",
    "predict_speedup",
    "predict_time",
    "machine",
    "models",
    "report",
    "sequential_baseline",
    "sim",
    "simulate_sort",
    "smp",
    "sort",
    "sorts",
    "trace",
    "write_chrome_trace",
]
