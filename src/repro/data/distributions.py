"""The paper's eight key-initialization methods (Section 3.3).

Keys are 31-bit non-negative integers (``MAX = 2**31``), laid out as ``p``
contiguous partitions of ``n // p`` keys: partition ``i`` is the slice
initially assigned to process ``i``.  Five methods come from the literature
(gauss, random, zero, bucket, stagger) and three were designed by the
authors (half, remote, local) to exercise specific communication behavior:

- ``remote`` maximizes key movement between processes every radix pass;
- ``local`` eliminates it entirely (each process keeps its own keys);
- ``half`` restricts keys to even values, halving the number of radix-sort
  messages while keeping the data volume fixed.

``remote`` and ``local`` build keys digit-by-digit for a given radix ``r``,
so they take the radix as a parameter, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .nas_lcg import lcg_uniform

MAX_KEY = 1 << 31
KEY_BITS = 31
KEY_DTYPE = np.int64


@dataclass(frozen=True)
class DistributionSpec:
    """A fully specified key workload."""

    name: str
    n: int
    p: int
    radix: int = 8
    seed: int = 1

    def __post_init__(self) -> None:
        if self.name not in DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.name!r}; "
                f"choose from {sorted(DISTRIBUTIONS)}"
            )
        if self.n <= 0 or self.p <= 0:
            raise ValueError("n and p must be positive")
        if self.n % self.p != 0:
            raise ValueError(f"n={self.n} must be divisible by p={self.p}")
        if not 1 <= self.radix <= 20:
            raise ValueError("radix must be in [1, 20]")
        if self.seed < 1:
            raise ValueError(f"seed must be >= 1, got {self.seed}")

    def generate(self) -> np.ndarray:
        return generate(self.name, self.n, self.p, radix=self.radix, seed=self.seed)


def _check(n: int, p: int) -> int:
    if n <= 0 or p <= 0 or n % p != 0:
        raise ValueError(f"n={n} must be a positive multiple of p={p}")
    return n // p


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
def gauss(n: int, p: int, radix: int = 8, seed: int = 1) -> np.ndarray:
    """NAS-IS style keys: each is the average of four consecutive values of
    the NAS LCG, scaled to [0, MAX).  The sum of four uniforms gives the
    bell-shaped (Bates) distribution the benchmark is named for."""
    _check(n, p)
    # ``seed`` offsets the stream so different runs get different keys
    # while staying reproducible.
    u = lcg_uniform(4 * n, start_index=1 + 4 * n * (seed - 1))
    quads = u.reshape(n, 4).mean(axis=1)
    return np.minimum((quads * MAX_KEY).astype(KEY_DTYPE), MAX_KEY - 1)


def random_keys(n: int, p: int, radix: int = 8, seed: int = 1) -> np.ndarray:
    """Uniform keys in [0, 2**31), as from the C library ``random()``."""
    _check(n, p)
    return _rng(seed).integers(0, MAX_KEY, size=n, dtype=KEY_DTYPE)


def zero(n: int, p: int, radix: int = 8, seed: int = 1) -> np.ndarray:
    """Random keys with every tenth key set to zero."""
    keys = random_keys(n, p, radix, seed)
    keys[9::10] = 0
    return keys


def bucket(n: int, p: int, radix: int = 8, seed: int = 1) -> np.ndarray:
    """Each process's partition is split into p sub-blocks of n/p**2 keys;
    sub-block j holds uniform keys from bucket j's value range.  Keys are
    thus already spread so every process sends to every other."""
    n_per = _check(n, p)
    if n_per % p != 0:
        raise ValueError(
            f"bucket needs n/p={n_per} divisible by p={p} (n/p**2 sub-blocks)"
        )
    rng = _rng(seed)
    width = MAX_KEY // p
    sub = n_per // p
    out = np.empty(n, dtype=KEY_DTYPE)
    for i in range(p):
        for j in range(p):
            lo = j * width
            hi = MAX_KEY if j == p - 1 else (j + 1) * width
            start = i * n_per + j * sub
            out[start : start + sub] = rng.integers(lo, hi, size=sub, dtype=KEY_DTYPE)
    return out


def stagger(n: int, p: int, radix: int = 8, seed: int = 1) -> np.ndarray:
    """Process i's keys are uniform within one bucket-width value range
    chosen so key ranges are staggered across processes:
    range (2i+1) for i < p/2, range (2i - p) otherwise."""
    n_per = _check(n, p)
    rng = _rng(seed)
    width = MAX_KEY // p
    out = np.empty(n, dtype=KEY_DTYPE)
    for i in range(p):
        j = (2 * i + 1) if i < p // 2 else (2 * i - p)
        j = min(max(j, 0), p - 1)
        lo = j * width
        hi = MAX_KEY if j == p - 1 else (j + 1) * width
        out[i * n_per : (i + 1) * n_per] = rng.integers(
            lo, hi, size=n_per, dtype=KEY_DTYPE
        )
    return out


def half(n: int, p: int, radix: int = 8, seed: int = 1) -> np.ndarray:
    """Gauss keys restricted to even values: odd radix buckets stay empty,
    halving message count at fixed data volume."""
    return gauss(n, p, radix, seed) & ~KEY_DTYPE(1)


def _digit_groups(radix: int) -> list[tuple[int, int]]:
    """(shift, width) for each radix-digit group of a 31-bit key."""
    groups = []
    shift = 0
    while shift < KEY_BITS:
        width = min(radix, KEY_BITS - shift)
        groups.append((shift, width))
        shift += radix
    return groups


def remote(n: int, p: int, radix: int = 8, seed: int = 1) -> np.ndarray:
    """Maximal-communication keys (designed by the paper's authors).

    For process i, with per-process digit sub-range [i*2**r/p, (i+1)*2**r/p):
    odd digit groups (1st, 3rd, ...) avoid the process's own sub-range, so
    every radix pass disperses all of a process's keys to other processes;
    even groups (2nd, 4th, ...) stay inside it.  Digit groups are counted
    from the least significant bit, as in the paper.
    """
    n_per = _check(n, p)
    if p < 2:
        raise ValueError("the remote distribution needs at least 2 processes "
                         "(a single process cannot avoid its own sub-range)")
    bucket_count = 1 << radix
    if bucket_count < p:
        raise ValueError(f"remote distribution needs 2**radix >= p ({bucket_count} < {p})")
    rng = _rng(seed)
    span = bucket_count // p
    out = np.zeros(n, dtype=KEY_DTYPE)
    groups = _digit_groups(radix)
    for i in range(p):
        lo_own = i * span
        sl = slice(i * n_per, (i + 1) * n_per)
        first = None
        second = None
        for g, (shift, width) in enumerate(groups):
            if g % 2 == 0:
                if first is None:
                    # Uniform over [0, 2**r) excluding our own sub-range.
                    raw = rng.integers(0, bucket_count - span, size=n_per)
                    digit = np.where(raw >= lo_own, raw + span, raw)
                    first = digit
                else:
                    digit = first
            else:
                if second is None:
                    digit = rng.integers(lo_own, lo_own + span, size=n_per)
                    second = digit
                else:
                    digit = second
            mask = (1 << width) - 1
            out[sl] |= (digit & mask).astype(KEY_DTYPE) << shift
    return np.minimum(out, MAX_KEY - 1)


def local(n: int, p: int, radix: int = 8, seed: int = 1) -> np.ndarray:
    """Zero-communication keys: every digit group falls in the process's own
    sub-range, so keys never leave their process during radix sort."""
    n_per = _check(n, p)
    bucket_count = 1 << radix
    if bucket_count < p:
        raise ValueError(f"local distribution needs 2**radix >= p ({bucket_count} < {p})")
    rng = _rng(seed)
    span = bucket_count // p
    out = np.zeros(n, dtype=KEY_DTYPE)
    for i in range(p):
        lo_own = i * span
        sl = slice(i * n_per, (i + 1) * n_per)
        digit = rng.integers(lo_own, lo_own + span, size=n_per)
        for shift, width in _digit_groups(radix):
            mask = (1 << width) - 1
            out[sl] |= (digit & mask).astype(KEY_DTYPE) << shift
    return np.minimum(out, MAX_KEY - 1)


def dupheavy(n: int, p: int, radix: int = 8, seed: int = 1) -> np.ndarray:
    """Duplicate-heavy keys: the whole array is drawn from 17 distinct
    values (a prime-ish pool spread across the key range).

    Beyond the paper's eight: stresses duplicate handling everywhere --
    sample sort's equal-splitter rebalancing, radix passes whose buckets
    are nearly all empty, and the native skew fallback.
    """
    _check(n, p)
    rng = _rng(seed)
    pool = rng.integers(0, MAX_KEY, size=17, dtype=KEY_DTYPE)
    return pool[rng.integers(0, len(pool), size=n)]


def antisample(n: int, p: int, radix: int = 8, seed: int = 1) -> np.ndarray:
    """Adversarial anti-sampling keys (beyond the paper's eight).

    Each process's partition is a single constant value (scaled by the
    process index), with a thin random tail: evenly spaced local samples
    then pick the *same* key over and over, so the splitter set collapses
    into runs of duplicates -- the worst case for regular sampling, and
    the input that exercises duplicate-splitter rebalancing and the
    skew-limit fallback end to end.
    """
    n_per = _check(n, p)
    rng = _rng(seed)
    step = MAX_KEY // max(2, p)
    out = np.empty(n, dtype=KEY_DTYPE)
    for i in range(p):
        out[i * n_per : (i + 1) * n_per] = (i * step) % MAX_KEY
    # A ~3% random tail keeps the value set from being exactly p values.
    tail = max(1, n // 32)
    idx = rng.integers(0, n, size=tail)
    out[idx] = rng.integers(0, MAX_KEY, size=tail, dtype=KEY_DTYPE)
    return out


# ----------------------------------------------------------------------
DISTRIBUTIONS: dict[str, Callable[..., np.ndarray]] = {
    "gauss": gauss,
    "random": random_keys,
    "zero": zero,
    "bucket": bucket,
    "stagger": stagger,
    "half": half,
    "remote": remote,
    "local": local,
    "dupheavy": dupheavy,
    "antisample": antisample,
}

#: The order the paper's Figures 5 and 9 present the methods in.
PAPER_ORDER = ["gauss", "random", "zero", "bucket", "stagger", "remote", "half", "local"]

#: Distributions beyond the paper's eight (the widened workload matrix).
EXTRA_DISTRIBUTIONS = ["dupheavy", "antisample"]


def generate(
    name: str, n: int, p: int, radix: int = 8, seed: int = 1
) -> np.ndarray:
    """Generate ``n`` keys for ``p`` processes under distribution ``name``."""
    try:
        fn = DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; choose from {sorted(DISTRIBUTIONS)}"
        ) from None
    if seed < 1:
        # Seeds are 1-based stream indices: gauss offsets the NAS LCG by
        # 4n(seed-1) values, and a zero/negative seed would index the
        # recurrence before its origin (a raw uint64 overflow).
        raise ValueError(f"seed must be >= 1, got {seed}")
    keys = fn(n, p, radix=radix, seed=seed)
    if keys.dtype != KEY_DTYPE or keys.shape != (n,):
        raise AssertionError(f"generator {name} produced bad output")
    return keys
