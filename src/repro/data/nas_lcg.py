"""The NAS linear congruential generator, vectorized.

The paper's Gauss distribution (and the NAS IS benchmark it comes from)
draws from the recurrence ``x_{k+1} = a * x_k (mod 2**46)`` with
``a = 5**13`` and ``x_0 = 314159265``.  (The paper's text typesets the
multiplier as "513"; the NAS specification it cites defines ``a = 5**13 =
1220703125``, which we use.)

Generating the sequence element-by-element in Python would be hopeless for
multi-million-key arrays, so :func:`lcg_sequence` computes ``x_k = a**k *
x_0 (mod 2**46)`` for a whole index vector using binary exponentiation over
a 23/23-bit split multiply (the same trick as NAS's ``randlc``), giving the
exact same sequence in O(46) vector operations.
"""

from __future__ import annotations

import numpy as np

MOD_BITS = 46
MOD = 1 << MOD_BITS
_HALF_BITS = 23
_HALF_MASK = np.uint64((1 << _HALF_BITS) - 1)
_MOD_MASK = np.uint64(MOD - 1)

DEFAULT_A = 5**13  # 1220703125
DEFAULT_SEED = 314159265


def mulmod46(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a * b) mod 2**46`` for uint64 arrays with values < 2**46.

    Splits both operands into 23-bit halves so every intermediate product
    fits in 64 bits:  a*b = a_hi*b_hi*2**46 + (a_hi*b_lo + a_lo*b_hi)*2**23
    + a_lo*b_lo, and the first term vanishes mod 2**46.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    a_hi = a >> np.uint64(_HALF_BITS)
    a_lo = a & _HALF_MASK
    b_hi = b >> np.uint64(_HALF_BITS)
    b_lo = b & _HALF_MASK
    mid = (a_hi * b_lo + a_lo * b_hi) & _MOD_MASK
    return ((mid << np.uint64(_HALF_BITS)) + a_lo * b_lo) & _MOD_MASK


def powmod46(a: int, k: np.ndarray) -> np.ndarray:
    """``a**k mod 2**46`` for a vector of non-negative exponents."""
    k = np.asarray(k, dtype=np.uint64)
    result = np.ones(k.shape, dtype=np.uint64)
    base = np.array([a % MOD], dtype=np.uint64)
    for bit in range(64):
        if not np.any(k >> np.uint64(bit)):
            break
        mask = ((k >> np.uint64(bit)) & np.uint64(1)).astype(bool)
        if mask.any():
            result[mask] = mulmod46(result[mask], base)
        base = mulmod46(base, base)
    return result


def lcg_sequence(
    n: int, start_index: int = 1, a: int = DEFAULT_A, seed: int = DEFAULT_SEED
) -> np.ndarray:
    """``x_{start_index} .. x_{start_index + n - 1}`` of the NAS recurrence,
    as uint64 values in [0, 2**46)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    idx = np.arange(start_index, start_index + n, dtype=np.uint64)
    powers = powmod46(a, idx)
    return mulmod46(powers, np.full(n, seed % MOD, dtype=np.uint64))


def lcg_uniform(n: int, start_index: int = 1, **kw) -> np.ndarray:
    """The same sequence scaled to floats in [0, 1)."""
    return lcg_sequence(n, start_index, **kw).astype(np.float64) / float(MOD)
