"""The widened workload axis: key dtypes and record shapes beyond uint32.

The paper sorts 31-bit integer keys.  This module widens the workload
matrix along two orthogonal directions:

- **dtype**: 64-bit keys (``u64``, exercised near ``2**64``) and IEEE-754
  double keys (``f64``) via an order-preserving unsigned transform;
- **shape**: key+payload record sorts (``payload``), where a payload
  array is permuted alongside the keys by encoding the original index
  into the low bits of a composite key.

Each named *workload kind* (:data:`WORKLOAD_KINDS`) bundles a generator
for the differential oracle plus the transform the backends apply at the
seam (:func:`repro.backend.base.prepare_workload`).

Float ordering policy
---------------------
The transform is the classic sign-flip bit twiddle: reinterpret the
double as ``uint64``, then XOR with ``0x8000...`` for non-negative
values or ``0xFFFF...`` for negatives.  The resulting unsigned order is
the IEEE total order, which matches ``np.sort``: ``-inf < ... < -0.0 ==
0.0 < ... < +inf < NaN`` (NumPy places all NaNs last).  All NaN payloads
are canonicalized to the positive quiet NaN before transforming so every
NaN maps to the same (largest) code; the inverse transform therefore
returns canonical NaNs, and the oracle compares with
``np.array_equal(..., equal_nan=True)``.  ``-0.0`` and ``0.0`` map to
*different* codes (``-0.0`` sorts first) -- a total order refining
``np.sort``'s, so outputs still compare equal under ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distributions import KEY_DTYPE, MAX_KEY, generate

_SIGN = np.uint64(1 << 63)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
#: The canonical positive quiet NaN all NaN inputs are folded onto.
_CANONICAL_NAN = np.uint64(0x7FF8000000000000)


# ----------------------------------------------------------------------
# Order-preserving float <-> uint64 transform
# ----------------------------------------------------------------------
def float_to_sortable_u64(values: np.ndarray) -> np.ndarray:
    """Map float64 values to uint64 codes whose unsigned order is the
    IEEE total order (NaNs canonicalized, sorted last)."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    bits = values.view(np.uint64).copy()
    bits[np.isnan(values)] = _CANONICAL_NAN
    neg = (bits & _SIGN) != 0
    out = np.where(neg, _FULL - bits, bits | _SIGN)
    return out.astype(np.uint64)


def sortable_u64_to_float(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`float_to_sortable_u64` (NaNs come back
    canonical)."""
    codes = np.asarray(codes, dtype=np.uint64)
    neg = (codes & _SIGN) == 0
    bits = np.where(neg, _FULL - codes, codes & ~_SIGN)
    return bits.astype(np.uint64).view(np.float64).copy()


# ----------------------------------------------------------------------
# Key + payload records via composite keys
# ----------------------------------------------------------------------
def encode_records(keys: np.ndarray, key_bits: int) -> tuple[np.ndarray, int]:
    """Pack each key's original index into the low bits of a composite
    key, so sorting the composites is a *stable* sort of the keys that
    carries the permutation along.

    Returns ``(composite, idx_bits)``.  When ``key_bits + idx_bits``
    exceeds 63 (the widest key the simulated sorters carry losslessly
    through int64 arithmetic), the keys are first rank-compressed with
    ``np.unique`` -- at most ``n`` distinct ranks always fit.
    """
    n = len(keys)
    idx_bits = max(1, int(n - 1).bit_length())
    if key_bits + idx_bits > 63:
        ranks = np.unique(keys, return_inverse=True)[1].astype(np.uint64)
        key_bits = max(1, int(ranks.max(initial=0)).bit_length())
        keys = ranks
        if key_bits + idx_bits > 63:  # pragma: no cover - needs n > 2**31
            raise ValueError("record sort input too large to encode")
    comp = (
        np.asarray(keys, dtype=np.uint64) << np.uint64(idx_bits)
    ) | np.arange(n, dtype=np.uint64)
    return comp.astype(np.int64), idx_bits


def decode_records(composite: np.ndarray, idx_bits: int) -> np.ndarray:
    """Recover the permutation a sorted composite array encodes."""
    comp = np.asarray(composite, dtype=np.uint64)
    return (comp & np.uint64((1 << idx_bits) - 1)).astype(np.int64)


# ----------------------------------------------------------------------
# Workload kinds (the oracle's workload axis)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Workload:
    """One generated workload cell: keys plus an optional payload."""

    kind: str
    keys: np.ndarray
    payload: np.ndarray | None = None


def _u32(n: int, p: int, seed: int, distribution: str) -> Workload:
    return Workload("u32", generate(distribution, n, p, seed=seed))


def _u64(n: int, p: int, seed: int, distribution: str) -> Workload:
    """Uniform 64-bit keys with the top half forced near ``2**64`` --
    exercising the full key width, not just the comfortable bottom."""
    del distribution
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 63, size=n, dtype=np.uint64)
    high = rng.random(n) < 0.5
    keys[high] |= np.uint64(1 << 63)
    keys[: min(4, n)] = np.uint64(0xFFFFFFFFFFFFFFFF) - np.arange(
        min(4, n), dtype=np.uint64
    )
    return Workload("u64", keys)


def _f64(n: int, p: int, seed: int, distribution: str) -> Workload:
    """Doubles spanning signs and magnitudes, with -0.0/0.0/inf/NaN
    sprinkled in (the ordering-policy corners)."""
    del distribution
    rng = np.random.default_rng(seed)
    keys = rng.standard_normal(n) * np.exp(rng.uniform(-30, 30, size=n))
    specials = np.array([-0.0, 0.0, np.inf, -np.inf, np.nan])
    take = min(n, 5 * max(1, n // 64))
    keys[rng.integers(0, n, size=take)] = rng.choice(specials, size=take)
    return Workload("f64", keys)


def _payload(n: int, p: int, seed: int, distribution: str) -> Workload:
    """Record sort: uint32-range keys (with duplicates, so stability is
    observable) plus a distinct payload per record."""
    keys = generate(distribution, n, p, seed=seed) % KEY_DTYPE(MAX_KEY // 8)
    payload = np.arange(n, dtype=np.int64) * 7 + 3
    return Workload("payload", keys, payload)


def _dupheavy(n: int, p: int, seed: int, distribution: str) -> Workload:
    del distribution
    return Workload("dupheavy", generate("dupheavy", n, p, seed=seed))


def _antisample(n: int, p: int, seed: int, distribution: str) -> Workload:
    del distribution
    return Workload("antisample", generate("antisample", n, p, seed=seed))


#: Registry: workload kind -> builder(n, p, seed, distribution).
WORKLOAD_KINDS = {
    "u32": _u32,
    "u64": _u64,
    "f64": _f64,
    "payload": _payload,
    "dupheavy": _dupheavy,
    "antisample": _antisample,
}

#: Kinds beyond the paper's uint32 keys (the widened matrix).
NEW_WORKLOAD_KINDS = ("u64", "f64", "payload", "dupheavy", "antisample")


def make_workload(
    kind: str, n: int, p: int, seed: int = 1, distribution: str = "gauss"
) -> Workload:
    """Generate one workload cell by kind name."""
    try:
        builder = WORKLOAD_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {kind!r}; choose from "
            f"{sorted(WORKLOAD_KINDS)}"
        ) from None
    return builder(n, p, seed, distribution)


def reference_sort(workload: Workload) -> Workload:
    """The NumPy oracle for one workload: ``np.sort`` for keys-only,
    stable ``np.argsort`` for records (payload follows key)."""
    if workload.payload is None:
        keys = workload.keys
        if np.issubdtype(keys.dtype, np.floating):
            # Canonicalize NaNs the way the transform does, so outputs
            # compare bit-equal under equal_nan.
            keys = keys.copy()
            keys[np.isnan(keys)] = np.nan
        return Workload(workload.kind, np.sort(keys))
    order = np.argsort(workload.keys, kind="stable")
    return Workload(
        workload.kind, workload.keys[order], workload.payload[order]
    )


def workloads_equal(a: Workload, b: Workload) -> bool:
    """Oracle comparison: exact equality, NaN == NaN for float keys."""
    if np.issubdtype(a.keys.dtype, np.floating):
        keys_ok = np.array_equal(a.keys, b.keys, equal_nan=True)
    else:
        keys_ok = np.array_equal(a.keys, b.keys)
    if not keys_ok:
        return False
    if (a.payload is None) != (b.payload is None):
        return False
    if a.payload is not None:
        return np.array_equal(a.payload, b.payload)
    return True


__all__ = [
    "NEW_WORKLOAD_KINDS",
    "WORKLOAD_KINDS",
    "Workload",
    "decode_records",
    "encode_records",
    "float_to_sortable_u64",
    "make_workload",
    "reference_sort",
    "sortable_u64_to_float",
    "workloads_equal",
]
