"""Key workload generation: the paper's eight distributions + the NAS LCG,
plus the widened workload matrix (dtypes, records, adversarial inputs)."""

from .distributions import (
    DISTRIBUTIONS,
    EXTRA_DISTRIBUTIONS,
    KEY_BITS,
    KEY_DTYPE,
    MAX_KEY,
    PAPER_ORDER,
    DistributionSpec,
    generate,
)
from .nas_lcg import lcg_sequence, lcg_uniform, mulmod46, powmod46
from .workloads import (
    NEW_WORKLOAD_KINDS,
    WORKLOAD_KINDS,
    Workload,
    decode_records,
    encode_records,
    float_to_sortable_u64,
    make_workload,
    reference_sort,
    sortable_u64_to_float,
    workloads_equal,
)

__all__ = [
    "DISTRIBUTIONS",
    "DistributionSpec",
    "EXTRA_DISTRIBUTIONS",
    "KEY_BITS",
    "KEY_DTYPE",
    "MAX_KEY",
    "NEW_WORKLOAD_KINDS",
    "PAPER_ORDER",
    "WORKLOAD_KINDS",
    "Workload",
    "decode_records",
    "encode_records",
    "float_to_sortable_u64",
    "generate",
    "lcg_sequence",
    "lcg_uniform",
    "make_workload",
    "mulmod46",
    "powmod46",
    "reference_sort",
    "sortable_u64_to_float",
    "workloads_equal",
]
