"""Key workload generation: the paper's eight distributions + the NAS LCG."""

from .distributions import (
    DISTRIBUTIONS,
    KEY_BITS,
    KEY_DTYPE,
    MAX_KEY,
    PAPER_ORDER,
    DistributionSpec,
    generate,
)
from .nas_lcg import lcg_sequence, lcg_uniform, mulmod46, powmod46

__all__ = [
    "DISTRIBUTIONS",
    "DistributionSpec",
    "KEY_BITS",
    "KEY_DTYPE",
    "MAX_KEY",
    "PAPER_ORDER",
    "generate",
    "lcg_sequence",
    "lcg_uniform",
    "mulmod46",
    "powmod46",
]
