"""Queued resources and channels for the DES kernel.

:class:`Resource` models mutual exclusion with FIFO queueing (e.g. a node's
hub controller or a network link).  :class:`Channel` models a bounded
message buffer -- with ``capacity=1`` it is exactly the lock-free 1-deep
per-processor-pair buffer of the paper's MPICH-derived MPI, whose occupancy
stalls explain MPI's elevated SYNC time (Section 4.2).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..faults.context import current_fault_plan
from ..trace import PID_FAULTS, current_recorder
from .engine import Event, SimError, Simulator


class Resource:
    """A server pool with FIFO queueing.

    Every acquire request takes a monotonically increasing ticket; grants
    must happen in ticket order (strict FIFO).  The runtime sanitizer
    (:mod:`repro.verify`) audits this ordering, slot occupancy against
    capacity, and that only held slots are released.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise SimError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[tuple[Event, int]] = deque()
        self.total_acquisitions = 0
        self._next_ticket = 0  # next request number to hand out
        self._next_grant = 0  # request number that must be granted next

    def _grant(self, ticket: int) -> None:
        self.total_acquisitions += 1
        san = self.sim.sanitizer
        if san is not None:
            san.on_grant(self, ticket)
        self._next_grant = ticket + 1

    def acquire(self) -> Event:
        """An event that triggers when a slot is granted."""
        ev = self.sim.event(f"{self.name}.acquire")
        ticket = self._next_ticket
        self._next_ticket += 1
        if self.in_use < self.capacity:
            self.in_use += 1
            self._grant(ticket)
            ev.succeed(self)
        else:
            self._waiters.append((ev, ticket))
        return ev

    def release(self) -> None:
        san = self.sim.sanitizer
        if san is not None:
            san.on_release(self)
        if self.in_use <= 0:
            raise SimError(f"release of idle resource {self.name}")
        if self._waiters:
            ev, ticket = self._waiters.popleft()
            self._grant(ticket)
            ev.succeed(self)  # slot handed over directly
        else:
            self.in_use -= 1

    def use(self, hold_time: float):
        """A generator usable as ``yield from resource.use(t)``: acquire,
        hold for ``hold_time``, release."""
        yield self.acquire()
        try:
            yield self.sim.timeout(hold_time)
        finally:
            self.release()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Channel:
    """A bounded FIFO message buffer between two parties."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise SimError("channel capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._getters: deque[Event] = deque()
        self.messages_passed = 0

    def put(self, item: Any) -> Event:
        """An event that triggers when the item has been deposited.

        When an ambient fault plan (:mod:`repro.faults`) fires the
        ``channel.delay`` / ``channel.drop`` site for this message, the
        deposit is deferred by the plan's extra virtual latency (a drop
        modeling the original send lost and a retransmission paying the
        longer retransmit delay).  Either way the message is eventually
        delivered in order relative to later puts on this channel only
        after its delay -- the sender simply observes a slower deposit,
        which the surrounding SPMD accounting books as wait time.
        """
        san = self.sim.sanitizer
        if san is not None:
            san.on_channel(self)
        ev = self.sim.event(f"{self.name}.put")
        plan = current_fault_plan()
        site = None
        if plan is not None:
            if plan.should("channel.drop"):
                site, extra_ns = "channel.drop", plan.drop_retransmit_ns
            elif plan.should("channel.delay"):
                site, extra_ns = "channel.delay", plan.channel_delay_ns
        if site is None or extra_ns <= 0:
            self._deposit(ev, item)
            return ev
        rec = current_recorder()
        if rec.enabled:
            rec.instant(
                f"fault.{site}",
                cat="fault.inject",
                ts_us=(self.sim.trace_offset_ns + self.sim.now) / 1e3,
                pid=PID_FAULTS,
                args={"channel": self.name, "extra_ns": extra_ns},
            )
        if san is not None:
            san.on_recoverable(
                site,
                f"channel {self.name!r}: message deferred {extra_ns:g}ns",
            )

        def _deliver(_ignored: Any, _site: str = site) -> None:
            self._deposit(ev, item)
            plan.note_recovered(_site)

        self.sim.timeout(extra_ns).add_callback(_deliver)
        return ev

    def _deposit(self, ev: Event, item: Any) -> None:
        """Land ``item`` in the buffer (or a waiting getter); succeeds
        ``ev`` once the deposit completes."""
        if self._getters:
            getter = self._getters.popleft()
            self.messages_passed += 1
            getter.succeed(item)
            ev.succeed(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))

    def get(self) -> Event:
        """An event that triggers with the next item."""
        san = self.sim.sanitizer
        if san is not None:
            san.on_channel(self)
        ev = self.sim.event(f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            self.messages_passed += 1
            ev.succeed(item)
            if self._putters:
                put_ev, pending = self._putters.popleft()
                self._items.append(pending)
                put_ev.succeed(None)
        else:
            self._getters.append(ev)
        return ev

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def blocked_senders(self) -> int:
        return len(self._putters)
