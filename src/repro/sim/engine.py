"""Discrete-event simulation engine.

A small, deterministic, simpy-style kernel: processes are Python generators
that ``yield`` the things they wait for (a delay, an event, another
process), and the :class:`Simulator` advances virtual time by popping a
priority queue of scheduled events.  Determinism matters for reproducible
experiments, so ties in time are broken by schedule order (a monotonically
increasing sequence number), never by object identity.

The messaging phases of the MPI and SHMEM runtimes are built on this kernel
(see :mod:`repro.smp.executor`); everything is also generally usable, e.g.
for the resource-contention tests.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from ..trace import PID_SIM, current_recorder
from ..verify.context import current_sanitizer


class SimError(RuntimeError):
    """Raised for invalid simulation operations."""


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("sim", "_callbacks", "triggered", "value", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self._callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None
        self.name = name

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now; waiters resume at the current time."""
        if self.triggered:
            san = self.sim.sanitizer
            if san is not None:
                san.on_event_refire(self.sim, self)
            raise SimError(f"event {self.name or id(self)} already triggered")
        self.triggered = True
        self.value = value
        for cb in self._callbacks:
            self.sim._schedule(self.sim.now, cb, self)
        self._callbacks.clear()
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.sim._schedule(self.sim.now, cb, self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name or hex(id(self))} {state}>"


class Timeout(Event):
    """An event that triggers itself after a fixed delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        super().__init__(sim, name=f"timeout+{delay:g}")
        sim._schedule(sim.now + delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class AllOf(Event):
    """Triggers once every child event has triggered."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._pending = 0
        self._values: list[Any] = []
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        self._values = [None] * len(events)
        for i, ev in enumerate(events):
            ev.add_callback(self._make_cb(i))

    def _make_cb(self, i: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            self._values[i] = ev.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))

        return cb


ProcessGen = Generator[Any, Any, Any]


class Process(Event):
    """A running coroutine; itself an event that triggers on completion.

    The generator may yield:

    - a number: wait that many time units;
    - an :class:`Event` (including another :class:`Process`): wait for it;
    - ``None``: yield control, resume immediately (same timestamp).
    """

    def __init__(
        self, sim: "Simulator", gen: ProcessGen, name: str = "", tid: int = 0
    ):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._tid = tid
        self._t_start = sim.now
        sim._schedule(sim.now, self._resume, None)

    def _resume(self, send_value: Any) -> None:
        if self.triggered:
            san = self.sim.sanitizer
            if san is not None:
                san.on_late_resume(self.sim, self)
            raise SimError(f"process {self.name} resumed after completion")
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            rec = self.sim.recorder
            if rec.enabled and rec.verbose:
                # Span of the process's whole lifetime, in virtual time
                # shifted by the simulator's trace offset (exchange phases
                # replay relative time inside a cumulative team timeline).
                t0 = self.sim.trace_offset_ns + self._t_start
                rec.complete(
                    self.name,
                    cat="sim.process",
                    ts_us=t0 / 1e3,
                    dur_us=(self.sim.now - self._t_start) / 1e3,
                    pid=PID_SIM,
                    tid=self._tid,
                )
            self.succeed(stop.value)
            return
        if target is None:
            self.sim._schedule(self.sim.now, self._resume, None)
        elif isinstance(target, Event):
            target.add_callback(lambda ev: self._resume(ev.value))
        elif isinstance(target, (int, float)):
            # Fast path: a bare delay needs no Event object or callback
            # indirection -- schedule the resume directly.
            if target < 0:
                raise SimError(f"negative delay {target}")
            self.sim._schedule(self.sim.now + float(target), self._resume, None)
        else:
            raise SimError(
                f"process {self.name} yielded unsupported value {target!r}"
            )


class Simulator:
    """The event loop: a clock plus a deterministic priority queue."""

    def __init__(self):
        self.now: float = 0.0
        self._seq = 0
        self._queue: list[tuple[float, int, Callable[[Any], None], Any]] = []
        self.events_processed = 0
        #: Ambient structured-trace recorder captured at construction (the
        #: null recorder unless a run installed one via ``use_recorder``).
        self.recorder = current_recorder()
        #: Ambient runtime sanitizer captured at construction (``None``
        #: unless a run installed one via ``repro.verify.use_sanitizer``).
        self.sanitizer = current_sanitizer()
        #: Added to every emitted trace timestamp: callers embedding this
        #: simulator in a larger timeline (e.g. one exchange phase of a
        #: team run) set it to the phase's global start time in ns.
        self.trace_offset_ns: float = 0.0

    # ------------------------------------------------------------------
    def _schedule(self, at: float, callback: Callable[[Any], None], value: Any) -> None:
        if at < self.now - 1e-12:
            if self.sanitizer is not None:
                self.sanitizer.on_schedule(self, at)
            raise SimError(f"cannot schedule in the past ({at} < {self.now})")
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, callback, value))

    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "", tid: int = 0) -> Process:
        return Process(self, gen, name, tid=tid)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one scheduled callback.  Returns False when idle."""
        if not self._queue:
            return False
        at, _seq, callback, value = heapq.heappop(self._queue)
        if self.sanitizer is not None:
            self.sanitizer.on_step(self, at)
        self.now = at
        self.events_processed += 1
        callback(value)
        return True

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains (or ``until``).  Returns final time."""
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                break
            self.step()
            processed += 1
            if processed > max_events:
                raise SimError(f"exceeded {max_events} events; runaway simulation?")
        return self.now

    @property
    def idle(self) -> bool:
        return not self._queue
