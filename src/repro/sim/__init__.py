"""Deterministic discrete-event simulation kernel."""

from .engine import AllOf, Event, Process, SimError, Simulator, Timeout
from .resources import Channel, Resource
from .trace import Trace, TraceRecord

__all__ = [
    "AllOf",
    "Channel",
    "Event",
    "Process",
    "Resource",
    "SimError",
    "Simulator",
    "Timeout",
    "Trace",
    "TraceRecord",
]
