"""Event tracing for simulations.

A :class:`Trace` collects timestamped records; tests use it to assert
causality (timestamps non-decreasing) and scheduling properties, and it
doubles as a debugging aid when a cost model misbehaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .engine import Simulator


@dataclass(frozen=True)
class TraceRecord:
    time: float
    actor: str
    action: str
    detail: Any = None


@dataclass
class Trace:
    sim: Simulator
    records: list[TraceRecord] = field(default_factory=list)
    enabled: bool = True

    def log(self, actor: str, action: str, detail: Any = None) -> None:
        if self.enabled:
            self.records.append(TraceRecord(self.sim.now, actor, action, detail))

    def by_actor(self, actor: str) -> list[TraceRecord]:
        return [r for r in self.records if r.actor == actor]

    def by_action(self, action: str) -> list[TraceRecord]:
        return [r for r in self.records if r.action == action]

    def is_causal(self) -> bool:
        """Timestamps must never decrease in log order."""
        return all(
            a.time <= b.time + 1e-12
            for a, b in zip(self.records, self.records[1:])
        )

    def format(self, limit: int = 50) -> str:
        lines = [
            f"{r.time:>14.1f}  {r.actor:<12} {r.action:<20} {r.detail or ''}"
            for r in self.records[:limit]
        ]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more records")
        return "\n".join(lines)
