"""Structured event tracing shared by every execution substrate.

One trace vocabulary (:class:`TraceEvent`), one ambient recorder slot
(:func:`use_recorder` / :func:`current_recorder`), and one exporter
(:func:`write_chrome_trace`) cover the discrete-event simulator, the
simulated SPMD phase runtime, the programming-model message layers, and
the native multiprocessing backend.  The default recorder is a null
object; tracing costs one attribute check when off.
"""

from .events import (
    PH_COMPLETE,
    PH_COUNTER,
    PH_INSTANT,
    PID_FAULTS,
    PID_GRID,
    PID_NATIVE,
    PID_SERVE,
    PID_SIM,
    PID_STREAM,
    TraceEvent,
)
from .recorder import (
    NULL_RECORDER,
    MemoryRecorder,
    NullRecorder,
    TraceRecorder,
    current_recorder,
    use_recorder,
)
from .chrome import to_chrome_trace, write_chrome_trace

__all__ = [
    "MemoryRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "PH_COMPLETE",
    "PH_COUNTER",
    "PH_INSTANT",
    "PID_FAULTS",
    "PID_GRID",
    "PID_NATIVE",
    "PID_SERVE",
    "PID_SIM",
    "PID_STREAM",
    "TraceEvent",
    "TraceRecorder",
    "current_recorder",
    "to_chrome_trace",
    "use_recorder",
    "write_chrome_trace",
]
