"""Trace recorders and the ambient current-recorder mechanism.

The default recorder is a null object whose methods are no-ops and whose
``enabled`` flag is ``False``; instrumented code guards every emission
with ``if rec.enabled`` so that tracing costs one attribute check when
off.  High-volume instrumentation (per-message DES events, per-process
spans) additionally checks ``rec.verbose`` so that default traces stay at
phase granularity.

Recorders are installed ambiently rather than threaded through every call
signature::

    rec = MemoryRecorder()
    with use_recorder(rec):
        result = backend.run(job)
    write_chrome_trace("trace.json", rec.events)

The ambient slot is intentionally process-global (not a contextvar): the
native backend forks worker processes, and only the parent records.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from .events import (
    PH_COUNTER,
    PH_INSTANT,
    PID_SIM,
    TraceEvent,
)


class TraceRecorder:
    """Base recorder; also the null recorder (drops everything)."""

    #: Instrumented code skips emission entirely when this is False.
    enabled: bool = False
    #: Gates high-volume events (per-message sends, DES process spans).
    verbose: bool = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - no-op
        pass

    # ------------------------------------------------------------------
    # Convenience constructors used by the instrumentation sites
    # ------------------------------------------------------------------
    def complete(
        self,
        name: str,
        cat: str,
        ts_us: float,
        dur_us: float,
        pid: int = PID_SIM,
        tid: int = 0,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.emit(TraceEvent(name, cat, ts_us, dur_us, pid=pid, tid=tid, args=args))

    def instant(
        self,
        name: str,
        cat: str,
        ts_us: float,
        pid: int = PID_SIM,
        tid: int = 0,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.emit(
            TraceEvent(name, cat, ts_us, ph=PH_INSTANT, pid=pid, tid=tid, args=args)
        )

    def counter(
        self,
        name: str,
        cat: str,
        ts_us: float,
        values: dict[str, float],
        pid: int = PID_SIM,
        tid: int = 0,
    ) -> None:
        self.emit(
            TraceEvent(name, cat, ts_us, ph=PH_COUNTER, pid=pid, tid=tid, args=values)
        )


class NullRecorder(TraceRecorder):
    """Explicit alias for the do-nothing default."""


class MemoryRecorder(TraceRecorder):
    """Collects events in memory, up to a safety cap.

    Beyond ``max_events`` further events are counted but dropped
    (``n_dropped``), so a runaway trace degrades instead of exhausting
    memory; the Chrome exporter reports the drop count in metadata.
    """

    enabled = True

    def __init__(self, verbose: bool = False, max_events: int = 1_000_000):
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self.verbose = verbose
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.n_dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.n_dropped += 1
            return
        self.events.append(event)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def by_cat(self, cat: str) -> list[TraceEvent]:
        return [e for e in self.events if e.cat == cat]

    def by_name(self, name: str) -> list[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def clear(self) -> None:
        self.events.clear()
        self.n_dropped = 0


#: The shared do-nothing instance installed by default.
NULL_RECORDER = NullRecorder()

_current: TraceRecorder = NULL_RECORDER


def current_recorder() -> TraceRecorder:
    """The ambiently installed recorder (the null recorder by default)."""
    return _current


@contextmanager
def use_recorder(recorder: TraceRecorder | None) -> Iterator[TraceRecorder]:
    """Install ``recorder`` as the ambient recorder for the duration.

    ``None`` keeps whatever is currently installed (so call sites can
    accept an optional recorder without branching).
    """
    global _current
    if recorder is None:
        yield _current
        return
    previous = _current
    _current = recorder
    try:
        yield recorder
    finally:
        _current = previous
