"""Chrome-trace-format (Trace Event Format) export.

Produces the JSON-object form understood by ``chrome://tracing`` and
Perfetto: a ``traceEvents`` list of ``X``/``i``/``C`` events plus ``M``
metadata events naming the process and thread tracks.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable

from .events import (
    PH_INSTANT,
    PID_FAULTS,
    PID_GRID,
    PID_NATIVE,
    PID_SERVE,
    PID_SIM,
    PID_STREAM,
    TraceEvent,
)
from .recorder import MemoryRecorder

#: Default display names for the runtime track groups.
PROCESS_NAMES = {
    PID_SIM: "simulated DSM machine (virtual time)",
    PID_NATIVE: "native backend (wall clock)",
    PID_GRID: "experiment grid runner (wall clock)",
    PID_FAULTS: "fault injection + recovery (repro.faults)",
    PID_SERVE: "sort job server (repro.serve)",
    PID_STREAM: "out-of-core stream sort (repro.stream)",
}


def _event_dict(e: TraceEvent) -> dict[str, Any]:
    d: dict[str, Any] = {
        "name": e.name,
        "cat": e.cat,
        "ph": e.ph,
        "ts": e.ts_us,
        "pid": e.pid,
        "tid": e.tid,
    }
    if e.ph == "X":
        d["dur"] = e.dur_us
    if e.ph == PH_INSTANT:
        d["s"] = "t"  # thread-scoped instant
    if e.args:
        d["args"] = dict(e.args)
    return d


def to_chrome_trace(
    events: Iterable[TraceEvent] | MemoryRecorder,
    process_names: dict[int, str] | None = None,
    thread_names: dict[tuple[int, int], str] | None = None,
) -> dict[str, Any]:
    """Convert events to a Chrome/Perfetto trace object (JSON-serializable)."""
    n_dropped = 0
    if isinstance(events, MemoryRecorder):
        n_dropped = events.n_dropped
        events = events.events
    events = list(events)
    out: list[dict[str, Any]] = []
    names = dict(PROCESS_NAMES)
    names.update(process_names or {})
    pids = {e.pid for e in events}
    for pid in sorted(pids):
        if pid in names:
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": names[pid]},
                }
            )
    for (pid, tid), tname in sorted((thread_names or {}).items()):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tname},
            }
        )
    out.extend(_event_dict(e) for e in events)
    doc: dict[str, Any] = {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.trace"},
    }
    if n_dropped:
        doc["otherData"]["droppedEvents"] = n_dropped
    return doc


def write_chrome_trace(
    path_or_file: str | IO[str],
    events: Iterable[TraceEvent] | MemoryRecorder,
    **kwargs: Any,
) -> None:
    """Write a Chrome-trace JSON file loadable by Perfetto."""
    doc = to_chrome_trace(events, **kwargs)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as f:
            json.dump(doc, f)
