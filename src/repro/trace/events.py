"""Structured trace events.

One event type serves every layer of the runtime: simulated phases (whose
timestamps live in virtual nanoseconds, exported as microseconds), DES
processes and messages, and the native backend's wall-clock phase spans.
The field names deliberately mirror the Chrome trace format
(``chrome://tracing`` / Perfetto) so exporting is a direct mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Track-group ("pid" in Chrome traces) for events measured in simulated
#: virtual time on the modeled DSM machine.
PID_SIM = 0
#: Track-group for events measured in host wall-clock time by the native
#: multiprocessing backend.
PID_NATIVE = 1
#: Track-group for the experiment grid runner's per-cell progress spans
#: (host wall-clock time; one span per grid cell, serial or parallel).
PID_GRID = 2
#: Track-group for injected faults and the recoveries that absorb them
#: (``repro.faults``): injection instants, phase-retry/shrink instants,
#: and recovery spans.  Timestamps are host wall-clock for native sites
#: and virtual time for simulated channel sites.
PID_FAULTS = 3
#: Track-group for the sort job server (``repro.serve``): one span per
#: accepted job (queue wait + execution, with shared-memory create/attach
#: counts in ``args``) plus admission-rejection instants.  Host wall-clock.
PID_SERVE = 4
#: Track-group for the out-of-core streaming sorter (``repro.stream``):
#: ``stream.ingest`` spans per chunk (bytes read), ``stream.run`` spans
#: per spilled run (bytes spilled), and ``stream.merge`` spans per merge
#: pass (fan-in, runs in/out, bytes read).  Host wall-clock.
PID_STREAM = 5

#: Event phases (the Chrome trace ``ph`` field).
PH_COMPLETE = "X"  # a span: ts + dur
PH_INSTANT = "i"  # a point in time
PH_COUNTER = "C"  # a sampled counter value


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped record.

    ``ts_us``/``dur_us`` are microseconds: virtual microseconds for
    ``pid == PID_SIM`` tracks, host wall-clock microseconds for
    ``pid == PID_NATIVE`` tracks.  ``tid`` identifies the (simulated
    processor | native worker) within the track group.
    """

    name: str
    cat: str
    ts_us: float
    dur_us: float = 0.0
    ph: str = PH_COMPLETE
    pid: int = PID_SIM
    tid: int = 0
    args: Mapping[str, Any] | None = field(default=None, compare=False)

    @property
    def end_us(self) -> float:
        return self.ts_us + self.dur_us
