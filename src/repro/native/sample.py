"""Actually-parallel sample sort via multiprocessing + shared memory.

The paper's five phases (Section 3.2), with the pool's ``map`` barriers
between them: local sort, sample selection, splitter computation,
all-to-all distribution into a shared output array, local sort of the
received ranges.

Every phase is double-buffered: a task reads one shared array and
overwrites its full output slice in the *other* (local sort src->dst,
scatter dst->src, final sort src->dst), never mutating its input.  That
makes each phase idempotent, which is what lets a supervised
:class:`~repro.native.pool.WorkerPool` transparently re-run a phase after
a worker crash or timeout.

Sample sort is naturally cache-conscious in the IPS4o sense: every data
movement is a contiguous block copy (the scatter moves whole per-dest
runs of the locally sorted slices into contiguous destination ranges),
so unlike radix it needs no blocked kernel -- what it *does* need is
protection against duplicate-heavy inputs.  When heavy key duplication
produces runs of equal splitters, the count phase funnels the entire
duplicated mass to one destination; the parent rebalances such runs
(:func:`rebalance_duplicate_splitters`) and, if the destination ranges
are still skewed beyond :data:`SPLITTER_SKEW_LIMIT`, falls back to a
sequential ``np.sort`` rather than letting one worker sort nearly
everything behind a barrier the rest idle at.
"""

from __future__ import annotations

from contextlib import ExitStack

import numpy as np

from ..sorts.common import SAMPLES_PER_PROC, choose_splitters
from .kernels import slice_bounds
from .pool import WorkerPool
from .shm import SharedArray, SortBuffers

#: Fall back to sequential ``np.sort`` when, even after duplicate-splitter
#: rebalancing, the largest destination range exceeds this multiple of the
#: ideal ``n / p`` share -- a final-sort phase that skewed would serialize
#: on one worker anyway, and the fallback skips the scatter traffic too.
SPLITTER_SKEW_LIMIT = 4.0


def _local_sort_task(args) -> None:
    (src_name, dst_name, n, dtype_str, p, w) = args
    with ExitStack() as stack:
        dt = np.dtype(dtype_str)
        src = stack.enter_context(SharedArray.attach(src_name, (n,), dt))
        dst = stack.enter_context(SharedArray.attach(dst_name, (n,), dt))
        lo, hi = _slice(n, p, w)
        dst.array[lo:hi] = np.sort(src.array[lo:hi])


def _count_task(args) -> None:
    (src_name, n, dtype_str, spl_name, counts_name, p, w) = args
    with ExitStack() as stack:
        dt = np.dtype(dtype_str)
        src = stack.enter_context(SharedArray.attach(src_name, (n,), dt))
        spl = stack.enter_context(SharedArray.attach(spl_name, (p - 1,), dt))
        counts = stack.enter_context(
            SharedArray.attach(counts_name, (p, p), np.int64)
        )
        lo, hi = _slice(n, p, w)
        part = src.array[lo:hi]
        edges = np.searchsorted(part, spl.array, side="right")
        bounds = np.concatenate(([0], edges, [len(part)]))
        counts.array[w, :] = np.diff(bounds)


def _scatter_task(args) -> None:
    (src_name, dst_name, n, dtype_str, counts_name, place_name, p, w) = args
    with ExitStack() as stack:
        dt = np.dtype(dtype_str)
        src = stack.enter_context(SharedArray.attach(src_name, (n,), dt))
        dst = stack.enter_context(SharedArray.attach(dst_name, (n,), dt))
        counts = stack.enter_context(
            SharedArray.attach(counts_name, (p, p), np.int64)
        )
        place = stack.enter_context(
            SharedArray.attach(place_name, (p, p), np.int64)
        )
        lo, _ = _slice(n, p, w)
        start = lo
        for dest in range(p):
            c = int(counts.array[w, dest])
            if c:
                at = int(place.array[w, dest])
                dst.array[at : at + c] = src.array[start : start + c]
            start += c


def _final_sort_task(args) -> None:
    (src_name, dst_name, n, dtype_str, bounds_lo, bounds_hi) = args
    with ExitStack() as stack:
        dt = np.dtype(dtype_str)
        src = stack.enter_context(SharedArray.attach(src_name, (n,), dt))
        dst = stack.enter_context(SharedArray.attach(dst_name, (n,), dt))
        dst.array[bounds_lo:bounds_hi] = np.sort(src.array[bounds_lo:bounds_hi])


# Equal contiguous slices, shared with the radix sort's kernel layer.
_slice = slice_bounds


def rebalance_duplicate_splitters(
    counts: np.ndarray,
    splitters: np.ndarray,
    sorted_runs: np.ndarray,
    n: int,
    p: int,
) -> int:
    """Spread keys equal to a repeated splitter over its destinations.

    With ``searchsorted(..., side="right")`` counting, a run of equal
    splitters ``splitters[j..k]`` sends *every* key equal to that value to
    destination ``j`` and leaves ``j+1..k`` empty -- on duplicate-heavy
    inputs one worker ends up final-sorting nearly the whole array.  This
    mirrors :func:`repro.sorts.common.partition_counts`: for each run, the
    keys equal to the shared value are re-spread evenly across the
    ``k - j + 2`` destinations that may hold it.  ``counts`` (the shared
    ``(p, p)`` count matrix) is mutated in place; ``sorted_runs`` is the
    buffer holding the locally sorted slices.  The sequential way scatter
    tasks consume their count row keeps every destination range contiguous
    and the global order sorted: the duplicates form one contiguous run in
    each sorted slice, so handing consecutive chunks of it to consecutive
    destinations preserves ``dest d's keys <= dest d+1's keys``.

    Returns the number of duplicate-splitter runs rebalanced.
    """
    runs = 0
    j = 0
    while j < len(splitters):
        k = j
        while k + 1 < len(splitters) and splitters[k + 1] == splitters[j]:
            k += 1
        if k > j:
            runs += 1
            value = splitters[j]
            dests = range(j, k + 2)  # destinations that may hold value
            for w in range(p):
                lo, hi = slice_bounds(n, p, w)
                part = sorted_runs[lo:hi]
                a = int(np.searchsorted(part, value, side="left"))
                b = int(np.searchsorted(part, value, side="right"))
                dup = b - a
                if dup == 0:
                    continue
                counts[w, j] -= dup
                share, rem = divmod(dup, len(dests))
                for idx, d in enumerate(dests):
                    counts[w, d] += share + (1 if idx < rem else 0)
        j = k + 1
    if runs and (counts < 0).any():
        raise AssertionError("duplicate-splitter rebalancing went negative")
    return runs


def parallel_sample_sort(
    keys: np.ndarray,
    n_workers: int | None = None,
    samples_per_worker: int = SAMPLES_PER_PROC,
    pool: WorkerPool | None = None,
    buffers: SortBuffers | None = None,
) -> np.ndarray:
    """Sort integer (or any comparable NumPy) keys with parallel sample
    sort.  Returns a new sorted array.  ``buffers`` substitutes a shared
    buffer provider (e.g. the serve arena's); its ``release_all`` is
    always called before returning."""
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if len(keys) == 0:
        return keys.copy()

    n = len(keys)
    dtype_str = keys.dtype.str
    own_pool = pool is None
    pool = pool or WorkerPool(n_workers)
    p = max(1, min(pool.n_workers, n // 4))
    if p == 1:
        if own_pool:
            pool.close()
        if buffers is not None:
            buffers.release_all()
        return np.sort(keys)

    # Buffer roles per phase (double-buffering, see module docstring):
    # raw keys live in ``src``; locally-sorted runs in ``dst``; the
    # scatter rebuilds ``src`` as the globally-partitioned array; the
    # final sort writes the answer back into ``dst``.
    bufs = buffers if buffers is not None else SortBuffers()
    src = bufs.from_array(keys)
    dst = bufs.empty((n,), keys.dtype)
    counts = bufs.empty((p, p), np.int64)
    try:
        # Phase 1: local sorts, src -> dst.
        pool.run_phase(
            _local_sort_task,
            [(src.name, dst.name, n, dtype_str, p, w) for w in range(p)],
            name="local-sort",
        )
        # Phases 2-3: samples and splitters (tiny; done in the parent, the
        # "group leader" of the paper's CC-SAS scheme) from the sorted runs.
        samples = []
        for w in range(p):
            lo, hi = _slice(n, p, w)
            part = dst.array[lo:hi]
            k = min(samples_per_worker, len(part))
            if k:
                idx = (np.arange(k) * len(part)) // k
                samples.append(part[idx])
        splitters = choose_splitters(np.concatenate(samples), p)
        spl = bufs.from_array(splitters.astype(keys.dtype))
        # Phase 4a: destination counts over the sorted runs in dst.
        pool.run_phase(
            _count_task,
            [(dst.name, n, dtype_str, spl.name, counts.name, p, w)
             for w in range(p)],
            name="count",
        )
        # Duplicate-heavy inputs: spread keys equal to a repeated
        # splitter over the destinations sharing it, and bail out to a
        # sequential sort if the ranges are still pathologically skewed.
        c = counts.array
        rebalance_duplicate_splitters(c, spl.array, dst.array, n, p)
        dest_totals = c.sum(axis=0)
        if int(dest_totals.max()) > SPLITTER_SKEW_LIMIT * (n / p):
            return np.sort(keys)  # finally still releases buffers/pool
        dest_base = np.concatenate(([0], np.cumsum(dest_totals)[:-1]))
        within = np.cumsum(c, axis=0) - c
        place = bufs.empty((p, p), np.int64)
        place.array[...] = dest_base[None, :] + within
        # Phase 4b: all-to-all scatter, dst -> src.
        pool.run_phase(
            _scatter_task,
            [(dst.name, src.name, n, dtype_str, counts.name,
              place.name, p, w) for w in range(p)],
            name="scatter",
        )
        # Phase 5: sort each destination range, src -> dst.
        bounds = np.concatenate((dest_base, [n])).astype(np.int64)
        pool.run_phase(
            _final_sort_task,
            [(src.name, dst.name, n, dtype_str,
              int(bounds[d]), int(bounds[d + 1])) for d in range(p)],
            name="final-sort",
        )
        result = dst.array.copy()
    finally:
        bufs.release_all()
        if own_pool:
            pool.close()
    return result
