"""Actually-parallel sample sort via multiprocessing + shared memory.

The paper's five phases (Section 3.2), with the pool's ``map`` barriers
between them: local sort, sample selection, splitter computation,
all-to-all distribution into a shared output array, local sort of the
received ranges.

Every phase is double-buffered: a task reads one shared array and
overwrites its full output slice in the *other* (local sort src->dst,
scatter dst->src, final sort src->dst), never mutating its input.  That
makes each phase idempotent, which is what lets a supervised
:class:`~repro.native.pool.WorkerPool` transparently re-run a phase after
a worker crash or timeout.
"""

from __future__ import annotations

from contextlib import ExitStack

import numpy as np

from ..sorts.common import SAMPLES_PER_PROC, choose_splitters
from .pool import WorkerPool
from .shm import SharedArray, SortBuffers


def _local_sort_task(args) -> None:
    (src_name, dst_name, n, dtype_str, p, w) = args
    with ExitStack() as stack:
        dt = np.dtype(dtype_str)
        src = stack.enter_context(SharedArray.attach(src_name, (n,), dt))
        dst = stack.enter_context(SharedArray.attach(dst_name, (n,), dt))
        lo, hi = _slice(n, p, w)
        dst.array[lo:hi] = np.sort(src.array[lo:hi])


def _count_task(args) -> None:
    (src_name, n, dtype_str, spl_name, counts_name, p, w) = args
    with ExitStack() as stack:
        dt = np.dtype(dtype_str)
        src = stack.enter_context(SharedArray.attach(src_name, (n,), dt))
        spl = stack.enter_context(SharedArray.attach(spl_name, (p - 1,), dt))
        counts = stack.enter_context(
            SharedArray.attach(counts_name, (p, p), np.int64)
        )
        lo, hi = _slice(n, p, w)
        part = src.array[lo:hi]
        edges = np.searchsorted(part, spl.array, side="right")
        bounds = np.concatenate(([0], edges, [len(part)]))
        counts.array[w, :] = np.diff(bounds)


def _scatter_task(args) -> None:
    (src_name, dst_name, n, dtype_str, counts_name, place_name, p, w) = args
    with ExitStack() as stack:
        dt = np.dtype(dtype_str)
        src = stack.enter_context(SharedArray.attach(src_name, (n,), dt))
        dst = stack.enter_context(SharedArray.attach(dst_name, (n,), dt))
        counts = stack.enter_context(
            SharedArray.attach(counts_name, (p, p), np.int64)
        )
        place = stack.enter_context(
            SharedArray.attach(place_name, (p, p), np.int64)
        )
        lo, _ = _slice(n, p, w)
        start = lo
        for dest in range(p):
            c = int(counts.array[w, dest])
            if c:
                at = int(place.array[w, dest])
                dst.array[at : at + c] = src.array[start : start + c]
            start += c


def _final_sort_task(args) -> None:
    (src_name, dst_name, n, dtype_str, bounds_lo, bounds_hi) = args
    with ExitStack() as stack:
        dt = np.dtype(dtype_str)
        src = stack.enter_context(SharedArray.attach(src_name, (n,), dt))
        dst = stack.enter_context(SharedArray.attach(dst_name, (n,), dt))
        dst.array[bounds_lo:bounds_hi] = np.sort(src.array[bounds_lo:bounds_hi])


def _slice(n: int, p: int, w: int) -> tuple[int, int]:
    per = n // p
    lo = w * per
    hi = n if w == p - 1 else lo + per
    return lo, hi


def parallel_sample_sort(
    keys: np.ndarray,
    n_workers: int | None = None,
    samples_per_worker: int = SAMPLES_PER_PROC,
    pool: WorkerPool | None = None,
    buffers: SortBuffers | None = None,
) -> np.ndarray:
    """Sort integer (or any comparable NumPy) keys with parallel sample
    sort.  Returns a new sorted array.  ``buffers`` substitutes a shared
    buffer provider (e.g. the serve arena's); its ``release_all`` is
    always called before returning."""
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if len(keys) == 0:
        return keys.copy()

    n = len(keys)
    dtype_str = keys.dtype.str
    own_pool = pool is None
    pool = pool or WorkerPool(n_workers)
    p = max(1, min(pool.n_workers, n // 4))
    if p == 1:
        if own_pool:
            pool.close()
        return np.sort(keys)

    # Buffer roles per phase (double-buffering, see module docstring):
    # raw keys live in ``src``; locally-sorted runs in ``dst``; the
    # scatter rebuilds ``src`` as the globally-partitioned array; the
    # final sort writes the answer back into ``dst``.
    bufs = buffers if buffers is not None else SortBuffers()
    src = bufs.from_array(keys)
    dst = bufs.empty((n,), keys.dtype)
    counts = bufs.empty((p, p), np.int64)
    try:
        # Phase 1: local sorts, src -> dst.
        pool.run_phase(
            _local_sort_task,
            [(src.name, dst.name, n, dtype_str, p, w) for w in range(p)],
            name="local-sort",
        )
        # Phases 2-3: samples and splitters (tiny; done in the parent, the
        # "group leader" of the paper's CC-SAS scheme) from the sorted runs.
        samples = []
        for w in range(p):
            lo, hi = _slice(n, p, w)
            part = dst.array[lo:hi]
            k = min(samples_per_worker, len(part))
            if k:
                idx = (np.arange(k) * len(part)) // k
                samples.append(part[idx])
        splitters = choose_splitters(np.concatenate(samples), p)
        spl = bufs.from_array(splitters.astype(keys.dtype))
        # Phase 4a: destination counts over the sorted runs in dst.
        pool.run_phase(
            _count_task,
            [(dst.name, n, dtype_str, spl.name, counts.name, p, w)
             for w in range(p)],
            name="count",
        )
        # Placement offsets: dest-major, then source-major.
        c = counts.array
        dest_totals = c.sum(axis=0)
        dest_base = np.concatenate(([0], np.cumsum(dest_totals)[:-1]))
        within = np.cumsum(c, axis=0) - c
        place = bufs.empty((p, p), np.int64)
        place.array[...] = dest_base[None, :] + within
        # Phase 4b: all-to-all scatter, dst -> src.
        pool.run_phase(
            _scatter_task,
            [(dst.name, src.name, n, dtype_str, counts.name,
              place.name, p, w) for w in range(p)],
            name="scatter",
        )
        # Phase 5: sort each destination range, src -> dst.
        bounds = np.concatenate((dest_base, [n])).astype(np.int64)
        pool.run_phase(
            _final_sort_task,
            [(src.name, dst.name, n, dtype_str,
              int(bounds[d]), int(bounds[d + 1])) for d in range(p)],
            name="final-sort",
        )
        result = dst.array.copy()
    finally:
        bufs.release_all()
        if own_pool:
            pool.close()
    return result
