"""Real parallel sorting on the host machine.

Thread-based shared-memory sorting is hopeless under the GIL, so this
backend runs the paper's two algorithms across *processes* communicating
through :mod:`multiprocessing.shared_memory` -- a faithful, working
Python rendition of the algorithms the simulation studies.

    from repro.native import parallel_sort
    sorted_arr = parallel_sort(arr, algorithm="sample", n_workers=8)

The per-element hot path (validation scan, per-pass histogram, stable
blocked placement) lives in :mod:`repro.native.kernels`; set the
``REPRO_NATIVE_KERNEL`` environment variable (``numpy`` / ``numba`` /
``naive`` / ``auto``) or pass ``kernel=`` to pick an implementation --
see docs/PERF.md.
"""

from __future__ import annotations

import numpy as np

from .kernels import KERNEL_ENV, numba_available
from .kernels import resolve as resolve_kernel
from .pool import PhaseTiming, WorkerPool, default_workers
from .radix import parallel_radix_sort
from .sample import parallel_sample_sort
from .shm import SharedArray


def parallel_sort(
    keys: np.ndarray,
    algorithm: str = "sample",
    n_workers: int | None = None,
    pool: WorkerPool | None = None,
    **kwargs,
) -> np.ndarray:
    """Sort ``keys`` in parallel on the host machine.

    ``algorithm`` is ``"radix"`` (non-negative integers only) or
    ``"sample"`` (any sortable dtype).
    """
    if algorithm == "radix":
        return parallel_radix_sort(keys, n_workers=n_workers, pool=pool, **kwargs)
    if algorithm == "sample":
        return parallel_sample_sort(keys, n_workers=n_workers, pool=pool, **kwargs)
    raise ValueError(f"unknown algorithm {algorithm!r}")


__all__ = [
    "KERNEL_ENV",
    "PhaseTiming",
    "SharedArray",
    "WorkerPool",
    "default_workers",
    "numba_available",
    "parallel_radix_sort",
    "parallel_sample_sort",
    "parallel_sort",
    "resolve_kernel",
]
