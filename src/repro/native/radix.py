"""Actually-parallel LSD radix sort via multiprocessing + shared memory.

The algorithm is the paper's parallel radix sort (Section 3.1): per pass,
every worker histograms its slice (phase barrier), global offsets are
computed from the histogram matrix, and every worker permutes its keys to
their global positions in the shared output array.  The pool's ``map``
barriers stand in for the machine's barriers; the shared-memory output
array is the CC-SAS shared output array.
"""

from __future__ import annotations

from contextlib import ExitStack

import numpy as np

from ..sorts.common import n_passes
from .pool import WorkerPool
from .shm import SharedArray, SortBuffers


def _hist_task(args) -> None:
    (src_name, n, dtype_str, hist_name, p, w, shift, mask) = args
    with ExitStack() as stack:
        src = stack.enter_context(
            SharedArray.attach(src_name, (n,), np.dtype(dtype_str))
        )
        hist = stack.enter_context(
            SharedArray.attach(hist_name, (p, mask + 1), np.int64)
        )
        lo, hi = _slice(n, p, w)
        digits = (src.array[lo:hi] >> shift) & mask
        hist.array[w, :] = np.bincount(digits, minlength=mask + 1)


def _permute_task(args) -> None:
    (src_name, dst_name, n, dtype_str, offs_name, p, w, shift, mask) = args
    with ExitStack() as stack:
        dt = np.dtype(dtype_str)
        src = stack.enter_context(SharedArray.attach(src_name, (n,), dt))
        dst = stack.enter_context(SharedArray.attach(dst_name, (n,), dt))
        offs = stack.enter_context(
            SharedArray.attach(offs_name, (p, mask + 1), np.int64)
        )
        lo, hi = _slice(n, p, w)
        chunk = src.array[lo:hi].copy()
        digits = ((chunk >> shift) & mask).astype(np.int64)
        dst.array[offs.array[w, digits] + _stable_ranks(digits)] = chunk


def _stable_ranks(digits: np.ndarray) -> np.ndarray:
    """Rank of each key among equal digits, in original order (the
    within-slice component of a stable counting-sort placement)."""
    m = len(digits)
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(digits, kind="stable")
    sorted_digits = digits[order]
    run_start = np.zeros(m, dtype=np.int64)
    change = np.flatnonzero(np.diff(sorted_digits)) + 1
    run_start[change] = change
    run_start = np.maximum.accumulate(run_start)
    ranks = np.empty(m, dtype=np.int64)
    ranks[order] = np.arange(m, dtype=np.int64) - run_start
    return ranks


def _slice(n: int, p: int, w: int) -> tuple[int, int]:
    per = n // p
    lo = w * per
    hi = n if w == p - 1 else lo + per
    return lo, hi


def parallel_radix_sort(
    keys: np.ndarray,
    n_workers: int | None = None,
    radix: int = 11,
    pool: WorkerPool | None = None,
    buffers: SortBuffers | None = None,
) -> np.ndarray:
    """Sort non-negative integer keys with a parallel LSD radix sort.

    Returns a new sorted array; ``keys`` is left untouched.  Pass a
    :class:`~repro.native.pool.WorkerPool` to amortize worker startup over
    several sorts, and a :class:`~repro.native.shm.SortBuffers` provider
    (e.g. the serve arena's) to reuse shared buffers across sorts; the
    provider's ``release_all`` is always called before returning.
    """
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if len(keys) == 0:
        return keys.copy()
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError("radix sort requires integer keys")
    if keys.min() < 0:
        raise ValueError("radix sort requires non-negative keys")
    if not 1 <= radix <= 20:
        raise ValueError("radix must be in [1, 20]")

    key_bits = max(1, int(keys.max()).bit_length())
    passes = n_passes(radix, key_bits)
    mask = (1 << radix) - 1
    n = len(keys)
    dtype_str = keys.dtype.str

    own_pool = pool is None
    pool = pool or WorkerPool(n_workers)
    p = max(1, min(pool.n_workers, n // 4))

    bufs = buffers if buffers is not None else SortBuffers()
    src = bufs.from_array(keys)
    dst = bufs.empty((n,), keys.dtype)
    hist = bufs.empty((p, mask + 1), np.int64)
    offs = bufs.empty((p, mask + 1), np.int64)
    try:
        for k in range(passes):
            shift = k * radix
            pool.run_phase(
                _hist_task,
                [(src.name, n, dtype_str, hist.name, p, w, shift, mask)
                 for w in range(p)],
                name=f"pass{k}.histogram",
            )
            # Global exclusive offsets, digit-major then worker-major --
            # the same stable permutation the simulated sorts perform.
            flat = hist.array.T.reshape(-1)
            starts = np.concatenate(([0], np.cumsum(flat)[:-1]))
            offs.array[...] = starts.reshape(mask + 1, p).T
            pool.run_phase(
                _permute_task,
                [(src.name, dst.name, n, dtype_str, offs.name, p, w, shift, mask)
                 for w in range(p)],
                name=f"pass{k}.permute",
            )
            src, dst = dst, src
        result = src.array.copy()
    finally:
        bufs.release_all()
        if own_pool:
            pool.close()
    return result
