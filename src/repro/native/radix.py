"""Actually-parallel LSD radix sort via multiprocessing + shared memory.

The algorithm is the paper's parallel radix sort (Section 3.1): per pass,
every worker histograms its slice (phase barrier), global offsets are
computed from the histogram matrix, and every worker permutes its keys to
their global positions in the shared output array.  The pool's ``map``
barriers stand in for the machine's barriers; the shared-memory output
array is the CC-SAS shared output array.

The per-element work runs through the cache-conscious kernel layer
(:mod:`repro.native.kernels`): validation is one fused min/max pass whose
max seeds ``key_bits`` (so a 16-bit workload pays 2 passes, not 3), each
permute is a blocked stable counting placement writing contiguous
per-bucket runs (no ``argsort``-based rank reconstruction, no defensive
chunk copy, no per-element scattered stores), and
``REPRO_NATIVE_KERNEL=numba`` swaps in single-loop JIT kernels with a
pure-NumPy fallback.  Tasks carry the parent's resolved kernel name so
every worker uses the same implementation.

Supervised-retry safety: a permute task reads ``src`` and ``offs`` (both
unmodified -- each task advances a private cursor copy) and overwrites
its keys' ``dst`` positions, so re-running any task after a worker crash
is idempotent.
"""

from __future__ import annotations

from contextlib import ExitStack

import numpy as np

from ..sorts.common import n_passes
from .kernels import resolve as resolve_kernel
from .kernels import slice_bounds
from .pool import WorkerPool, default_workers
from .shm import SharedArray, SortBuffers


def _hist_task(args) -> None:
    (src_name, n, dtype_str, hist_name, p, w, shift, mask, kern_name) = args
    kern = resolve_kernel(kern_name)
    with ExitStack() as stack:
        src = stack.enter_context(
            SharedArray.attach(src_name, (n,), np.dtype(dtype_str))
        )
        hist = stack.enter_context(
            SharedArray.attach(hist_name, (p, mask + 1), np.int64)
        )
        lo, hi = slice_bounds(n, p, w)
        hist.array[w, :] = kern.histogram(src.array[lo:hi], shift, mask)


def _permute_task(args) -> None:
    (src_name, dst_name, n, dtype_str, offs_name, p, w, shift, mask,
     kern_name) = args
    kern = resolve_kernel(kern_name)
    with ExitStack() as stack:
        dt = np.dtype(dtype_str)
        src = stack.enter_context(SharedArray.attach(src_name, (n,), dt))
        dst = stack.enter_context(SharedArray.attach(dst_name, (n,), dt))
        offs = stack.enter_context(
            SharedArray.attach(offs_name, (p, mask + 1), np.int64)
        )
        lo, hi = slice_bounds(n, p, w)
        # Private running cursors: the shared offset matrix stays
        # pristine, which keeps a supervised re-run of this task
        # idempotent.
        cursor = offs.array[w].copy()
        kern.scatter(src.array[lo:hi], dst.array, cursor, shift, mask)


def parallel_radix_sort(
    keys: np.ndarray,
    n_workers: int | None = None,
    radix: int = 11,
    pool: WorkerPool | None = None,
    buffers: SortBuffers | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """Sort non-negative integer keys with a parallel LSD radix sort.

    Returns a new sorted array; ``keys`` is left untouched.  Pass a
    :class:`~repro.native.pool.WorkerPool` to amortize worker startup over
    several sorts, and a :class:`~repro.native.shm.SortBuffers` provider
    (e.g. the serve arena's) to reuse shared buffers across sorts; the
    provider's ``release_all`` is always called before returning.
    ``kernel`` pins a kernel implementation by name (default: the
    ``REPRO_NATIVE_KERNEL`` environment variable, see
    :mod:`repro.native.kernels`).
    """
    keys = np.ascontiguousarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if len(keys) == 0:
        return keys.copy()
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError("radix sort requires integer keys")
    if not 1 <= radix <= 20:
        raise ValueError("radix must be in [1, 20]")

    kern = resolve_kernel(kernel)
    # Fused validation: one pass over memory yields both the
    # non-negativity check and the max that sizes the pass count.
    lo_key, hi_key = kern.minmax(keys)
    if lo_key < 0:
        raise ValueError("radix sort requires non-negative keys")
    key_bits = max(1, int(hi_key).bit_length())
    passes = n_passes(radix, key_bits)
    mask = (1 << radix) - 1
    n = len(keys)
    dtype_str = keys.dtype.str

    own_pool = pool is None
    width = (
        pool.n_workers
        if pool is not None
        else (n_workers if n_workers is not None else default_workers())
    )
    p = max(1, min(width, n // 4))
    if p == 1:
        # Tiny inputs (or a one-worker pool) skip shared memory and the
        # pool entirely, mirroring sample sort's early return: the keys
        # are already validated non-negative integers, so one sequential
        # sort is the whole job.
        if buffers is not None:
            buffers.release_all()
        return np.sort(keys)
    pool = pool or WorkerPool(n_workers)

    bufs = buffers if buffers is not None else SortBuffers()
    src = bufs.from_array(keys)
    dst = bufs.empty((n,), keys.dtype)
    hist = bufs.empty((p, mask + 1), np.int64)
    offs = bufs.empty((p, mask + 1), np.int64)
    try:
        for k in range(passes):
            shift = k * radix
            pool.run_phase(
                _hist_task,
                [(src.name, n, dtype_str, hist.name, p, w, shift, mask,
                  kern.name) for w in range(p)],
                name=f"pass{k}.histogram",
            )
            # Global exclusive offsets, digit-major then worker-major --
            # the same stable permutation the simulated sorts perform.
            flat = hist.array.T.reshape(-1)
            starts = np.concatenate(([0], np.cumsum(flat)[:-1]))
            offs.array[...] = starts.reshape(mask + 1, p).T
            pool.run_phase(
                _permute_task,
                [(src.name, dst.name, n, dtype_str, offs.name, p, w, shift,
                  mask, kern.name) for w in range(p)],
                name=f"pass{k}.permute",
            )
            src, dst = dst, src
        result = src.array.copy()
    finally:
        bufs.release_all()
        if own_pool:
            pool.close()
    return result
