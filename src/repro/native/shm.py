"""Shared-memory NumPy arrays for the native parallel sorts.

The GIL makes thread-based shared-memory sorting pointless in Python (the
very reason this reproduction simulates the paper's machine), so the
native backend uses *processes* sharing buffers through
:mod:`multiprocessing.shared_memory`.  :class:`SharedArray` wraps the
block lifecycle: create, view as ndarray, attach from a worker by name,
and unlink exactly once.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np


class SharedArray:
    """A NumPy array backed by a named shared-memory block."""

    def __init__(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.int64,
        name: str | None = None,
        create: bool = True,
    ):
        self.shape = (shape,) if isinstance(shape, int) else tuple(shape)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
            self._owner = True
        else:
            if name is None:
                raise ValueError("attaching requires a block name")
            # CPython < 3.13 registers attachments with the resource
            # tracker, which is shared with the parent under fork -- the
            # worker's registration/unregistration then fights the owner's
            # (bpo-38119).  Suppress registration during attach; only the
            # creating process should track the block.
            from multiprocessing import resource_tracker

            real_register = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                self._shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = real_register
            self._owner = False
        self.array: np.ndarray = np.ndarray(
            self.shape, dtype=self.dtype, buffer=self._shm.buf
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def attach(
        cls, name: str, shape: tuple[int, ...] | int, dtype: np.dtype | type
    ) -> "SharedArray":
        """Attach to an existing block from a worker process."""
        return cls(shape, dtype, name=name, create=False)

    @classmethod
    def from_array(cls, source: np.ndarray) -> "SharedArray":
        """Create a shared copy of ``source``."""
        sa = cls(source.shape, source.dtype)
        sa.array[...] = source
        return sa

    def close(self) -> None:
        """Detach; the owner also unlinks the block."""
        # Drop the ndarray view first: SharedMemory.close() refuses while
        # exported buffers exist.
        self.array = None  # type: ignore[assignment]
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked
                pass
            self._owner = False

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedArray {self.name} {self.shape} {self.dtype}>"
