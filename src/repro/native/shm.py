"""Shared-memory NumPy arrays for the native parallel sorts.

The GIL makes thread-based shared-memory sorting pointless in Python (the
very reason this reproduction simulates the paper's machine), so the
native backend uses *processes* sharing buffers through
:mod:`multiprocessing.shared_memory`.  :class:`SharedArray` wraps the
block lifecycle: create, view as ndarray, attach from a worker by name,
and unlink exactly once.

Two fault sites live here (see :mod:`repro.faults` and docs/FAULTS.md):
``shm.create`` makes creation raise ENOSPC (the classic full ``/dev/shm``)
and ``shm.attach`` makes the next attach in this process raise EACCES.
:func:`allocate` / :func:`allocate_from` are the resilient allocation
front doors the sorts use: bounded retry with backoff, so a transient
creation failure degrades to a short stall instead of a failed sort.

Serving support (see :mod:`repro.serve`): every successful create and
every *fresh* attach bumps a process-local counter
(:func:`create_count` / :func:`attach_count`), which is how the job
server proves its steady-state path performs neither.  Long-lived worker
processes call :func:`enable_attach_cache` so repeat attaches to the
same named block (the server's arena slabs) reuse the existing mapping
instead of re-opening it -- a cache hit is not counted as an attach, and
``close()`` on a cached attachment keeps the mapping alive for the next
job.  :class:`SortBuffers` is the per-sort buffer-provider seam: the
default implementation allocates and unlinks per sort, while the serve
arena substitutes leased slab views so a sort touches no new segments.

The kernel-engineered sorts (:mod:`repro.native.kernels`) kept the seed
buffer shapes -- radix still leases two data arrays plus the ``(p, nb)``
histogram/offset pair, sample sort two data arrays plus splitter/counts/
place metadata -- so arena slabs sized for the seed layout serve the
blocked kernels unchanged; the per-block cursor state lives in ordinary
worker-local memory, never in a shared segment.
"""

from __future__ import annotations

import errno
import sys
import threading
import time
from multiprocessing import shared_memory

import numpy as np

from ..faults.context import current_fault_plan
from ..trace import PID_FAULTS, current_recorder

#: Python 3.13+ grows ``SharedMemory(..., track=...)``; older versions
#: need the resource-tracker registration suppressed by monkey-patch.
_HAS_TRACK_PARAM = sys.version_info >= (3, 13)

#: Serializes the register monkey-patch on < 3.13: concurrent attaches
#: from several threads used to race on saving/restoring the original
#: function, which could leave the no-op permanently installed.
_ATTACH_LOCK = threading.Lock()

#: Pending injected attach failures in *this* process (armed by the pool's
#: per-task fault directives; consumed, one per attach, by ``SharedArray``).
_fail_attach_count = 0

#: Process-local lifetime counters: successful creations and *fresh*
#: attaches (cache hits do not count).  The serve layer diffs these to
#: assert a steady-state job touched no new shared memory.
_create_count = 0
_attach_count = 0

#: When enabled (long-lived pool workers via ``enable_attach_cache``),
#: fresh attaches are memoized by block name and reused across tasks.
_attach_cache_enabled = False
_attach_cache: dict[str, shared_memory.SharedMemory] = {}


def create_count() -> int:
    """Shared-memory blocks created by this process so far."""
    return _create_count


def attach_count() -> int:
    """Fresh (non-cached) attaches performed by this process so far."""
    return _attach_count


def enable_attach_cache(on: bool = True) -> None:
    """Memoize attaches by block name in this process.

    Installed as the pool-worker initializer by the job server: arena
    slab names are stable for the server's lifetime, so after the first
    task touching a slab every later attach is a cache hit (no ``shm_open``,
    no counter bump).  Disabling does not drop existing cached mappings;
    call :func:`detach_cached` for that.
    """
    global _attach_cache_enabled
    _attach_cache_enabled = on


def attach_cache_size() -> int:
    return len(_attach_cache)


def detach_cached() -> int:
    """Close every cached attachment; returns how many were dropped."""
    n = len(_attach_cache)
    for cached in _attach_cache.values():
        try:
            cached.close()
        except OSError:  # pragma: no cover - already gone
            pass
    _attach_cache.clear()
    return n


def fail_next_attach(n: int = 1) -> None:
    """Arm ``n`` injected ``shm.attach`` failures in this process."""
    global _fail_attach_count
    _fail_attach_count += n


def _consume_injected_attach_failure() -> None:
    global _fail_attach_count
    if _fail_attach_count > 0:
        _fail_attach_count -= 1
        raise OSError(
            errno.EACCES, "injected shm.attach failure (repro.faults)"
        )


def _maybe_injected_create_failure() -> None:
    plan = current_fault_plan()
    if plan is not None and plan.should("shm.create"):
        rec = current_recorder()
        if rec.enabled:
            rec.instant(
                "fault.shm.create",
                cat="fault.inject",
                ts_us=time.perf_counter() * 1e6,
                pid=PID_FAULTS,
            )
        raise OSError(
            errno.ENOSPC, "injected shm.create failure (repro.faults)"
        )


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach without registering with the resource tracker.

    CPython < 3.13 registers attachments with the resource tracker, which
    is shared with the parent under fork -- the worker's registration /
    unregistration then fights the owner's (bpo-38119).  Only the creating
    process should track the block.  On 3.13+ ``track=False`` says exactly
    that; earlier versions need ``resource_tracker.register`` swapped for
    a no-op during the attach, which must be lock-guarded: two threads
    attaching concurrently could otherwise each save the *other's* no-op
    as "the original" and leave registration permanently disabled.
    """
    if _HAS_TRACK_PARAM:
        return shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        real_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = real_register


class SharedArray:
    """A NumPy array backed by a named shared-memory block."""

    def __init__(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.int64,
        name: str | None = None,
        create: bool = True,
    ):
        global _create_count, _attach_count
        self.shape = (shape,) if isinstance(shape, int) else tuple(shape)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        self._cached = False
        if create:
            _maybe_injected_create_failure()
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
            self._owner = True
            _create_count += 1
        else:
            if name is None:
                raise ValueError("attaching requires a block name")
            _consume_injected_attach_failure()
            cached = _attach_cache.get(name) if _attach_cache_enabled else None
            if cached is not None:
                self._shm = cached
                self._cached = True
            else:
                self._shm = _attach_untracked(name)
                _attach_count += 1
                if _attach_cache_enabled:
                    _attach_cache[name] = self._shm
                    self._cached = True
            self._owner = False
        self.array: np.ndarray = np.ndarray(
            self.shape, dtype=self.dtype, buffer=self._shm.buf
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def attach(
        cls, name: str, shape: tuple[int, ...] | int, dtype: np.dtype | type
    ) -> "SharedArray":
        """Attach to an existing block from a worker process."""
        return cls(shape, dtype, name=name, create=False)

    @classmethod
    def from_array(cls, source: np.ndarray) -> "SharedArray":
        """Create a shared copy of ``source``."""
        sa = cls(source.shape, source.dtype)
        sa.array[...] = source
        return sa

    def close(self) -> None:
        """Detach; the owner also unlinks the block.

        A cache-backed attachment (see :func:`enable_attach_cache`) only
        drops its ndarray view: the underlying mapping stays open for the
        next attach to the same name, released by :func:`detach_cached`
        or process exit.
        """
        # Drop the ndarray view first: SharedMemory.close() refuses while
        # exported buffers exist.
        self.array = None  # type: ignore[assignment]
        if self._cached and not self._owner:
            return
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked
                pass
            self._owner = False

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedArray {self.name} {self.shape} {self.dtype}>"


# ----------------------------------------------------------------------
# Resilient allocation
# ----------------------------------------------------------------------
def _alloc_with_retry(factory, retries: int, backoff_s: float) -> SharedArray:
    failures = 0
    for attempt in range(retries + 1):
        try:
            sa = factory()
        except OSError:
            failures += 1
            if attempt == retries:
                raise
            time.sleep(backoff_s * (2.0**attempt))
            continue
        if failures:
            plan = current_fault_plan()
            if plan is not None:
                plan.note_recovered("shm.create", failures)
            rec = current_recorder()
            if rec.enabled:
                rec.instant(
                    "fault.shm.create.recovered",
                    cat="fault.recovery",
                    ts_us=time.perf_counter() * 1e6,
                    pid=PID_FAULTS,
                    args={"retries": failures},
                )
        return sa
    raise AssertionError("unreachable")  # pragma: no cover


def allocate(
    shape: tuple[int, ...] | int,
    dtype: np.dtype | type = np.int64,
    *,
    name: str | None = None,
    retries: int = 2,
    backoff_s: float = 0.005,
) -> SharedArray:
    """Create a :class:`SharedArray`, retrying transient OS failures
    (full ``/dev/shm``, injected ``shm.create`` faults) with backoff.
    ``name`` pins the block name (the serve arena uses a recognizable
    ``repro_slab_*`` prefix so leaks are attributable)."""
    return _alloc_with_retry(
        lambda: SharedArray(shape, dtype, name=name), retries, backoff_s
    )


def allocate_from(
    source: np.ndarray, *, retries: int = 2, backoff_s: float = 0.005
) -> SharedArray:
    """Create a shared copy of ``source`` with the same retry policy."""
    return _alloc_with_retry(
        lambda: SharedArray.from_array(source), retries, backoff_s
    )


# ----------------------------------------------------------------------
# Per-sort buffer provider
# ----------------------------------------------------------------------
class SortBuffers:
    """Provides the named shared buffers one sort needs, releases them all.

    The native sorts ask this seam for their buffers instead of calling
    :func:`allocate` directly, so the execution substrate decides the
    lifecycle: this default implementation creates fresh blocks and
    unlinks them in ``release_all`` (the pre-existing behavior), while
    :class:`repro.serve.arena.ArenaBuffers` hands out views into
    preallocated slabs and merely returns the leases -- zero creates on
    the server's steady-state path.

    Whatever ``empty``/``from_array`` return exposes ``.name`` (a block
    name workers can attach) and ``.array`` (the parent's ndarray view).
    """

    def __init__(self) -> None:
        self._held: list[SharedArray] = []

    def empty(
        self, shape: tuple[int, ...] | int, dtype: np.dtype | type = np.int64
    ) -> SharedArray:
        sa = allocate(shape, dtype)
        self._held.append(sa)
        return sa

    def from_array(self, source: np.ndarray) -> SharedArray:
        sa = allocate_from(source)
        self._held.append(sa)
        return sa

    def release_all(self) -> None:
        """Release every buffer handed out; idempotent, exception-safe."""
        held, self._held = self._held, []
        first_err: BaseException | None = None
        for sa in reversed(held):
            try:
                sa.close()
            except BaseException as err:  # noqa: BLE001 - release them all
                first_err = first_err or err
        if first_err is not None:
            raise first_err
