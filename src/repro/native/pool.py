"""Worker pool for the native parallel sorts.

A thin wrapper over :class:`multiprocessing.pool.Pool` using the ``fork``
start method (workers inherit nothing they shouldn't -- all data travels
through named shared memory).  Each bulk-synchronous phase of a sort is
one ``map`` call; the map barrier plays the role of the paper's
inter-phase barriers.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, Iterable


def default_workers() -> int:
    return max(1, min(8, os.cpu_count() or 1))


class WorkerPool:
    """A persistent fork-based process pool with phase-style ``run_phase``."""

    def __init__(self, n_workers: int | None = None):
        self.n_workers = n_workers if n_workers is not None else default_workers()
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        ctx = mp.get_context("fork")
        self._pool = ctx.Pool(self.n_workers) if self.n_workers > 1 else None
        self._closed = False

    # ------------------------------------------------------------------
    def run_phase(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> list[Any]:
        """Run one bulk-synchronous phase: ``fn`` over all tasks, barrier."""
        if self._closed:
            raise RuntimeError("pool is closed")
        tasks = list(tasks)
        if self._pool is None:
            return [fn(t) for t in tasks]
        return self._pool.map(fn, tasks)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._closed and self._pool is not None:
            self._pool.close()
            self._pool.join()
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
