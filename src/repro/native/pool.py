"""Worker pool for the native parallel sorts.

A thin wrapper over :class:`multiprocessing.pool.Pool` preferring the
``fork`` start method (workers inherit nothing they shouldn't -- all data
travels through named shared memory), falling back to ``spawn`` on
platforms without ``fork``.  Each bulk-synchronous phase of a sort is one
``map`` call; the map barrier plays the role of the paper's inter-phase
barriers.

When a structured-trace recorder is installed (see :mod:`repro.trace`) or
the pool is constructed with ``collect_timings=True``, every phase is
timed: the parent records the phase's begin/end wall-clock span and each
worker stamps its task with ``time.perf_counter()`` start/end times
(CLOCK_MONOTONIC is system-wide on Linux, so parent and worker clocks are
directly comparable).  These timings are what the native backend maps
onto the paper's BUSY/SYNC accounting.  Task spans are attributed to the
*worker slot* that executed them (trace tracks ``1..n_workers``), not to
the task index -- a phase of 100 tasks on 4 workers still renders as 4
worker tracks.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable

from ..trace import PID_NATIVE, current_recorder

#: Trace track of the parent process coordinating the pool (workers use
#: tracks ``1..n_workers``, one per worker slot).
POOL_TID = 0


def default_workers() -> int:
    """Default worker count: all CPUs, overridable via ``REPRO_WORKERS``.

    ``REPRO_WORKERS`` must parse as an integer >= 1; anything else raises
    ``ValueError`` rather than silently running with a surprise width.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None and env.strip():
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {value}")
        return value
    return max(1, os.cpu_count() or 1)


def default_start_method() -> str:
    """``fork`` where available (cheap, shares the imported modules),
    else ``spawn`` (macOS/Windows-style platforms)."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class PhaseTiming:
    """Wall-clock record of one bulk-synchronous pool phase.

    ``begin``/``end`` bracket the whole phase in the parent;
    ``tasks[i]`` is task ``i``'s in-worker (start, end) span and
    ``slots[i]`` the 1-based worker slot that executed it.  All times are
    ``time.perf_counter()`` seconds.
    """

    name: str
    begin: float
    end: float
    tasks: tuple[tuple[float, float], ...]
    slots: tuple[int, ...] = field(default=())

    @property
    def elapsed_s(self) -> float:
        return self.end - self.begin


def _timed_call(
    fn: Callable[[Any], Any], task: Any
) -> tuple[Any, float, float, int]:
    t0 = time.perf_counter()
    result = fn(task)
    return result, t0, time.perf_counter(), os.getpid()


class WorkerPool:
    """A persistent process pool with phase-style ``run_phase``."""

    def __init__(self, n_workers: int | None = None, collect_timings: bool = False):
        self.n_workers = n_workers if n_workers is not None else default_workers()
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        self.start_method = default_start_method()
        ctx = mp.get_context(self.start_method)
        self._pool = ctx.Pool(self.n_workers) if self.n_workers > 1 else None
        self._closed = False
        self.collect_timings = collect_timings
        self.timings: list[PhaseTiming] = []
        self._phase_seq = 0
        #: Worker OS pid -> 1-based slot, in order of first appearance.
        self._slot_by_pid: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _slot_of(self, pid: int) -> int:
        """Stable 1-based worker-slot index for ``pid``, capped at
        ``n_workers`` (a respawned worker reuses the last track rather
        than growing the documented ``1..n_workers`` range)."""
        slot = self._slot_by_pid.get(pid)
        if slot is None:
            slot = min(len(self._slot_by_pid) + 1, self.n_workers)
            self._slot_by_pid[pid] = slot
        return slot

    def run_phase(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], name: str | None = None
    ) -> list[Any]:
        """Run one bulk-synchronous phase: ``fn`` over all tasks, barrier."""
        if self._closed:
            raise RuntimeError("pool is closed")
        tasks = list(tasks)
        rec = current_recorder()
        self._phase_seq += 1
        if not (self.collect_timings or rec.enabled):
            if self._pool is None:
                return [fn(t) for t in tasks]
            return self._pool.map(fn, tasks)

        label = name or f"phase{self._phase_seq}"
        call = partial(_timed_call, fn)
        begin = time.perf_counter()
        if self._pool is None:
            raw = [call(t) for t in tasks]
        else:
            raw = self._pool.map(call, tasks)
        end = time.perf_counter()

        slots = tuple(self._slot_of(pid) for _, _t0, _t1, pid in raw)
        timing = PhaseTiming(
            label, begin, end,
            tuple((t0, t1) for _, t0, t1, _pid in raw),
            slots,
        )
        if self.collect_timings:
            self.timings.append(timing)
        if rec.enabled:
            rec.complete(
                label,
                cat="native.phase",
                ts_us=begin * 1e6,
                dur_us=(end - begin) * 1e6,
                pid=PID_NATIVE,
                tid=POOL_TID,
                args={"tasks": len(tasks)},
            )
            for slot, (t0, t1) in zip(slots, timing.tasks):
                rec.complete(
                    label,
                    cat="native.task",
                    ts_us=t0 * 1e6,
                    dur_us=(t1 - t0) * 1e6,
                    pid=PID_NATIVE,
                    tid=slot,
                )
        return [r for r, _t0, _t1, _pid in raw]

    # ------------------------------------------------------------------
    def close(self, force: bool = False) -> None:
        """Shut the pool down and reap its workers.

        ``force=True`` terminates workers instead of waiting for them to
        drain -- used on the exception path so a failed phase cannot leak
        forked processes holding shared-memory references.
        """
        if not self._closed and self._pool is not None:
            if force:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
        self._closed = True

    def terminate(self) -> None:
        """Kill workers immediately (``close(force=True)``)."""
        self.close(force=True)

    def __enter__(self) -> "WorkerPool":
        if self._closed:
            raise RuntimeError("pool is closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(force=exc_type is not None)
