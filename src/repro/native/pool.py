"""Worker pool for the native parallel sorts.

A thin wrapper over :class:`multiprocessing.pool.Pool` preferring the
``fork`` start method (workers inherit nothing they shouldn't -- all data
travels through named shared memory), falling back to ``spawn`` on
platforms without ``fork``.  Each bulk-synchronous phase of a sort is one
``map`` call; the map barrier plays the role of the paper's inter-phase
barriers.

When a structured-trace recorder is installed (see :mod:`repro.trace`) or
the pool is constructed with ``collect_timings=True``, every phase is
timed: the parent records the phase's begin/end wall-clock span and each
worker stamps its task with ``time.perf_counter()`` start/end times
(CLOCK_MONOTONIC is system-wide on Linux, so parent and worker clocks are
directly comparable).  These timings are what the native backend maps
onto the paper's BUSY/SYNC accounting.  Task spans are attributed to the
*worker slot* that executed them (trace tracks ``1..n_workers``), not to
the task index -- a phase of 100 tasks on 4 workers still renders as 4
worker tracks.

Supervised phases
-----------------
The paper's sorts are bulk-synchronous: one dead or hung worker stalls
every barrier forever (the very SYNC term its breakdowns measure).
``WorkerPool(..., supervise=True)`` therefore runs each phase under a
supervisor: the map is dispatched asynchronously, the parent polls for
completion while watching the worker processes, and a dead worker, a
phase timeout or a task exception triggers bounded retry with backoff --
terminating and rebuilding the pool (dead-worker replacement), and, after
repeated failures, rebuilding it *narrower* (graceful degradation to
fewer workers, down to ``min_workers``).  Retried phases are safe because
every task in :mod:`repro.native.radix` / :mod:`repro.native.sample`
writes its full output slice from an unmodified input buffer
(double-buffered phases), so re-running it is idempotent.

Fault injection (:mod:`repro.faults`) plugs in here: when a fault plan is
ambiently installed, the parent draws per-task directives (crash, hang,
slowdown, attach failure) from the plan -- decisions stay in the parent
so the schedule is deterministic -- and ships them with the task; the
worker-side wrapper executes them.  On the final retry attempt no new
faults are drawn, so a supervised phase under an (appropriately capped)
plan always converges.  Every failure and recovery is logged in
``fault_log``, emitted on the ``PID_FAULTS`` trace track, and counted
back into the plan's recovery counters.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable

from ..faults.context import current_fault_plan
from ..faults.plan import pool_directives
from ..trace import PID_FAULTS, PID_NATIVE, current_recorder
from . import shm

#: Trace track of the parent process coordinating the pool (workers use
#: tracks ``1..n_workers``, one per worker slot).
POOL_TID = 0

#: Supervisor poll interval while waiting on an async phase (seconds).
_POLL_S = 0.02


def _worker_init(user_init: Callable[..., None] | None, user_args: tuple) -> None:
    """Every-worker initializer: warm the active sort kernel (resolving
    the ``REPRO_NATIVE_KERNEL`` choice once, and JIT-compiling the numba
    kernels off the hot path if selected), then run the caller's own
    initializer, if any."""
    from . import kernels

    kernels.warm()
    if user_init is not None:
        user_init(*user_args)


class PhaseError(RuntimeError):
    """A supervised phase failed every retry attempt."""

    def __init__(self, phase: str, attempts: int, cause: BaseException | None):
        detail = f": {type(cause).__name__}: {cause}" if cause is not None else ""
        super().__init__(
            f"phase {phase!r} failed after {attempts} attempt(s){detail}"
        )
        self.phase = phase
        self.attempts = attempts
        self.cause = cause


class _WorkerDied(RuntimeError):
    """A pool worker process exited mid-phase (crash / SIGKILL)."""


class _PhaseTimeout(RuntimeError):
    """A phase overran its supervised deadline (hang / livelock)."""


def default_workers() -> int:
    """Default worker count: all CPUs, overridable via ``REPRO_WORKERS``.

    ``REPRO_WORKERS`` must parse as an integer >= 1; anything else raises
    ``ValueError`` rather than silently running with a surprise width.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None and env.strip():
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {value}")
        return value
    return max(1, os.cpu_count() or 1)


def default_start_method() -> str:
    """``fork`` where available (cheap, shares the imported modules),
    else ``spawn`` (macOS/Windows-style platforms)."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class PhaseTiming:
    """Wall-clock record of one bulk-synchronous pool phase.

    ``begin``/``end`` bracket the whole phase in the parent (including
    any failed supervised attempts, whose cost thus shows up as SYNC);
    ``tasks[i]`` is task ``i``'s in-worker (start, end) span from the
    successful attempt and ``slots[i]`` the 1-based worker slot that
    executed it.  All times are ``time.perf_counter()`` seconds.
    """

    name: str
    begin: float
    end: float
    tasks: tuple[tuple[float, float], ...]
    slots: tuple[int, ...] = field(default=())
    #: Fresh shared-memory attaches task ``i`` performed in its worker
    #: (zero on the serve arena's steady-state path, where every worker
    #: resolves every slab from its attach cache).
    attaches: tuple[int, ...] = field(default=())

    @property
    def elapsed_s(self) -> float:
        return self.end - self.begin


def _apply_directive(directive: tuple[str, float | None] | None) -> None:
    """Execute a fault directive inside the worker, at task start."""
    if directive is None:
        return
    kind, param = directive
    if kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(float(param or 60.0))
    elif kind == "slow":
        time.sleep(float(param or 0.05))
    elif kind == "attach-fail":
        from . import shm

        shm.fail_next_attach()


def _timed_call(
    fn: Callable[[Any], Any], task: Any
) -> tuple[Any, float, float, int, int]:
    a0 = shm.attach_count()
    t0 = time.perf_counter()
    result = fn(task)
    t1 = time.perf_counter()
    return result, t0, t1, os.getpid(), shm.attach_count() - a0


def _directed_call(
    fn: Callable[[Any], Any],
    payload: tuple[Any, tuple[str, float | None] | None],
) -> tuple[Any, float, float, int, int]:
    task, directive = payload
    _apply_directive(directive)
    return _timed_call(fn, task)


class WorkerPool:
    """A persistent process pool with phase-style ``run_phase``.

    ``supervise=True`` arms per-phase supervision: ``phase_timeout_s``
    bounds each attempt (``None`` = wait forever, though dead workers are
    still detected promptly), ``max_phase_retries`` bounds re-execution,
    and after ``shrink_after`` failures within one phase the pool is
    rebuilt with half the workers (never below ``min_workers``).
    """

    def __init__(
        self,
        n_workers: int | None = None,
        collect_timings: bool = False,
        *,
        supervise: bool = False,
        phase_timeout_s: float | None = None,
        max_phase_retries: int = 2,
        min_workers: int = 1,
        shrink_after: int = 2,
        retry_backoff_s: float = 0.05,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ):
        self.n_workers = n_workers if n_workers is not None else default_workers()
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_phase_retries < 0:
            raise ValueError("max_phase_retries must be >= 0")
        self.start_method = default_start_method()
        #: Run in every worker at start (and again after every supervised
        #: rebuild) -- the job server installs the shm attach cache here.
        self._initializer = initializer
        self._initargs = tuple(initargs)
        ctx = mp.get_context(self.start_method)
        self._pool = (
            ctx.Pool(
                self.n_workers,
                _worker_init,
                (self._initializer, self._initargs),
            )
            if self.n_workers > 1
            else None
        )
        if self.n_workers == 1:
            _worker_init(self._initializer, self._initargs)  # inline "pool"
        self._closed = False
        self.collect_timings = collect_timings
        self.supervise = supervise
        self.phase_timeout_s = phase_timeout_s
        self.max_phase_retries = max_phase_retries
        self.min_workers = min_workers
        self.shrink_after = shrink_after
        self.retry_backoff_s = retry_backoff_s
        self.timings: list[PhaseTiming] = []
        #: One record per supervised failure: phase, attempt, reason, the
        #: action taken and the worker count after it.
        self.fault_log: list[dict[str, Any]] = []
        #: Total failed phase attempts absorbed over the pool's lifetime.
        self.phase_failures = 0
        self._phase_seq = 0
        #: Worker OS pid -> 1-based slot, in order of first appearance.
        self._slot_by_pid: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _slot_of(self, pid: int) -> int:
        """Stable 1-based worker-slot index for ``pid``, capped at
        ``n_workers`` (a respawned worker reuses the last track rather
        than growing the documented ``1..n_workers`` range)."""
        slot = self._slot_by_pid.get(pid)
        if slot is None:
            slot = min(len(self._slot_by_pid) + 1, self.n_workers)
            self._slot_by_pid[pid] = slot
        return slot

    # ------------------------------------------------------------------
    # Supervision internals
    # ------------------------------------------------------------------
    def _rebuild(self, shrink: bool) -> None:
        """Replace the worker processes (dead-worker replacement), at a
        reduced width when ``shrink`` (graceful degradation)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
        if shrink and self.n_workers > self.min_workers:
            self.n_workers = max(self.min_workers, self.n_workers // 2)
        ctx = mp.get_context(self.start_method)
        self._pool = (
            ctx.Pool(
                self.n_workers,
                _worker_init,
                (self._initializer, self._initargs),
            )
            if self.n_workers > 1
            else None
        )
        self._slot_by_pid.clear()

    def _attempt(
        self,
        call: Callable[[Any], tuple[Any, float, float, int, int]],
        payloads: list[Any],
        deadline_s: float | None,
    ) -> list[tuple[Any, float, float, int, int]]:
        """Run one phase attempt; raises on worker death, timeout, or any
        task exception."""
        if self._pool is None:
            return [call(p) for p in payloads]
        procs = list(self._pool._pool)
        result = self._pool.map_async(call, payloads)
        deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        while not result.ready():
            result.wait(_POLL_S)
            if result.ready():
                break
            if any(p.exitcode is not None for p in procs):
                raise _WorkerDied(
                    "worker process exited mid-phase (task lost)"
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise _PhaseTimeout(
                    f"phase exceeded its {deadline_s:g}s supervised timeout"
                )
        return result.get()

    def _note_failure(
        self, label: str, attempt: int, exc: BaseException, shrink: bool
    ) -> None:
        self.phase_failures += 1
        action = "shrink" if shrink else "retry"
        record = {
            "phase": label,
            "attempt": attempt,
            "reason": f"{type(exc).__name__}: {exc}",
            "action": action,
            "workers": self.n_workers,
        }
        self.fault_log.append(record)
        rec = current_recorder()
        if rec.enabled:
            rec.instant(
                f"fault.pool.{action}",
                cat="fault.pool",
                ts_us=time.perf_counter() * 1e6,
                pid=PID_FAULTS,
                args=record,
            )

    # ------------------------------------------------------------------
    def run_phase(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any], name: str | None = None
    ) -> list[Any]:
        """Run one bulk-synchronous phase: ``fn`` over all tasks, barrier.

        Under supervision (or an ambient fault plan) the phase is retried
        on worker death, timeout or task exception; an unsupervised pool
        propagates the first failure unchanged."""
        if self._closed:
            raise RuntimeError("pool is closed")
        tasks = list(tasks)
        rec = current_recorder()
        plan = current_fault_plan()
        self._phase_seq += 1
        timed = self.collect_timings or rec.enabled
        if not self.supervise and plan is None:
            # The pre-existing fast paths, untouched by supervision.
            if not timed:
                if self._pool is None:
                    return [fn(t) for t in tasks]
                return self._pool.map(fn, tasks)
            return self._run_timed_unsupervised(fn, tasks, name, rec)
        return self._run_supervised(fn, tasks, name, rec, plan, timed)

    def _run_timed_unsupervised(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        name: str | None,
        rec,
    ) -> list[Any]:
        label = name or f"phase{self._phase_seq}"
        call = partial(_timed_call, fn)
        begin = time.perf_counter()
        if self._pool is None:
            raw = [call(t) for t in tasks]
        else:
            raw = self._pool.map(call, tasks)
        end = time.perf_counter()
        self._record_phase(label, begin, end, raw, rec, len(tasks))
        return [r for r, _t0, _t1, _pid, _att in raw]

    def _run_supervised(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        name: str | None,
        rec,
        plan,
        timed: bool,
    ) -> list[Any]:
        label = name or f"phase{self._phase_seq}"
        retries = self.max_phase_retries if self.supervise else 0
        timeout = self.phase_timeout_s if self.supervise else None
        issued_sites: list[str] = []
        failures_this_phase = 0
        last_exc: BaseException | None = None
        begin = time.perf_counter()
        for attempt in range(retries + 1):
            # Draw fresh fault directives per attempt -- but never on the
            # final supervised attempt, so a capped plan cannot starve the
            # phase of its last chance to complete.
            allow = retries == 0 or attempt < retries
            directives, issued = pool_directives(
                plan if allow else None,
                len(tasks),
                allow_process_faults=self.supervise and self._pool is not None,
                allow_task_faults=True,
            )
            issued_sites.extend(issued)
            call = partial(_directed_call, fn)
            payloads = list(zip(tasks, directives))
            try:
                raw = self._attempt(call, payloads, timeout)
            except BaseException as exc:  # noqa: BLE001 - supervised retry
                last_exc = exc
                if attempt >= retries:
                    if not self.supervise:
                        raise
                    raise PhaseError(label, attempt + 1, exc) from exc
                failures_this_phase += 1
                shrink = failures_this_phase >= self.shrink_after
                self._note_failure(label, attempt, exc, shrink)
                self._rebuild(shrink=shrink)
                time.sleep(self.retry_backoff_s * (2.0**attempt))
                continue
            end = time.perf_counter()
            if failures_this_phase and rec.enabled:
                rec.complete(
                    f"fault.pool.recovered:{label}",
                    cat="fault.recovery",
                    ts_us=begin * 1e6,
                    dur_us=(end - begin) * 1e6,
                    pid=PID_FAULTS,
                    args={
                        "attempts": attempt + 1,
                        "failures": failures_this_phase,
                        "workers": self.n_workers,
                    },
                )
            if plan is not None:
                for site in issued_sites:
                    plan.note_recovered(site)
            if timed:
                self._record_phase(label, begin, end, raw, rec, len(tasks))
            return [r for r, _t0, _t1, _pid, _att in raw]
        raise PhaseError(label, retries + 1, last_exc)  # pragma: no cover

    def _record_phase(
        self,
        label: str,
        begin: float,
        end: float,
        raw: list[tuple[Any, float, float, int, int]],
        rec,
        n_tasks: int,
    ) -> None:
        slots = tuple(self._slot_of(pid) for _, _t0, _t1, pid, _att in raw)
        attaches = tuple(att for _, _t0, _t1, _pid, att in raw)
        timing = PhaseTiming(
            label, begin, end,
            tuple((t0, t1) for _, t0, t1, _pid, _att in raw),
            slots,
            attaches,
        )
        if self.collect_timings:
            self.timings.append(timing)
        if rec.enabled:
            rec.complete(
                label,
                cat="native.phase",
                ts_us=begin * 1e6,
                dur_us=(end - begin) * 1e6,
                pid=PID_NATIVE,
                tid=POOL_TID,
                args={"tasks": n_tasks, "attaches": sum(attaches)},
            )
            for slot, (t0, t1) in zip(slots, timing.tasks):
                rec.complete(
                    label,
                    cat="native.task",
                    ts_us=t0 * 1e6,
                    dur_us=(t1 - t0) * 1e6,
                    pid=PID_NATIVE,
                    tid=slot,
                )

    # ------------------------------------------------------------------
    def close(self, force: bool = False) -> None:
        """Shut the pool down and reap its workers.

        ``force=True`` terminates workers instead of waiting for them to
        drain -- used on the exception path so a failed phase cannot leak
        forked processes holding shared-memory references.
        """
        if not self._closed and self._pool is not None:
            if force:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
        self._closed = True

    def terminate(self) -> None:
        """Kill workers immediately (``close(force=True)``)."""
        self.close(force=True)

    def __enter__(self) -> "WorkerPool":
        if self._closed:
            raise RuntimeError("pool is closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(force=exc_type is not None)
