"""Cache-conscious compute kernels for the native hot path.

The paper's core claim is that sorting speed on CC-SAS machines is won
or lost on memory traffic per pass.  The native sorts therefore route
every per-element loop -- validation min/max, per-pass digit histograms,
and the stable counting-sort placement -- through one of three
interchangeable kernel implementations:

``numpy`` (the engineered default)
    Blocked pure-NumPy kernels in the IPS4o style: each worker walks its
    slice in L2-resident blocks (:data:`BLOCK_ELEMS` elements), groups a
    block's keys by digit with NumPy's C counting sort, and stores each
    digit's keys as one contiguous run at the bucket cursor -- contiguous
    per-bucket block writes instead of the seed's per-element scattered
    stores, and a bincount/cumsum placement instead of its
    argsort-plus-rank reconstruction (which cost ~six extra full passes
    per permute).  Validation fuses min and max into a single pass over
    memory.

``numba`` (opt-in via ``REPRO_NATIVE_KERNEL=numba``)
    The same operations as single fused JIT loops: the textbook
    counting-sort placement (one read, one write per element, zero sorts
    and zero temporaries).  Requires the optional :mod:`numba` package;
    when it is missing the resolver warns once and falls back to the
    pure-NumPy kernel, so the flag is always safe to set.

``naive`` (the seed-equivalent baseline)
    A faithful re-expression of the pre-kernel implementation -- the
    defensive ``chunk.copy()``, the stable ``argsort``, the rank
    reconstruction, the element-scattered store, and the separate
    ``min()``/``max()`` validation scans.  Kept so benchmarks
    (``benchmarks/BENCH_3.json``, ``compare.py --native``) and parity
    tests can hold the engineered kernels against the exact seed
    behavior.

Selection: :func:`resolve` with an explicit name wins; otherwise the
``REPRO_NATIVE_KERNEL`` environment variable (``numpy`` | ``numba`` |
``naive`` | ``auto``); otherwise ``numpy``.  ``auto`` picks ``numba``
when importable.  Pool tasks ship the *parent's* resolved kernel name so
every worker runs the same implementation regardless of when it forked.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Environment variable selecting the kernel implementation.
KERNEL_ENV = "REPRO_NATIVE_KERNEL"

#: Kernel names accepted by :func:`resolve` (besides ``auto``).
KERNEL_NAMES = ("numpy", "numba", "naive")

#: Elements per cache block for the blocked NumPy kernels: 32Ki int64
#: keys = 256 KiB, sized to keep a block plus its digit/permutation
#: temporaries resident in a per-core L2 while streaming the slice once.
BLOCK_ELEMS = 1 << 15


def slice_bounds(n: int, p: int, w: int) -> tuple[int, int]:
    """Worker ``w``'s contiguous slice of ``n`` keys across ``p`` workers
    (the last worker absorbs the remainder)."""
    per = n // p
    lo = w * per
    hi = n if w == p - 1 else lo + per
    return lo, hi


@dataclass(frozen=True)
class Kernel:
    """One interchangeable implementation of the hot-path primitives.

    ``minmax(a)``
        ``(min, max)`` of a non-empty 1-D integer array as Python ints,
        in a single pass over memory.
    ``histogram(a, shift, mask)``
        int64 counts of ``(a >> shift) & mask`` over ``mask + 1`` bins.
    ``scatter(src, dst, cursor, shift, mask)``
        Stable counting-sort placement: write ``src``'s keys into the
        global ``dst`` at per-digit positions starting from ``cursor``
        (an int64 array of ``mask + 1`` running bucket cursors, advanced
        in place), preserving the original order of equal digits.
    """

    name: str
    minmax: Callable[[np.ndarray], tuple[int, int]]
    histogram: Callable[[np.ndarray, int, int], np.ndarray]
    scatter: Callable[[np.ndarray, np.ndarray, np.ndarray, int, int], None]


# ----------------------------------------------------------------------
# Engineered pure-NumPy kernels (blocked)
# ----------------------------------------------------------------------
def _np_minmax(a: np.ndarray) -> tuple[int, int]:
    """Fused validation scan: one pass over memory for both extrema.

    Each block is reduced twice while L2-resident, so the array itself is
    streamed from memory exactly once (the seed's separate ``a.min()``
    and ``a.max()`` streamed it twice).
    """
    lo = a[0]
    hi = a[0]
    for s in range(0, len(a), BLOCK_ELEMS):
        blk = a[s : s + BLOCK_ELEMS]
        blo = blk.min()
        bhi = blk.max()
        if blo < lo:
            lo = blo
        if bhi > hi:
            hi = bhi
    return int(lo), int(hi)


def _np_histogram(a: np.ndarray, shift: int, mask: int) -> np.ndarray:
    nb = mask + 1
    out = np.zeros(nb, dtype=np.int64)
    for s in range(0, len(a), BLOCK_ELEMS):
        d = (a[s : s + BLOCK_ELEMS] >> shift) & mask
        out += np.bincount(d, minlength=nb)
    return out


def _np_scatter(
    src: np.ndarray,
    dst: np.ndarray,
    cursor: np.ndarray,
    shift: int,
    mask: int,
) -> None:
    """Blocked stable placement with contiguous per-bucket run stores.

    Per L2-resident block: extract digits, group the block's keys by
    digit (NumPy's stable sort on small unsigned ints is its C counting
    sort), then store every digit's keys as one contiguous run at that
    bucket's cursor.  The only non-sequential access is one store per
    *run* rather than per *element*, which is the IPS4o blocked-bucket
    discipline this pass borrows.
    """
    nb = mask + 1
    arange = np.arange(min(BLOCK_ELEMS, len(src)), dtype=np.int64)
    for s in range(0, len(src), BLOCK_ELEMS):
        blk = src[s : s + BLOCK_ELEMS]
        d = (blk >> shift) & mask
        counts = np.bincount(d, minlength=nb)
        # Group by digit.  Digits fit in uint16 for every radix <= 16,
        # where NumPy's stable argsort is an O(block) counting sort.
        key = d.astype(np.uint16) if nb <= (1 << 16) else d
        grouped = blk[np.argsort(key, kind="stable")]
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        # Element k of the grouped block (digit d, in-block rank
        # k - starts[d]) lands at cursor[d] + (k - starts[d]): one
        # piecewise-linear index vector, runs stored contiguously.
        base = np.repeat(cursor - starts, counts)
        dst[base + arange[: len(blk)]] = grouped
        cursor += counts


NUMPY_KERNEL = Kernel("numpy", _np_minmax, _np_histogram, _np_scatter)


# ----------------------------------------------------------------------
# Seed-equivalent baseline kernels
# ----------------------------------------------------------------------
def _stable_ranks(digits: np.ndarray) -> np.ndarray:
    """Rank of each key among equal digits, in original order (the
    within-slice component of the seed's stable placement)."""
    m = len(digits)
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(digits, kind="stable")
    sorted_digits = digits[order]
    run_start = np.zeros(m, dtype=np.int64)
    change = np.flatnonzero(np.diff(sorted_digits)) + 1
    run_start[change] = change
    run_start = np.maximum.accumulate(run_start)
    ranks = np.empty(m, dtype=np.int64)
    ranks[order] = np.arange(m, dtype=np.int64) - run_start
    return ranks


def _naive_minmax(a: np.ndarray) -> tuple[int, int]:
    # Two full passes over memory, exactly as the seed validated.
    return int(a.min()), int(a.max())


def _naive_histogram(a: np.ndarray, shift: int, mask: int) -> np.ndarray:
    digits = (a >> shift) & mask
    return np.bincount(digits, minlength=mask + 1).astype(np.int64)


def _naive_scatter(
    src: np.ndarray,
    dst: np.ndarray,
    cursor: np.ndarray,
    shift: int,
    mask: int,
) -> None:
    chunk = src.copy()  # the seed's defensive copy, kept for honest A/B
    digits = ((chunk >> shift) & mask).astype(np.int64)
    dst[cursor[digits] + _stable_ranks(digits)] = chunk
    cursor += np.bincount(digits, minlength=mask + 1)


NAIVE_KERNEL = Kernel("naive", _naive_minmax, _naive_histogram, _naive_scatter)


# ----------------------------------------------------------------------
# Optional numba kernels (JIT single-loop counting placement)
# ----------------------------------------------------------------------
_numba_cache: Kernel | None = None
_numba_failed = False
_warned_fallback = False


def numba_available() -> bool:
    """True iff the optional numba kernel can be built in this process."""
    return _build_numba() is not None


def _build_numba() -> Kernel | None:
    """Build (once) the JIT kernel; ``None`` when numba is unavailable."""
    global _numba_cache, _numba_failed
    if _numba_cache is not None:
        return _numba_cache
    if _numba_failed:
        return None
    try:
        import numba
    except ImportError:
        _numba_failed = True
        return None

    @numba.njit(cache=False)
    def nb_minmax(a):  # pragma: no cover - requires numba
        lo = a[0]
        hi = a[0]
        for i in range(a.size):
            v = a[i]
            if v < lo:
                lo = v
            if v > hi:
                hi = v
        return lo, hi

    @numba.njit(cache=False)
    def nb_histogram(a, shift, mask, out):  # pragma: no cover
        for i in range(a.size):
            out[(a[i] >> shift) & mask] += 1

    @numba.njit(cache=False)
    def nb_scatter(src, dst, cursor, shift, mask):  # pragma: no cover
        # The textbook stable counting placement: one read and one write
        # per element, no sort, no rank reconstruction, no temporaries.
        for i in range(src.size):
            d = (src[i] >> shift) & mask
            dst[cursor[d]] = src[i]
            cursor[d] += 1

    def minmax(a: np.ndarray) -> tuple[int, int]:  # pragma: no cover
        lo, hi = nb_minmax(a)
        return int(lo), int(hi)

    def histogram(a, shift, mask):  # pragma: no cover - requires numba
        out = np.zeros(mask + 1, dtype=np.int64)
        nb_histogram(a, np.int64(shift), np.int64(mask), out)
        return out

    def scatter(src, dst, cursor, shift, mask):  # pragma: no cover
        nb_scatter(src, dst, cursor, np.int64(shift), np.int64(mask))

    _numba_cache = Kernel("numba", minmax, histogram, scatter)
    return _numba_cache


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def resolve(name: str | None = None) -> Kernel:
    """Resolve a kernel implementation.

    ``name`` overrides everything (pool tasks pass the parent's resolved
    choice so workers stay consistent); ``None`` consults
    ``REPRO_NATIVE_KERNEL``; an unset/empty variable means ``numpy``.
    Requesting ``numba`` without the package installed warns once per
    process and falls back to the engineered NumPy kernel.
    """
    requested = (name or os.environ.get(KERNEL_ENV, "") or "numpy").strip().lower()
    if requested == "auto":
        built = _build_numba()
        return built if built is not None else NUMPY_KERNEL
    if requested == "numba":
        built = _build_numba()
        if built is not None:
            return built
        global _warned_fallback
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                f"{KERNEL_ENV}=numba requested but numba is not "
                "installed; falling back to the pure-NumPy kernel",
                RuntimeWarning,
                stacklevel=2,
            )
        return NUMPY_KERNEL
    if requested == "numpy":
        return NUMPY_KERNEL
    if requested == "naive":
        return NAIVE_KERNEL
    raise ValueError(
        f"unknown native kernel {requested!r}; choose from "
        f"{KERNEL_NAMES + ('auto',)}"
    )


def warm(kernel: Kernel | None = None) -> str:
    """Pre-exercise the active kernel; returns its name.

    Pool workers call this from their initializer so the numba kernel's
    JIT compilation (hundreds of milliseconds, per process and signature)
    happens once at worker start instead of inside the first timed
    phase.  A no-op-cheap call for the NumPy kernels.
    """
    kern = kernel if kernel is not None else resolve()
    probe = np.array([3, 1, 2, 1], dtype=np.int64)
    kern.minmax(probe)
    kern.histogram(probe, 0, 3)
    dst = np.empty(4, dtype=np.int64)
    cursor = np.concatenate(
        ([0], np.cumsum(np.bincount(probe & 3, minlength=4))[:-1])
    ).astype(np.int64)
    kern.scatter(probe, dst, cursor, 0, 3)
    return kern.name
