"""Machine-readable experiment output.

Serializes :class:`~repro.report.experiments.ExperimentResult` objects to
JSON so benchmark runs can be diffed across commits (``benchmarks/
BENCH_0.json`` holds the checked-in baseline).  NumPy scalars and arrays
are converted to plain Python numbers/lists; NaN/inf become null so the
output is strict JSON.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Iterable

import numpy as np

#: Bump when the serialized shape changes incompatibly.
SCHEMA_VERSION = 1


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy/containers into strict-JSON values."""
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.integer, int)) and not isinstance(value, bool):
        return int(value)
    if isinstance(value, (np.floating, float)):
        f = float(value)
        return f if math.isfinite(f) else None
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    if value is None or isinstance(value, str):
        return value
    return str(value)


def result_to_dict(result) -> dict:
    """One ExperimentResult as a JSON-ready dict (text omitted: the JSON
    file is for diffing numbers, not rendering)."""
    return {
        "exp_id": result.exp_id,
        "description": result.description,
        "data": to_jsonable(result.data),
        "paper_reference": to_jsonable(result.paper_reference),
    }


def results_to_document(results: Iterable, meta: dict | None = None) -> dict:
    doc = {
        "schema_version": SCHEMA_VERSION,
        "meta": to_jsonable(meta or {}),
        "results": [result_to_dict(r) for r in results],
    }
    return doc


def write_results_json(
    path: str | pathlib.Path, results: Iterable, meta: dict | None = None
) -> pathlib.Path:
    """Write experiment results as a stable, diff-friendly JSON file."""
    path = pathlib.Path(path)
    doc = results_to_document(results, meta)
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )
    return path
