"""One experiment harness per table/figure of the paper's evaluation.

Every function takes an :class:`~repro.core.experiment.ExperimentRunner`
(results are memoized across harnesses) plus optional grid restrictions,
and returns an :class:`ExperimentResult` whose ``data`` holds the numbers
and whose ``text`` renders them the way the paper presents them.  The
benchmark scripts print ``text``; the integration tests assert shapes on
``data``.

Each harness first enumerates every grid cell it will read and hands the
whole batch to :meth:`~repro.core.experiment.ExperimentRunner.run_many`,
so cells are served from the persistent disk cache and -- when the
runner was built with ``parallel=N`` (CLI ``--parallel``) -- cache
misses are computed concurrently in worker processes.  The rendering
loops below then hit the warm in-process memo.

Paper reference values (Tables 1 and 2) are included for side-by-side
comparison; figures are referenced by their qualitative claims (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.experiment import (
    PROC_COUNTS,
    SIZE_ORDER,
    SIZES,
    ExperimentRunner,
    RunSpec,
)
from ..data.distributions import PAPER_ORDER
from .figures import bar_chart, breakdown_panel, grouped_series, per_proc_strip
from .tables import format_table

#: Paper Table 1: sequential radix-sort time (microseconds), Gauss keys.
PAPER_TABLE1_US = {
    "1M": 1_610_142,
    "4M": 7_013_044,
    "16M": 33_668_308,
    "64M": 143_693_696,
    "256M": 947_575_676,
}

#: Paper Table 2: best execution time (microseconds) over models and radix
#: sizes, Gauss keys.
PAPER_TABLE2_US = {
    "radix": {
        "1M": {16: 63_249, 32: 55_068, 64: 33_546},
        "4M": {16: 229_182, 32: 133_296, 64: 134_407},
        "16M": {16: 1_008_322, 32: 483_560, 64: 306_429},
        "64M": {16: 6_547_243, 32: 2_557_912, 64: 1_147_412},
        "256M": {16: 29_650_916, 32: 15_054_134, 64: 7_191_246},
    },
    "sample": {
        "1M": {16: 74_301, 32: 42_998, 64: 29_470},
        "4M": {16: 343_466, 32: 148_800, 64: 98_720},
        "16M": {16: 1_490_045, 32: 634_267, 64: 380_864},
        "64M": {16: 13_699_476, 32: 3_902_624, 64: 1_503_827},
        "256M": {16: 54_852_935, 32: 23_838_522, 64: 11_891_683},
    },
}

#: Paper Table 3: winning (model, radix) per cell.
PAPER_TABLE3 = {
    "radix": {
        "1M": {16: ("ccsas", 8), 32: ("ccsas", 9), 64: ("ccsas", 8)},
        "4M": {16: ("shmem", 8), 32: ("shmem", 8), 64: ("shmem", 8)},
        "16M": {16: ("shmem", 11), 32: ("shmem", 11), 64: ("shmem", 8)},
        "64M": {16: ("shmem", 12), 32: ("shmem", 11), 64: ("shmem", 8)},
        "256M": {16: ("shmem", 14), 32: ("shmem", 13), 64: ("shmem", 12)},
    },
    "sample": {
        "1M": {16: ("ccsas", 11), 32: ("ccsas", 11), 64: ("ccsas", 11)},
        "4M": {16: ("ccsas", 11), 32: ("ccsas", 11), 64: ("ccsas", 11)},
        "16M": {16: ("ccsas", 11), 32: ("ccsas", 12), 64: ("shmem", 11)},
        "64M": {16: ("ccsas", 12), 32: ("ccsas", 12), 64: ("shmem", 11)},
        "256M": {16: ("ccsas", 14), 32: ("ccsas", 13), 64: ("shmem", 12)},
    },
}

RADIX_MODELS = ["ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem"]
SAMPLE_MODELS = ["ccsas", "mpi-new", "mpi-sgi", "shmem"]


@dataclass
class ExperimentResult:
    exp_id: str
    description: str
    data: dict
    text: str
    paper_reference: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def table1(
    runner: ExperimentRunner, sizes: list[str] | None = None
) -> ExperimentResult:
    """Sequential radix-sort times (paper Table 1)."""
    sizes = sizes or SIZE_ORDER
    rows = []
    data = {}
    for label in sizes:
        seq = runner.sequential(SIZES[label])
        us = seq.time_ns / 1e3
        data[label] = us
        paper = PAPER_TABLE1_US.get(label)
        rows.append(
            [label, f"{us:,.0f}", f"{paper:,}" if paper else "-",
             f"{us / paper:.2f}" if paper else "-"]
        )
    text = format_table(
        ["size", "model (us)", "paper (us)", "ratio"],
        rows,
        title="Table 1: sequential radix sort, Gauss keys",
    )
    return ExperimentResult("table1", "sequential baseline", data, text,
                            PAPER_TABLE1_US)


# ----------------------------------------------------------------------
# Speedup figures (1, 2, 3, 7)
# ----------------------------------------------------------------------
def _speedup_grid(
    runner: ExperimentRunner,
    algorithm: str,
    models: list[str],
    radix: int,
    sizes: list[str],
    procs: list[int],
) -> dict[str, dict[str, float]]:
    runner.run_many(
        [
            RunSpec(algorithm, m, SIZES[label], p, radix)
            for label in sizes
            for p in procs
            for m in models
        ]
    )
    grid: dict[str, dict[str, float]] = {}
    for label in sizes:
        for p in procs:
            key = f"{label}/{p}p"
            grid[key] = {}
            for m in models:
                spec = RunSpec(algorithm, m, SIZES[label], p, radix)
                grid[key][m] = runner.speedup(spec)
    return grid


def figure1(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    procs: list[int] | None = None,
) -> ExperimentResult:
    """Radix speedups under the two MPI implementations (paper Figure 1)."""
    grid = _speedup_grid(
        runner, "radix", ["mpi-sgi", "mpi-new"], 8,
        sizes or SIZE_ORDER, procs or PROC_COUNTS,
    )
    text = grouped_series(grid, "Figure 1: radix sort, MPI SGI vs NEW (speedup)")
    return ExperimentResult(
        "fig1", "radix MPI SGI vs NEW", grid, text,
        {"claim": "NEW outperforms SGI, increasingly so at higher p"},
    )


def figure2(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    procs: list[int] | None = None,
) -> ExperimentResult:
    """Sample-sort speedups under the two MPI implementations (Figure 2)."""
    grid = _speedup_grid(
        runner, "sample", ["mpi-sgi", "mpi-new"], 11,
        sizes or SIZE_ORDER, procs or PROC_COUNTS,
    )
    text = grouped_series(grid, "Figure 2: sample sort, MPI SGI vs NEW (speedup)")
    return ExperimentResult(
        "fig2", "sample MPI SGI vs NEW", grid, text,
        {"claim": "gap smaller than radix (fewer messages, more compute)"},
    )


def figure3(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    procs: list[int] | None = None,
) -> ExperimentResult:
    """Radix speedups: SHMEM / CC-SAS / MPI / CC-SAS-NEW (Figure 3)."""
    grid = _speedup_grid(
        runner, "radix", ["shmem", "ccsas", "mpi-new", "ccsas-new"], 8,
        sizes or SIZE_ORDER, procs or PROC_COUNTS,
    )
    text = grouped_series(grid, "Figure 3: radix sort speedups by model")
    return ExperimentResult(
        "fig3", "radix speedups by model", grid, text,
        {"claim": "SHMEM best except 1M at high p where CC-SAS wins; "
                  "original CC-SAS collapses at large sizes; superlinear >=16M"},
    )


def figure7(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    procs: list[int] | None = None,
) -> ExperimentResult:
    """Sample-sort speedups: SHMEM / CC-SAS / MPI (Figure 7)."""
    grid = _speedup_grid(
        runner, "sample", ["shmem", "ccsas", "mpi-new"], 11,
        sizes or SIZE_ORDER, procs or PROC_COUNTS,
    )
    text = grouped_series(grid, "Figure 7: sample sort speedups by model")
    return ExperimentResult(
        "fig7", "sample speedups by model", grid, text,
        {"claim": "CC-SAS best small; CC-SAS ~ SHMEM large; MPI behind"},
    )


# ----------------------------------------------------------------------
# Breakdown figures (4, 8)
# ----------------------------------------------------------------------
def figure4(
    runner: ExperimentRunner,
    size: str = "64M",
    n_procs: int = 64,
) -> ExperimentResult:
    """Per-processor time breakdown for radix sort (Figure 4)."""
    models = ["ccsas", "ccsas-new", "mpi-new", "shmem"]
    runner.run_many([RunSpec("radix", m, SIZES[size], n_procs, 8) for m in models])
    panels = {}
    text_parts = [f"Figure 4: radix sort ({size}) breakdown on {n_procs} processors"]
    for m in models:
        rep = runner.run(RunSpec("radix", m, SIZES[size], n_procs, 8)).report
        means = rep.category_means_ns()
        panels[m] = {
            "means_ns": means,
            "total_ns": rep.total_time_ns,
            "per_proc_total_ns": [c.total_ns for c in rep.counters],
        }
        text_parts.append(breakdown_panel(m, means, rep.total_time_ns))
        text_parts.append(
            per_proc_strip(panels[m]["per_proc_total_ns"], "  per-proc ")
        )
    return ExperimentResult(
        "fig4", "radix breakdown", panels, "\n".join(text_parts),
        {"claim": "CC-SAS dominated by MEM; MPI SYNC > SHMEM SYNC"},
    )


def figure8(
    runner: ExperimentRunner,
    size: str = "64M",
    n_procs: int = 64,
) -> ExperimentResult:
    """Per-processor time breakdown for sample sort (Figure 8)."""
    models = ["ccsas", "mpi-new", "shmem"]
    runner.run_many([RunSpec("sample", m, SIZES[size], n_procs, 11) for m in models])
    panels = {}
    text_parts = [f"Figure 8: sample sort ({size}) breakdown on {n_procs} processors"]
    for m in models:
        rep = runner.run(RunSpec("sample", m, SIZES[size], n_procs, 11)).report
        means = rep.category_means_ns()
        panels[m] = {
            "means_ns": means,
            "total_ns": rep.total_time_ns,
            "per_proc_total_ns": [c.total_ns for c in rep.counters],
        }
        text_parts.append(breakdown_panel(m, means, rep.total_time_ns))
        text_parts.append(
            per_proc_strip(panels[m]["per_proc_total_ns"], "  per-proc ")
        )
    return ExperimentResult(
        "fig8", "sample breakdown", panels, "\n".join(text_parts),
        {"claim": "BUSY much larger than radix (two local sorts); "
                  "models closer together"},
    )


# ----------------------------------------------------------------------
# Distribution figures (5, 9)
# ----------------------------------------------------------------------
def figure5(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    n_procs: int = 64,
    distributions: list[str] | None = None,
) -> ExperimentResult:
    """Radix relative times across key distributions, SHMEM (Figure 5)."""
    return _distribution_figure(
        runner, "fig5", "radix", "shmem", 8, sizes, n_procs, distributions,
        "Figure 5: radix/SHMEM relative time by key distribution",
        {"claim": "local best; others similar; remote gains at 256M"},
    )


def figure9(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    n_procs: int = 64,
    distributions: list[str] | None = None,
) -> ExperimentResult:
    """Sample relative times across key distributions, CC-SAS (Figure 9)."""
    return _distribution_figure(
        runner, "fig9", "sample", "ccsas", 11, sizes, n_procs, distributions,
        "Figure 9: sample/CC-SAS relative time by key distribution",
        {"claim": "locality-favorable distributions gain from 64M up"},
    )


def _distribution_figure(
    runner, exp_id, algorithm, model, radix, sizes, n_procs, distributions,
    title, claim,
) -> ExperimentResult:
    sizes = sizes or SIZE_ORDER
    distributions = distributions or PAPER_ORDER
    runner.run_many(
        [
            RunSpec(algorithm, model, SIZES[label], n_procs, radix, d)
            for label in sizes
            for d in dict.fromkeys(["gauss", *distributions])
        ]
    )
    grid: dict[str, dict[str, float]] = {}
    for label in sizes:
        base = runner.run(
            RunSpec(algorithm, model, SIZES[label], n_procs, radix, "gauss")
        ).time_ns
        grid[label] = {}
        for d in distributions:
            t = runner.run(
                RunSpec(algorithm, model, SIZES[label], n_procs, radix, d)
            ).time_ns
            grid[label][d] = t / base
    text = grouped_series(grid, title, unit="x gauss")
    return ExperimentResult(exp_id, title, grid, text, claim)


# ----------------------------------------------------------------------
# Radix-size figures (6, 10)
# ----------------------------------------------------------------------
def figure6(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    n_procs: int = 64,
    radix_range: range = range(6, 13),
) -> ExperimentResult:
    """Radix-size sweep for radix sort, SHMEM (Figure 6; relative to r=8)."""
    return _radix_sweep(
        runner, "fig6", "radix", "shmem", 8, sizes, n_procs, radix_range,
        "Figure 6: radix sort, effect of radix size (relative to r=8)",
        {"claim": "optimal radix grows with data set size"},
    )


def figure10(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    n_procs: int = 64,
    radix_range: range = range(6, 13),
) -> ExperimentResult:
    """Radix-size sweep for sample sort, CC-SAS (Figure 10; rel. to r=11)."""
    return _radix_sweep(
        runner, "fig10", "sample", "ccsas", 11, sizes, n_procs, radix_range,
        "Figure 10: sample sort, effect of radix size (relative to r=11)",
        {"claim": "r=11 best up to 64M, 12 at 256M; best/worst < 2"},
    )


def _radix_sweep(
    runner, exp_id, algorithm, model, base_radix, sizes, n_procs, radix_range,
    title, claim,
) -> ExperimentResult:
    sizes = sizes or SIZE_ORDER
    runner.run_many(
        [
            RunSpec(algorithm, model, SIZES[label], n_procs, r)
            for label in sizes
            for r in dict.fromkeys([base_radix, *radix_range])
        ]
    )
    grid: dict[str, dict[str, float]] = {}
    for label in sizes:
        base = runner.run(
            RunSpec(algorithm, model, SIZES[label], n_procs, base_radix)
        ).time_ns
        grid[label] = {}
        for r in radix_range:
            t = runner.run(
                RunSpec(algorithm, model, SIZES[label], n_procs, r)
            ).time_ns
            grid[label][f"r={r}"] = t / base
    text = grouped_series(grid, title, unit=f"x r={base_radix}")
    return ExperimentResult(exp_id, title, grid, text, claim)


# ----------------------------------------------------------------------
# Tables 2 and 3
# ----------------------------------------------------------------------
def tables2_and_3(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    procs: list[int] | None = None,
    radix_choices: list[int] | None = None,
    radix_models: list[str] | None = None,
    sample_models: list[str] | None = None,
) -> tuple[ExperimentResult, ExperimentResult]:
    """Best times (Table 2) and best model+radix combos (Table 3)."""
    sizes = sizes or SIZE_ORDER
    procs = procs or PROC_COUNTS
    radix_choices = radix_choices or [7, 8, 11, 12]
    radix_models = radix_models or RADIX_MODELS
    sample_models = sample_models or SAMPLE_MODELS

    runner.run_many(
        [
            RunSpec(algorithm, m, SIZES[label], p, r)
            for algorithm, models in (("radix", radix_models), ("sample", sample_models))
            for label in sizes
            for p in procs
            for m in models
            for r in radix_choices
        ]
    )
    best_time: dict[str, dict[str, dict[int, float]]] = {"radix": {}, "sample": {}}
    best_combo: dict[str, dict[str, dict[int, tuple[str, int]]]] = {
        "radix": {},
        "sample": {},
    }
    for algorithm, models in (("radix", radix_models), ("sample", sample_models)):
        for label in sizes:
            best_time[algorithm][label] = {}
            best_combo[algorithm][label] = {}
            for p in procs:
                cell_best = None
                cell_combo = None
                for m in models:
                    for r in radix_choices:
                        t = runner.run(
                            RunSpec(algorithm, m, SIZES[label], p, r)
                        ).time_ns
                        if cell_best is None or t < cell_best:
                            cell_best, cell_combo = t, (m, r)
                best_time[algorithm][label][p] = cell_best / 1e3  # us
                best_combo[algorithm][label][p] = cell_combo

    rows2, rows3 = [], []
    for label in sizes:
        row2, row3 = [label], [label]
        for algorithm in ("radix", "sample"):
            for p in procs:
                row2.append(f"{best_time[algorithm][label][p]:,.0f}")
                m, r = best_combo[algorithm][label][p]
                row3.append(f"{m} {r}")
                paper = PAPER_TABLE2_US.get(algorithm, {}).get(label, {}).get(p)
                if paper:
                    row2[-1] += f" ({paper:,})"
        rows2.append(row2)
        rows3.append(row3)
    headers = ["size"] + [
        f"{alg[:1]}{p}p" for alg in ("radix", "sample") for p in procs
    ]
    t2 = ExperimentResult(
        "table2",
        "best execution times (us), model(paper)",
        best_time,
        format_table(headers, rows2, title="Table 2: best times, us (paper in parens)"),
        PAPER_TABLE2_US,
    )
    t3 = ExperimentResult(
        "table3",
        "best model + radix per cell",
        best_combo,
        format_table(headers, rows3, title="Table 3: best model + radix size"),
        PAPER_TABLE3,
    )
    return t2, t3


# ----------------------------------------------------------------------
# Section 4.4 "Putting it All Together"
# ----------------------------------------------------------------------
def summary(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    procs: list[int] | None = None,
) -> ExperimentResult:
    """The paper's closing comparison: per grid cell, which *algorithm x
    model* combination wins (at each algorithm's best standard radix)."""
    sizes = sizes or SIZE_ORDER
    procs = procs or PROC_COUNTS
    combos = [
        ("radix", "ccsas", 8),
        ("radix", "shmem", 8),
        ("radix", "mpi-new", 8),
        ("sample", "ccsas", 11),
        ("sample", "shmem", 11),
        ("sample", "mpi-new", 11),
    ]
    runner.run_many(
        [
            RunSpec(alg, m, SIZES[label], p, r)
            for label in sizes
            for p in procs
            for alg, m, r in combos
        ]
    )
    data: dict[str, dict] = {}
    rows = []
    for label in sizes:
        for p in procs:
            cell = {}
            for alg, m, r in combos:
                cell[f"{alg}/{m}"] = runner.run(
                    RunSpec(alg, m, SIZES[label], p, r)
                ).time_ns
            winner = min(cell, key=cell.get)
            keys_per_proc = SIZES[label] // p
            data[f"{label}/{p}p"] = {
                "winner": winner,
                "keys_per_proc": keys_per_proc,
                "times_ns": cell,
            }
            rows.append(
                [f"{label}/{p}p", f"{keys_per_proc:,}", winner,
                 f"{cell[winner] / 1e6:,.1f}"]
            )
    text = format_table(
        ["cell", "keys/proc", "best combination", "time (ms)"],
        rows,
        title="Section 4.4: best algorithm x model per cell",
    )
    return ExperimentResult(
        "summary", "best combination per cell", data, text,
        {"claim": "sample/CC-SAS small, radix/SHMEM large"},
    )


# ----------------------------------------------------------------------
# Predictor cross-validation (docs/PREDICT.md)
# ----------------------------------------------------------------------
def predict_compare(
    runner: ExperimentRunner,
    sizes: list[str] | None = None,
    procs: list[int] | None = None,
) -> ExperimentResult:
    """Predicted vs. simulated totals per grid cell, plus sweep latency.

    Runs every algorithm x model at each size/processor count on both the
    simulated backend (via ``runner``, so cells come from the shared
    cache/memo) and the analytic ``predict`` backend, and reports the
    per-cell relative error band alongside the wall-clock cost of each
    sweep.  ``benchmarks/BENCH_1.json`` pins this result; CI's predict
    job regenerates and diffs it.
    """
    import time

    sizes = sizes or ["1M", "16M"]
    procs = procs or [16, 64]
    combos = [("radix", m, 8) for m in RADIX_MODELS] + [
        ("sample", m, 11) for m in SAMPLE_MODELS
    ]
    specs = [
        RunSpec(alg, m, SIZES[label], p, r)
        for label in sizes
        for p in procs
        for alg, m, r in combos
    ]
    t0 = time.perf_counter()
    runner.run_many(specs)
    sim_wall_s = time.perf_counter() - t0

    predictor = ExperimentRunner(costs=runner.costs, backend="predict")
    t0 = time.perf_counter()
    predictor.run_many(specs)
    predict_wall_s = time.perf_counter() - t0

    cells: dict[str, dict[str, float]] = {}
    rels: list[float] = []
    rows = []
    for spec in specs:
        sim_ns = runner.run(spec).time_ns
        pred_ns = predictor.run(spec).time_ns
        rel = (pred_ns - sim_ns) / sim_ns
        rels.append(abs(rel))
        label = (
            f"{spec.algorithm}/{spec.model}/{spec.size_label()}/"
            f"{spec.n_procs}p"
        )
        cells[label] = {
            "sim_ns": sim_ns, "pred_ns": pred_ns, "rel_err": rel,
        }
        rows.append(
            [label, f"{sim_ns / 1e6:,.1f}", f"{pred_ns / 1e6:,.1f}",
             f"{rel:+.2%}"]
        )
    rels_sorted = sorted(rels)
    band = {
        "median_abs_rel": rels_sorted[len(rels_sorted) // 2],
        "p95_abs_rel": rels_sorted[
            max(0, int(round(0.95 * len(rels_sorted))) - 1)
        ],
        "max_abs_rel": rels_sorted[-1],
        "n_cells": len(rels_sorted),
    }
    data = {
        "cells": cells,
        "band": band,
        "latency": {
            "sim_wall_s": sim_wall_s,  # may be cache-warm; see CACHE.md
            "predict_wall_s": predict_wall_s,
            "n_cells": len(specs),
        },
    }
    text = format_table(
        ["cell", "sim (ms)", "predicted (ms)", "rel err"],
        rows,
        title="Predictor cross-validation: predicted vs simulated",
    ) + (
        f"\nerror band: median {band['median_abs_rel']:.2%}, "
        f"p95 {band['p95_abs_rel']:.2%}, max {band['max_abs_rel']:.2%} "
        f"over {band['n_cells']} cells\n"
        f"sweep latency: sim {sim_wall_s:.2f}s "
        f"(cache-dependent), predicted {predict_wall_s:.2f}s"
    )
    return ExperimentResult(
        "predict_compare",
        "predicted vs simulated sweep",
        data,
        text,
        {"gate": "median abs rel error <= 0.15 (repro check --backend predict)"},
    )


def native_path(
    runner: ExperimentRunner,
    sizes: list[int] | None = None,
    distributions: list[str] | None = None,
    repeats: int = 3,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Measured native hot-path timings vs ``np.sort`` (BENCH_3).

    Times four sorts per (distribution, size) cell on the host machine:
    ``np.sort`` (the sequential reference every output is verified
    against), the seed-equivalent ``naive`` radix kernel (the pre-kernel
    implementation kept for A/B), the engineered radix path on the active
    kernel, and sample sort.  Each timing is the best of ``repeats`` runs
    on a pool reused across cells (fork cost amortized, as in serving).
    ``benchmarks/BENCH_3.json`` pins this result; ``compare.py --native``
    gates it absolutely -- every cell verified, and the engineered radix
    faster than the seed kernel at n >= 2**22 -- rather than diffing the
    machine-dependent timings.
    """
    import time

    import numpy as np

    from ..data.distributions import generate
    from ..native.kernels import resolve as resolve_kernel
    from ..native.pool import WorkerPool, default_workers
    from ..native.radix import parallel_radix_sort
    from ..native.sample import parallel_sample_sort

    sizes = sizes or [1 << 20, 1 << 22]
    distributions = distributions or ["random", "gauss", "zero"]
    workers = n_workers if n_workers is not None else max(2, default_workers())
    kern = resolve_kernel()

    def best_of(fn) -> tuple[float, np.ndarray]:
        walls, out = [], None
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = fn()
            walls.append(time.perf_counter() - t0)
        return min(walls), out

    cells: dict[str, dict[str, float | int]] = {}
    rows = []
    with WorkerPool(workers) as pool:
        for dist in distributions:
            for n in sizes:
                keys = generate(dist, n, 4, seed=1234)
                np_wall, ref = best_of(lambda: np.sort(keys))
                seed_wall, seed_out = best_of(
                    lambda: parallel_radix_sort(keys, pool=pool, kernel="naive")
                )
                radix_wall, radix_out = best_of(
                    lambda: parallel_radix_sort(keys, pool=pool)
                )
                sample_wall, sample_out = best_of(
                    lambda: parallel_sample_sort(keys, pool=pool)
                )
                verified = int(
                    np.array_equal(seed_out, ref)
                    and np.array_equal(radix_out, ref)
                    and np.array_equal(sample_out, ref)
                )
                speedup = seed_wall / radix_wall if radix_wall > 0 else 0.0
                cells[f"{dist}/{n}"] = {
                    "n": n,
                    "np_sort_wall_s": np_wall,
                    "seed_radix_wall_s": seed_wall,
                    "radix_wall_s": radix_wall,
                    "sample_wall_s": sample_wall,
                    "radix_speedup_vs_seed": speedup,
                    "verified": verified,
                }
                rows.append(
                    [f"{dist}/{n}", f"{np_wall * 1e3:,.1f}",
                     f"{seed_wall * 1e3:,.1f}", f"{radix_wall * 1e3:,.1f}",
                     f"{sample_wall * 1e3:,.1f}", f"{speedup:.2f}x",
                     "yes" if verified else "NO"]
                )
    gate_min_n = 1 << 22
    gated = [c for c in cells.values() if c["n"] >= gate_min_n]
    summary = {
        "n_cells": len(cells),
        "all_verified": int(all(c["verified"] for c in cells.values())),
        "gated_cells": len(gated),
        "min_speedup_at_gate": (
            min(c["radix_speedup_vs_seed"] for c in gated) if gated else 0.0
        ),
    }
    data = {
        "kernel": kern.name,
        "workers": workers,
        "gate_min_n": gate_min_n,
        "cells": cells,
        "summary": summary,
    }
    text = format_table(
        ["cell", "np.sort (ms)", "seed radix (ms)", "radix (ms)",
         "sample (ms)", "radix vs seed", "verified"],
        rows,
        title=f"Native hot path ({workers} workers, kernel={kern.name})",
    ) + (
        f"\nengineered radix vs seed kernel at n >= 2^22: "
        f"{summary['min_speedup_at_gate']:.2f}x minimum over "
        f"{summary['gated_cells']} cell(s)"
    )
    return ExperimentResult(
        "native_path",
        "native hot-path timings vs np.sort",
        data,
        text,
        {"gate": "compare.py --native: verified cells, speedup > 1 at n >= 2^22"},
    )


def stream_path(
    runner: ExperimentRunner,
    sizes: list[int] | None = None,
    distributions: list[str] | None = None,
    n_workers: int | None = None,
    chunk_divisor: int = 8,
    fan_in: int = 4,
) -> ExperimentResult:
    """Measured out-of-core sort throughput (BENCH_4).

    Every cell externally sorts an input ``chunk_divisor`` times larger
    than its chunk budget (so spill runs and a multi-pass merge are
    exercised, not an in-memory shortcut) on a pool reused across cells,
    and verifies the streamed output block-by-block against ``np.sort``
    of the input.  ``benchmarks/BENCH_4.json`` pins this result;
    ``compare.py --stream`` gates it absolutely -- zero incorrect cells,
    every cell verified, throughput at or above a conservative floor --
    rather than diffing the machine-dependent MB/s.
    """
    import numpy as np

    from ..data.distributions import generate
    from ..native.pool import WorkerPool, default_workers
    from ..stream import external_sort

    sizes = sizes or [1 << 20, 1 << 22]
    distributions = distributions or ["random", "gauss", "zero"]
    workers = n_workers if n_workers is not None else max(2, default_workers())

    cells: dict[str, dict[str, float | int]] = {}
    rows = []
    with WorkerPool(workers, supervise=True, phase_timeout_s=60.0) as pool:
        for dist in distributions:
            for n in sizes:
                keys = generate(dist, n, 4, seed=1234)
                expect = np.sort(keys)
                chunk_keys = max(4, n // chunk_divisor)
                cursor = 0
                incorrect = 0

                def check_block(block: np.ndarray) -> None:
                    nonlocal cursor, incorrect
                    ref = expect[cursor : cursor + len(block)]
                    incorrect += int(np.count_nonzero(block != ref))
                    cursor += len(block)

                result = external_sort(
                    keys,
                    chunk_keys=chunk_keys,
                    fan_in=fan_in,
                    pool=pool,
                    on_block=check_block,
                )
                incorrect += abs(cursor - n)
                cells[f"{dist}/{n}"] = {
                    "n": n,
                    "chunk_keys": chunk_keys,
                    "runs": result.runs,
                    "merge_passes": result.merge_passes,
                    "bytes_spilled": result.bytes_spilled,
                    "wall_s": result.elapsed_s,
                    "throughput_mb_s": result.throughput_mb_s,
                    "verified": int(result.verified and incorrect == 0),
                    "incorrect": incorrect,
                }
                rows.append(
                    [f"{dist}/{n}", f"{chunk_keys}", f"{result.runs}",
                     f"{result.merge_passes}",
                     f"{result.elapsed_s * 1e3:,.1f}",
                     f"{result.throughput_mb_s:.1f}",
                     "yes" if incorrect == 0 else "NO"]
                )
    summary = {
        "n_cells": len(cells),
        "all_verified": int(all(c["verified"] for c in cells.values())),
        "total_incorrect": int(sum(c["incorrect"] for c in cells.values())),
        "min_throughput_mb_s": (
            min(c["throughput_mb_s"] for c in cells.values()) if cells else 0.0
        ),
    }
    data = {
        "workers": workers,
        "fan_in": fan_in,
        "chunk_divisor": chunk_divisor,
        "cells": cells,
        "summary": summary,
    }
    text = format_table(
        ["cell", "chunk", "runs", "passes", "wall (ms)", "MB/s", "verified"],
        rows,
        title=f"Out-of-core stream path ({workers} workers, "
        f"fan-in {fan_in}, input {chunk_divisor}x chunk)",
    ) + (
        f"\nmin throughput {summary['min_throughput_mb_s']:.1f} MB/s over "
        f"{summary['n_cells']} cell(s), "
        f"{summary['total_incorrect']} incorrect key(s)"
    )
    return ExperimentResult(
        "stream_path",
        "out-of-core sort throughput (ingest/spill/merge)",
        data,
        text,
        {"gate": "compare.py --stream: 0 incorrect, throughput >= floor"},
    )


def machine_zoo(
    runner: ExperimentRunner,
    n: int = 16 * 512,
    p: int = 16,
    machines: list[str] | None = None,
    workloads: list[str] | None = None,
) -> ExperimentResult:
    """Machine-zoo x workload sweep on the simulator (BENCH_5).

    Runs every machine-zoo member (docs/MACHINES.md) against every
    workload kind (u32 plus the widened matrix) under both algorithms,
    verifying each cell's output against ``np.sort``/``np.argsort`` and
    recording the simulated total time and the BUSY/LMEM/RMEM/SYNC
    split.  ``benchmarks/BENCH_5.json`` pins this result;
    ``compare.py --zoo`` gates it absolutely -- full machine and
    workload coverage with every cell verified -- rather than diffing
    the cost-parameter-dependent simulated times.
    """
    del runner  # the zoo axis is not in RunSpec; cells run sort() directly
    from ..core.api import sort
    from ..data.workloads import (
        Workload, make_workload, reference_sort, workloads_equal,
    )
    from ..machine.zoo import MACHINES, get_machine
    from ..verify.differential import ALL_WORKLOADS, machine_model

    machines = machines or list(MACHINES)
    workloads = workloads or list(ALL_WORKLOADS)

    cells: dict[str, dict[str, float | int]] = {}
    rows = []
    for machine_name in machines:
        machine = (
            None if machine_name == "origin2000"
            else get_machine(machine_name, n_procs=p)
        )
        model = machine_model(machine_name)
        for kind in workloads:
            w = make_workload(kind, n, p, seed=1)
            expect = reference_sort(w)
            for algorithm in ("radix", "sample"):
                result = sort(
                    w.keys, algorithm=algorithm, model=model, n_procs=p,
                    machine=machine, payload=w.payload,
                )
                got = Workload(kind, result.sorted_keys, result.payload)
                verified = int(workloads_equal(got, expect))
                means = result.report.category_means_ns()
                cells[f"{machine_name}/{kind}/{algorithm}"] = {
                    "machine": machine_name,
                    "workload": kind,
                    "algorithm": algorithm,
                    "model": model,
                    "time_ns": result.time_ns,
                    "category_means_ns": means,
                    "verified": verified,
                }
                rows.append(
                    [f"{machine_name}/{kind}", algorithm, model,
                     f"{result.time_ns / 1e6:,.2f}",
                     f"{means.get('RMEM', 0.0) / 1e6:,.2f}",
                     "yes" if verified else "NO"]
                )
    summary = {
        "n_cells": len(cells),
        "all_verified": int(all(c["verified"] for c in cells.values())),
        "machines_covered": len({c["machine"] for c in cells.values()}),
        "workloads_covered": len({c["workload"] for c in cells.values()}),
    }
    data = {
        "n": n,
        "p": p,
        "machines": list(machines),
        "workloads": list(workloads),
        "cells": cells,
        "summary": summary,
    }
    text = format_table(
        ["machine/workload", "algorithm", "model", "total (ms)",
         "RMEM (ms)", "verified"],
        rows,
        title=f"Machine zoo x workload matrix ({n} keys, {p} procs)",
    ) + (
        f"\n{summary['machines_covered']} machines x "
        f"{summary['workloads_covered']} workloads, "
        f"{summary['n_cells']} cells, all verified: "
        f"{'yes' if summary['all_verified'] else 'NO'}"
    )
    return ExperimentResult(
        "machine_zoo",
        "machine-zoo x workload matrix on the simulator",
        data,
        text,
        {"gate": "compare.py --zoo: full coverage, every cell verified"},
    )


#: Registry: experiment id -> harness.
EXPERIMENTS: dict[str, Callable[..., object]] = {
    "summary": summary,
    "table1": table1,
    "fig1": figure1,
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "tables2_and_3": tables2_and_3,
    "predict_compare": predict_compare,
    "native_path": native_path,
    "stream_path": stream_path,
    "machine_zoo": machine_zoo,
}
