"""Plain-text table formatting for the paper's tables."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    align_left_first: bool = True,
) -> str:
    """Render a simple aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for r, row in enumerate(cells):
        padded = []
        for i, cell in enumerate(row):
            if i == 0 and align_left_first:
                padded.append(cell.ljust(widths[i]))
            else:
                padded.append(cell.rjust(widths[i]))
        lines.append(" | ".join(padded))
        if r == 0:
            lines.append(sep)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)
