"""Reproduction harnesses and rendering for the paper's tables/figures."""

from .experiments import (
    EXPERIMENTS,
    PAPER_TABLE1_US,
    PAPER_TABLE2_US,
    PAPER_TABLE3,
    ExperimentResult,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    tables2_and_3,
)
from .experiments import summary
from .figures import bar_chart, breakdown_panel, grouped_series, per_proc_strip
from .profile import PhaseProfile, format_profile, profile_by_step, profile_outcome
from .tables import format_table

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "PAPER_TABLE1_US",
    "PAPER_TABLE2_US",
    "PAPER_TABLE3",
    "bar_chart",
    "breakdown_panel",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "format_table",
    "grouped_series",
    "PhaseProfile",
    "format_profile",
    "per_proc_strip",
    "profile_by_step",
    "profile_outcome",
    "summary",
    "table1",
    "tables2_and_3",
]
