"""Per-phase execution profile of a simulated run.

The paper's methodology rests on per-process, per-phase instrumentation
("obtained using program/library instrumentation and various tools
available on the machine", Section 4).  :func:`profile_outcome` renders
the same view for a :class:`~repro.sorts.radix.SortOutcome`: phase-by-
phase time (max across processors) with imbalance, grouped by the pass
structure of the algorithm.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from ..sorts.radix import SortOutcome
from .tables import format_table

_PASS_RE = re.compile(r"^(pass\d+|localsort\d+|seq\d+|ls\d+)\.(.+)$")


@dataclass(frozen=True)
class PhaseProfile:
    name: str
    group: str  # pass/grouping prefix ("pass0", "localsort1", "-")
    step: str  # step within the group ("histogram", "exchange", ...)
    max_ns: float
    mean_ns: float
    imbalance: float  # max/mean (1.0 = perfectly balanced)


def profile_outcome(outcome: SortOutcome) -> list[PhaseProfile]:
    """Per-phase profile records, in execution order."""
    profiles = []
    for rec in outcome.report.phases:
        m = _PASS_RE.match(rec.name)
        group, step = (m.group(1), m.group(2)) if m else ("-", rec.name)
        arr = np.asarray(rec.per_proc_ns, dtype=np.float64)
        mean = float(arr.mean())
        peak = float(arr.max())
        profiles.append(
            PhaseProfile(
                name=rec.name,
                group=group,
                step=step,
                max_ns=peak,
                mean_ns=mean,
                imbalance=(peak / mean) if mean > 0 else 1.0,
            )
        )
    return profiles


def profile_by_step(outcome: SortOutcome) -> dict[str, float]:
    """Total (max-across-processors) time per step kind, summed over
    passes -- e.g. all `exchange` phases of a radix sort together."""
    totals: dict[str, float] = {}
    for prof in profile_outcome(outcome):
        totals[prof.step] = totals.get(prof.step, 0.0) + prof.max_ns
    return totals


def format_profile(outcome: SortOutcome, min_ns: float = 0.0) -> str:
    """Human-readable per-phase table for one run."""
    rows = []
    total = outcome.time_ns or 1.0
    for prof in profile_outcome(outcome):
        if prof.max_ns < min_ns:
            continue
        rows.append(
            [
                prof.name,
                f"{prof.max_ns / 1e6:.3f}",
                f"{prof.max_ns / total:.1%}",
                f"{prof.imbalance:.2f}",
            ]
        )
    title = (
        f"{outcome.algorithm}/{outcome.model_name} r={outcome.radix} "
        f"n={outcome.n_labeled:,} p={outcome.n_procs}: "
        f"{outcome.time_ns / 1e6:.2f} ms total"
    )
    return format_table(["phase", "max (ms)", "share", "imbalance"], rows, title)
