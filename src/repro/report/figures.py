"""ASCII renderings of the paper's figures.

Each figure in the paper is a bar chart (speedups, relative times, or
stacked per-processor breakdowns); these helpers render the same data as
text so the benchmark harnesses can print them in a terminal.
"""

from __future__ import annotations

from typing import Mapping, Sequence

BAR_CHARS = 48


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    unit: str = "",
    max_value: float | None = None,
) -> str:
    """Horizontal bar chart, one row per labeled value."""
    if not values:
        return title
    peak = max_value if max_value is not None else max(values.values())
    peak = peak or 1.0
    width = max(len(k) for k in values)
    lines = [title] if title else []
    for label, v in values.items():
        n = int(round(BAR_CHARS * v / peak)) if peak > 0 else 0
        n = max(0, min(BAR_CHARS, n))
        lines.append(f"{label:<{width}} |{'#' * n:<{BAR_CHARS}}| {v:8.2f} {unit}")
    return "\n".join(lines)


def grouped_series(
    series: Mapping[str, Mapping[str, float]],
    title: str = "",
    unit: str = "",
) -> str:
    """One bar chart per group (e.g. per data-set size)."""
    lines = [title] if title else []
    peak = max(
        (v for group in series.values() for v in group.values()), default=1.0
    )
    for group, values in series.items():
        lines.append(f"-- {group} --")
        lines.append(bar_chart(values, unit=unit, max_value=peak))
    return "\n".join(lines)


def breakdown_panel(
    label: str,
    category_means_ns: Mapping[str, float],
    total_ns: float,
) -> str:
    """One panel of the paper's Figure 4/8: mean per-category stacked bar."""
    lines = [f"[{label}]  total {total_ns / 1e6:9.1f} ms"]
    total = sum(category_means_ns.values()) or 1.0
    for cat, v in category_means_ns.items():
        frac = v / total
        n = int(round(BAR_CHARS * frac))
        lines.append(
            f"  {cat:<5} |{'#' * n:<{BAR_CHARS}}| {v / 1e6:9.1f} ms ({frac:5.1%})"
        )
    return "\n".join(lines)


def per_proc_strip(values_ns: Sequence[float], label: str = "") -> str:
    """A compact per-processor strip (one character per processor) showing
    relative load -- the per-processor texture of Figures 4/8."""
    if len(values_ns) == 0:
        return label
    peak = max(values_ns) or 1.0
    glyphs = " .:-=+*#%@"
    chars = "".join(
        glyphs[min(len(glyphs) - 1, int(v / peak * (len(glyphs) - 1)))]
        for v in values_ns
    )
    return f"{label}[{chars}]"
