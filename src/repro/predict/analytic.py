"""Workload statistics for the analytic predictor.

The predictor charges exactly the per-phase costs the simulator charges
(the phase emission is shared code, see :mod:`repro.predict.driver`); what
it needs from the *workload* is the small set of statistics those phases
consume: per-pass expected histograms and communication matrices, write-
stream locality, active bucket counts, and -- for sample sort -- the
splitter-induced distribution matrix.  This module derives them three
ways:

- :func:`uniform_stats`: closed form for uniform random keys.  Every
  per-process histogram is ~``n/(p * 2^r)`` per bucket, the permutation
  moves ``4n/p^2`` bytes between every pair, chunk counts follow the
  Poisson occupancy ``cells * (1 - exp(-lambda))``, and destination
  locality is ``2^-r``.  No key array is ever materialized, so this path
  is O(p^2) per pass regardless of ``n``.
- :func:`measured_stats`: exact statistics measured from a given key
  array (what the backend seam uses -- predictions are then conditioned
  on the same sampled workload the simulator would see), extrapolated to
  the labeled size through the same support-estimation machinery the
  simulator uses (``repro.sorts.common.radix_comm_matrices``).
- :func:`family_stats`: statistics of a *distribution family* by name:
  a small deterministic model draw (the grid runner's ``actual_size``
  cap) is generated and measured.  This is how a paper-scale prediction
  (256M keys) derives its expected histograms from the ``RunSpec``
  distribution in milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..data.distributions import KEY_BITS
from ..params import ELEM_BYTES, elem_bytes_for
from ..sorts.common import (
    CommMatrices,
    apply_radix_pass,
    choose_splitters,
    digits_for_pass,
    measure_locality,
    n_passes,
    partition_counts,
    proc_histograms,
    radix_comm_matrices,
    select_samples,
)
from ..sorts.local_sort import local_pass_stats
from ..verify.context import current_sanitizer

#: Functional model-draw cap for family statistics -- the experiment
#: grid's default ``max_actual``.
DEFAULT_MAX_ACTUAL = 1 << 18


@dataclass(frozen=True)
class RadixPassStats:
    """Statistics of one parallel radix-sort pass."""

    comm: CommMatrices
    locality: float
    active_buckets: int


@dataclass(frozen=True)
class LocalSortStats:
    """Statistics of one complete local radix sort (all passes)."""

    counts: np.ndarray  # (p,) labeled per-processor key counts
    actives: np.ndarray  # (passes, p) active write streams
    localities: np.ndarray  # (passes, p) destination locality


@dataclass(frozen=True)
class WorkloadStats:
    """Everything the phase driver needs to know about a workload."""

    algorithm: str
    n: int  # labeled key count
    p: int
    radix: int
    key_bits: int
    passes: int
    # Parallel radix sort:
    radix_passes: tuple[RadixPassStats, ...] = ()
    # Sample sort:
    local1: LocalSortStats | None = None
    local2: LocalSortStats | None = None
    distribute: CommMatrices | None = None


def _validate(algorithm: str, n: int, p: int, radix: int) -> None:
    if algorithm not in ("radix", "sample"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if n <= 0 or p <= 0 or n % p != 0:
        raise ValueError("n must be a positive multiple of n_procs")
    if not 1 <= radix <= 16:
        raise ValueError("radix must be in [1, 16]")


# ----------------------------------------------------------------------
# Closed-form uniform statistics
# ----------------------------------------------------------------------
def uniform_radix_comm(
    n: int, p: int, radix: int, elem_bytes: int = ELEM_BYTES
) -> CommMatrices:
    """Expected traffic of one radix pass over uniform random keys."""
    nb = 1 << radix
    bytes_m = np.full((p, p), n / (p * p) * elem_bytes)
    # Cells per (source, destination) block and their expected occupancy.
    cells = nb / p
    lam = n / (p * nb)  # expected keys per (process, digit) cell
    occupied = cells * (1.0 - math.exp(-lam)) if lam < 30 else cells
    # Non-zero traffic travels in at least one chunk (the sanitizer's
    # comm.chunkless-traffic invariant).
    chunks = np.full((p, p), max(occupied, 1.0))
    return CommMatrices(bytes_m, chunks)


def _uniform_active(n_keys: float, nb: int) -> int:
    """Expected occupied digit values of ``n_keys`` uniform keys."""
    lam = n_keys / nb
    occupied = nb * (1.0 - math.exp(-lam)) if lam < 30 else float(nb)
    return max(1, int(round(occupied)))


def uniform_stats(
    algorithm: str,
    n: int,
    p: int,
    radix: int,
    key_bits: int = KEY_BITS,
) -> WorkloadStats:
    """Closed-form statistics for uniform random keys (no key array)."""
    _validate(algorithm, n, p, radix)
    nb = 1 << radix
    passes = n_passes(radix, key_bits)
    elem_bytes = elem_bytes_for(key_bits)
    n_per = n // p
    san = current_sanitizer()
    if algorithm == "radix":
        comm = uniform_radix_comm(n, p, radix, elem_bytes)
        if san is not None:
            san.on_comm(
                comm.bytes_matrix,
                comm.chunks_matrix,
                row_bytes=float(n_per * elem_bytes),
                col_bytes=float(n_per * elem_bytes),
                where="predict.uniform-comm",
            )
        pass_stats = RadixPassStats(
            comm=comm,
            locality=1.0 / nb,
            active_buckets=_uniform_active(float(n), nb),
        )
        return WorkloadStats(
            algorithm, n, p, radix, key_bits, passes,
            radix_passes=(pass_stats,) * passes,
        )

    counts = np.full(p, float(n_per))
    local = LocalSortStats(
        counts=counts,
        actives=np.full((passes, p), _uniform_active(float(n_per), nb)),
        localities=np.full((passes, p), 1.0 / nb),
    )
    # Phase 4: splitters carve near-equal ranges; one chunk per pair.
    dist_bytes = np.full((p, p), n_per / p * elem_bytes)
    distribute = CommMatrices(dist_bytes, np.ones((p, p)))
    if san is not None:
        san.on_comm(
            distribute.bytes_matrix,
            distribute.chunks_matrix,
            row_bytes=float(n_per * elem_bytes),
            col_bytes=None,
            where="predict.uniform-distribute",
        )
    return WorkloadStats(
        algorithm, n, p, radix, key_bits, passes,
        local1=local, local2=local, distribute=distribute,
    )


# ----------------------------------------------------------------------
# Measured statistics (exact data-plane walk, no cost simulation)
# ----------------------------------------------------------------------
def _local_sort_walk(
    parts: list[np.ndarray],
    labeled_counts: np.ndarray,
    radix: int,
    passes: int,
) -> tuple[LocalSortStats, list[np.ndarray]]:
    """Per-pass statistics of per-processor local radix sorts, evolving
    the partitions functionally exactly as the simulator does."""
    p = len(parts)
    actives = np.ones((passes, p))
    localities = np.zeros((passes, p))
    cur = [np.asarray(part) for part in parts]
    for k in range(passes):
        for i in range(p):
            if float(labeled_counts[i]) <= 0:
                continue
            actives[k, i], localities[k, i] = local_pass_stats(cur[i], k, radix)
        for i in range(p):
            if len(cur[i]):
                digits = digits_for_pass(cur[i], k, radix)
                cur[i] = cur[i][np.argsort(digits, kind="stable")]
    return (
        LocalSortStats(
            counts=np.asarray(labeled_counts, dtype=np.float64),
            actives=actives,
            localities=localities,
        ),
        cur,
    )


def measured_stats(
    keys: np.ndarray,
    algorithm: str,
    p: int,
    radix: int,
    n_labeled: int | None = None,
    key_bits: int = KEY_BITS,
) -> WorkloadStats:
    """Exact workload statistics measured from ``keys``, extrapolated to
    ``n_labeled`` (chunk support estimation included) -- the same
    labeled-vs-actual sizing discipline the simulator uses."""
    keys = np.ascontiguousarray(keys)
    n_actual = len(keys)
    n = n_labeled if n_labeled is not None else n_actual
    _validate(algorithm, n_actual, p, radix)
    if n % n_actual != 0 or n < n_actual:
        raise ValueError(
            f"n_labeled={n} must be a multiple of the actual key count "
            f"{n_actual}"
        )
    scale = n // n_actual
    passes = n_passes(radix, key_bits)
    elem_bytes = elem_bytes_for(key_bits)
    nb = 1 << radix
    n_per = n // p
    n_actual_per = n_actual // p

    if algorithm == "radix":
        cur = keys
        pass_stats = []
        for k in range(passes):
            digits = digits_for_pass(cur, k, radix)
            hist = proc_histograms(digits, p, radix)
            locality = measure_locality(digits, p)
            active = int(np.count_nonzero(hist.sum(axis=0))) or 1
            comm = radix_comm_matrices(
                hist, n_actual_per, scale, elem_bytes=elem_bytes
            )
            pass_stats.append(RadixPassStats(comm, locality, active))
            cur = apply_radix_pass(cur, digits)
        return WorkloadStats(
            algorithm, n, p, radix, key_bits, passes,
            radix_passes=tuple(pass_stats),
        )

    # Sample sort: mirror the five-phase data plane.
    parts = [
        keys[i * n_actual_per : (i + 1) * n_actual_per] for i in range(p)
    ]
    local1, sorted_parts = _local_sort_walk(
        parts, np.full(p, n_per, dtype=np.int64), radix, passes
    )
    samples = select_samples(sorted_parts)
    splitters = choose_splitters(samples, p)
    counts = partition_counts(sorted_parts, splitters)
    distribute = CommMatrices(
        bytes_matrix=counts.astype(np.float64) * elem_bytes * scale,
        chunks_matrix=(counts > 0).astype(np.float64),
    )
    san = current_sanitizer()
    if san is not None:
        san.on_comm(
            distribute.bytes_matrix,
            distribute.chunks_matrix,
            row_bytes=float(n_per * elem_bytes),
            col_bytes=None,
            where="predict.distribute",
        )
    received = [
        np.concatenate(
            [
                sorted_parts[src][
                    int(counts[src, :dst].sum()) : int(counts[src, : dst + 1].sum())
                ]
                for src in range(p)
            ]
        )
        if counts[:, dst].sum()
        else np.empty(0, dtype=keys.dtype)
        for dst in range(p)
    ]
    labeled_recv = counts.sum(axis=0).astype(np.int64) * scale
    local2, _ = _local_sort_walk(received, labeled_recv, radix, passes)
    return WorkloadStats(
        algorithm, n, p, radix, key_bits, passes,
        local1=local1, local2=local2, distribute=distribute,
    )


# ----------------------------------------------------------------------
# Family statistics (model draw of a named distribution)
# ----------------------------------------------------------------------
@lru_cache(maxsize=64)
def family_stats(
    distribution: str,
    algorithm: str,
    n: int,
    p: int,
    radix: int,
    key_bits: int = KEY_BITS,
    seed: int = 1,
    max_actual: int = DEFAULT_MAX_ACTUAL,
) -> WorkloadStats:
    """Expected statistics of a named distribution family at labeled size
    ``n``: a deterministic model draw at the grid runner's functional cap
    is generated and measured.  ``distribution=None``/``"random"`` short-
    circuits to the closed uniform form.

    Memoized: the statistics are model-independent, so a sweep over all
    five programming models pays for each draw once.
    """
    if distribution is None or distribution == "random":
        return uniform_stats(algorithm, n, p, radix, key_bits)
    from ..core.experiment import actual_size
    from ..data import generate

    _validate(algorithm, n, p, radix)
    n_model = actual_size(n, max_actual, floor=p * p)
    keys = generate(distribution, n_model, p, radix=radix, seed=seed)
    return measured_stats(
        keys, algorithm, p, radix, n_labeled=n, key_bits=key_bits
    )
