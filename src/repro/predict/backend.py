"""The predicted backend: analytic performance behind the Backend seam.

Accepts any :class:`~repro.backend.base.SortJob` and returns a
:class:`~repro.backend.base.SortResult` whose per-phase
:class:`~repro.smp.perf.PerfReport` uses the same BUSY/LMEM/RMEM/SYNC
vocabulary (and satisfies the same accounting identity) as the simulated
backend -- in milliseconds instead of seconds, because the only
discrete-event component is replaced by closed forms.

Two input modes:

- ``keys`` given: workload statistics are measured from the actual array
  (conditioned on the exact workload the simulator would see) and the
  keys are functionally sorted with ``np.sort``.
- ``keys`` empty and ``distribution``+``n_labeled`` set: statistics come
  from a deterministic model draw of the named family -- a paper-scale
  sweep needs no 256M-key array at all.

Calibration factors (see :mod:`repro.predict.calibration`) are resolved
once per backend instance; pass ``calibration=False`` for raw
(uncalibrated) predictions.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import (
    Backend,
    SortJob,
    SortResult,
    check_keys,
    finish_workload,
    infer_key_bits,
    prepare_workload,
)
from ..sorts.radix import default_machine
from ..trace import TraceRecorder, use_recorder
from ..verify.context import current_sanitizer
from .analytic import family_stats, measured_stats
from .calibration import (
    Calibration,
    check_machine_calibrated,
    load_calibration,
)
from .driver import predict_outcome

#: Same per-algorithm defaults as the simulated backend.
DEFAULT_RADIX = {"radix": 8, "sample": 11}


class PredictedBackend(Backend):
    """Predicts sort performance analytically; sorts via ``np.sort``."""

    name = "predict"

    def __init__(self, calibration: Calibration | None | bool = None):
        """``calibration=None`` resolves the active artifact (env var,
        user cache, packaged default); ``False`` disables calibration; a
        :class:`Calibration` instance is used as given."""
        if calibration is False:
            self.calibration: Calibration | None = None
        elif calibration is None or calibration is True:
            self.calibration = load_calibration()
        else:
            self.calibration = calibration

    def run(
        self, job: SortJob, recorder: TraceRecorder | None = None
    ) -> SortResult:
        # The analytic closed forms (and their calibration factors) are
        # fitted on the CC-DSM machine only; reject other zoo members
        # with a typed error instead of mis-predicting silently.
        check_machine_calibrated(job.machine)
        job, workload_plan = prepare_workload(job)
        radix = job.radix if job.radix is not None else DEFAULT_RADIX[job.algorithm]
        n_procs = job.n_procs if job.n_procs is not None else 64
        machine = job.machine or default_machine(n_procs)

        from_family = len(np.asarray(job.keys)) == 0
        if from_family:
            if not job.distribution or not job.n_labeled:
                raise ValueError(
                    "predicted backend needs either non-empty keys or "
                    "distribution= and n_labeled= to derive workload "
                    "statistics from"
                )
            if job.algorithm not in ("radix", "sample"):
                raise ValueError(f"unknown algorithm {job.algorithm!r}")
            key_bits = job.key_bits if job.key_bits is not None else 31
            stats = family_stats(
                job.distribution, job.algorithm, job.n_labeled, n_procs,
                radix, key_bits=key_bits,
            )
            sorted_keys = np.asarray(job.keys)
        else:
            keys = check_keys(job.keys, job.algorithm)
            if np.issubdtype(keys.dtype, np.signedinteger) and keys.min() < 0:
                raise ValueError("keys must be non-negative")
            if not np.issubdtype(keys.dtype, np.integer):
                raise TypeError("radix/sample sorting requires integer keys")
            key_bits = (
                job.key_bits if job.key_bits is not None else infer_key_bits(keys)
            )
            stats = measured_stats(
                keys, job.algorithm, n_procs, radix,
                n_labeled=job.n_labeled, key_bits=key_bits,
            )
            sorted_keys = np.sort(keys)

        factors = (
            self.calibration.factors_for(job.algorithm, job.model)
            if self.calibration is not None
            else None
        )
        with use_recorder(recorder):
            outcome = predict_outcome(
                stats, job.model, machine=machine, costs=job.costs,
                factors=factors, sorted_keys=sorted_keys,
            )
        san = current_sanitizer()
        if san is not None:
            # The accounting identity holds for predicted reports too.
            san.on_report(outcome.report, label=f"predict/{job.algorithm}")
        result = SortResult(
            sorted_keys=sorted_keys,
            report=outcome.report,
            backend=self.name,
            algorithm=outcome.algorithm,
            model_name=outcome.model_name,
            n_procs=outcome.n_procs,
            radix=outcome.radix,
            trace=self._collect_trace(recorder),
            outcome=outcome,
        )
        return finish_workload(result, workload_plan)
