"""Calibration of the analytic predictor against the simulator.

The predictor is exact outside MPI/SHMEM exchange phases (shared
emission code) and within a few percent inside them (fitted closed
forms, :mod:`repro.predict.exchange`).  Calibration removes the residual
bias per (algorithm, model): ``fit_calibration`` runs a small grid of
simulated cells (through the existing grid cache, so repeat fits are
free), predicts the same cells from the same key arrays, and solves for
the per-category factor that makes the predicted exchange totals close
the gap to the simulated totals:

    factor_cat = (sim_total_cat - pred_nonexchange_cat) / pred_exchange_cat

summed over the grid, clamped to [0.1, 10].  The factors scale only
exchange-phase outcomes (everything else is bit-identical already), and
the fitted artifact records per-(algorithm, model) error bands --
median and 95th-percentile absolute relative error of total time over
the calibration cells -- which ``repro check --backend predict`` states
and enforces.

Artifact resolution order for :func:`load_calibration`:

1. an explicit path argument,
2. ``$REPRO_CALIBRATION``,
3. ``<cache dir>/calibration.json`` (``$REPRO_CACHE_DIR`` aware) --
   where ``python -m repro calibrate`` writes by default,
4. the packaged default ``calibration_default.json``,
5. identity factors (uncalibrated).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.experiment import ExperimentRunner, RunSpec
from ..core.gridcache import default_cache_dir
from ..smp.perf import PerfReport
from .analytic import measured_stats
from .driver import CATEGORIES, PredictTeam, drive

CALIBRATION_VERSION = 1

#: Machine kinds the v1 calibration artifact covers.  The fit grid runs
#: entirely on the CC-DSM Origin2000 model, so factors fitted there say
#: nothing about the BSP/multicore/AP1000 zoo members -- predicting them
#: with Origin2000 factors would be a silent mis-prediction.
CALIBRATED_KINDS = ("ccdsm",)


class UncalibratedMachineError(ValueError):
    """The predicted backend was asked about a machine configuration no
    calibration artifact covers.  Raised instead of silently predicting
    with factors fitted on a different machine."""

    def __init__(self, machine_kind: str, detail: str = ""):
        self.machine_kind = machine_kind
        msg = (
            f"no calibration artifact covers machine kind "
            f"{machine_kind!r} (calibrated kinds: "
            f"{', '.join(CALIBRATED_KINDS)})"
        )
        if detail:
            msg += f"; {detail}"
        super().__init__(msg)


def check_machine_calibrated(machine) -> None:
    """Reject machine configurations the calibration fit never saw.

    ``machine`` is a :class:`~repro.machine.config.MachineConfig` (typed
    loosely to avoid an import cycle).  A ``None`` machine means the
    backend default (Origin2000), which is always covered.
    """
    if machine is None:
        return
    kind = getattr(machine, "kind", "ccdsm")
    if kind not in CALIBRATED_KINDS:
        raise UncalibratedMachineError(
            kind,
            detail=(
                "use the simulated backend for zoo machines, or extend "
                "the calibration grid before predicting them"
            ),
        )

#: Where ``python -m repro calibrate`` persists by default and where the
#: loader looks before falling back to the packaged artifact.
USER_CALIBRATION = "calibration.json"
PACKAGED_DEFAULT = Path(__file__).with_name("calibration_default.json")

RADIX_MODELS = ("ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem")
SAMPLE_MODELS = ("ccsas", "mpi-new", "mpi-sgi", "shmem")

FACTOR_MIN, FACTOR_MAX = 0.1, 10.0


def report_totals(report: PerfReport) -> dict[str, float]:
    """Per-category nanoseconds summed over all processors."""
    return {
        "BUSY": float(sum(c.busy_ns for c in report.counters)),
        "LMEM": float(sum(c.lmem_ns for c in report.counters)),
        "RMEM": float(sum(c.rmem_ns for c in report.counters)),
        "SYNC": float(sum(c.sync_ns for c in report.counters)),
    }


@dataclass(frozen=True)
class Calibration:
    """Fitted per-(algorithm, model) exchange-phase overhead factors."""

    version: int = CALIBRATION_VERSION
    #: ``"radix/shmem" -> {"BUSY": f, "LMEM": f, "RMEM": f, "SYNC": f}``
    factors: dict[str, dict[str, float]] = field(default_factory=dict)
    #: ``"radix/shmem" -> {"median_abs_rel": e, "p95_abs_rel": e, "cells": k}``
    error: dict[str, dict[str, float]] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def factors_for(self, algorithm: str, model: str) -> dict[str, float] | None:
        return self.factors.get(f"{algorithm}/{model}")

    def error_band(self, algorithm: str, model: str) -> dict[str, float] | None:
        return self.error.get(f"{algorithm}/{model}")

    def worst_median_error(self) -> float:
        if not self.error:
            return float("nan")
        return max(e["median_abs_rel"] for e in self.error.values())

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "version": self.version,
            "factors": self.factors,
            "error": self.error,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "Calibration":
        version = int(doc.get("version", 0))
        if version != CALIBRATION_VERSION:
            raise ValueError(
                f"calibration artifact version {version} is not supported "
                f"(expected {CALIBRATION_VERSION}); re-run `repro calibrate`"
            )
        return cls(
            version=version,
            factors={k: dict(v) for k, v in doc.get("factors", {}).items()},
            error={k: dict(v) for k, v in doc.get("error", {}).items()},
            meta=dict(doc.get("meta", {})),
        )

    def save(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")
        return path


def default_calibration_path() -> Path:
    return default_cache_dir() / USER_CALIBRATION


def load_calibration(path: str | os.PathLike | None = None) -> Calibration | None:
    """Resolve the active calibration artifact (see module docstring);
    returns ``None`` when nothing is found (identity factors)."""
    candidates: list[Path] = []
    if path is not None:
        p = Path(path)
        if not p.is_file():
            raise FileNotFoundError(f"calibration artifact not found: {p}")
        candidates.append(p)
    else:
        env = os.environ.get("REPRO_CALIBRATION")
        if env:
            candidates.append(Path(env))
        candidates.append(default_calibration_path())
        candidates.append(PACKAGED_DEFAULT)
    for cand in candidates:
        if cand.is_file():
            return Calibration.from_json(json.loads(cand.read_text()))
    return None


# ----------------------------------------------------------------------
# Fitting
# ----------------------------------------------------------------------
def calibration_grid(small: bool = False) -> list[RunSpec]:
    """The cells the factors are fitted against: every algorithm x model
    at mixed sizes, processor counts and key distributions."""
    if small:
        sizes_p = [(1 << 18, 16)]
        dists = ["random", "gauss"]
    else:
        sizes_p = [(1 << 20, 16), (1 << 22, 64)]
        dists = ["random", "gauss", "zero"]
    specs: list[RunSpec] = []
    for algorithm, models, radix in (
        ("radix", RADIX_MODELS, 8),
        ("sample", SAMPLE_MODELS, 11),
    ):
        for model in models:
            for n, p in sizes_p:
                for dist in dists:
                    specs.append(
                        RunSpec(
                            algorithm, model, n, p, radix,
                            distribution=dist, max_actual=1 << 16,
                        )
                    )
    return specs


def _predict_cell(
    runner: ExperimentRunner,
    spec: RunSpec,
    keys: np.ndarray,
    factors: dict[str, float] | None,
) -> PredictTeam:
    """Predict one grid cell from the very key array the simulator saw
    (workload statistics exact; only the exchange closed form differs)."""
    from ..core.experiment import _spec_machine
    from ..data.distributions import KEY_BITS

    stats = measured_stats(
        keys, spec.algorithm, spec.n_procs, spec.radix,
        n_labeled=spec.n_labeled, key_bits=KEY_BITS,
    )
    team = PredictTeam(
        _spec_machine(spec), spec.n_procs, runner.costs,
        label=f"{spec.algorithm}/{spec.model}", factors=factors,
    )
    drive(team, spec.model, stats)
    return team


def fit_calibration(
    specs: list[RunSpec] | None = None,
    small: bool = False,
    runner: ExperimentRunner | None = None,
    parallel: int | None = None,
) -> Calibration:
    """Fit per-(algorithm, model) exchange factors against simulated
    cells, then re-predict with the factors to state the error bands."""
    from ..data.distributions import generate

    specs = specs if specs is not None else calibration_grid(small=small)
    runner = runner or ExperimentRunner(parallel=parallel)
    runner.run_many(specs, parallel=parallel)

    keys_memo: dict[tuple, np.ndarray] = {}

    def cell_keys(spec: RunSpec) -> np.ndarray:
        key_id = (
            spec.distribution, spec.n_actual, spec.n_procs, spec.radix, spec.seed
        )
        keys = keys_memo.get(key_id)
        if keys is None:
            keys = generate(
                spec.distribution, spec.n_actual, spec.n_procs,
                radix=spec.radix, seed=spec.seed,
            )
            keys_memo[key_id] = keys
        return keys

    # Pass 1: uncalibrated predictions; accumulate totals per group.
    groups: dict[str, dict[str, dict[str, float]]] = {}
    cells: dict[str, list[tuple[RunSpec, float]]] = {}
    for spec in specs:
        sim = runner.run(spec)
        team = _predict_cell(runner, spec, cell_keys(spec), factors=None)
        key = f"{spec.algorithm}/{spec.model}"
        acc = groups.setdefault(
            key,
            {
                "sim": {c: 0.0 for c in CATEGORIES},
                "pred": {c: 0.0 for c in CATEGORIES},
                "exch": {c: 0.0 for c in CATEGORIES},
            },
        )
        sim_tot = report_totals(sim.report)
        pred_tot = report_totals(team.report())
        for c in CATEGORIES:
            acc["sim"][c] += sim_tot[c]
            acc["pred"][c] += pred_tot[c]
            acc["exch"][c] += team.exchange_raw[c]
        cells.setdefault(key, []).append((spec, sim.time_ns))

    factors: dict[str, dict[str, float]] = {}
    for key, acc in groups.items():
        fs: dict[str, float] = {}
        for c in CATEGORIES:
            exch = acc["exch"][c]
            if exch <= 1e-6 * max(1.0, acc["pred"][c]):
                fs[c] = 1.0  # nothing to scale (e.g. pure CC-SAS groups)
                continue
            non_exch = acc["pred"][c] - exch
            fs[c] = float(
                np.clip((acc["sim"][c] - non_exch) / exch, FACTOR_MIN, FACTOR_MAX)
            )
        factors[key] = fs

    # Pass 2: per-cell error bands with the factors applied.
    error: dict[str, dict[str, float]] = {}
    for key, cell_list in cells.items():
        algorithm, model = key.split("/")
        rels = []
        for spec, sim_ns in cell_list:
            team = _predict_cell(
                runner, spec, cell_keys(spec), factors=factors[key]
            )
            pred_ns = float(team.elapsed_ns)
            rels.append(abs(pred_ns - sim_ns) / sim_ns)
        error[key] = {
            "median_abs_rel": float(np.median(rels)),
            "p95_abs_rel": float(np.percentile(rels, 95)),
            "cells": float(len(rels)),
        }

    return Calibration(
        version=CALIBRATION_VERSION,
        factors=factors,
        error=error,
        meta={
            "grid": "small" if small else "full",
            "n_cells": len(specs),
            "fitted_against": "simulated backend via ExperimentRunner",
        },
    )
