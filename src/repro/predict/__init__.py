"""Analytic performance prediction (the paper's §5 future work).

"Future work will include ... developing a formula (based on profiles)
to predict performance for each programming model."  This package is
that formula, promoted to a first-class backend:

- :mod:`~repro.predict.analytic` -- workload statistics (histograms,
  traffic matrices, localities) in closed form for uniform keys, or
  measured from real/model-drawn key arrays for any distribution family;
- :mod:`~repro.predict.exchange` -- a closed-form stand-in for the
  discrete-event MPI/SHMEM exchange (the simulator's only slow part);
- :mod:`~repro.predict.driver` -- replays the simulated sorters' exact
  phase sequence through the shared emission helpers;
- :mod:`~repro.predict.calibration` -- fits per-(algorithm, model)
  exchange overhead factors against simulated grid cells and states the
  resulting error bands;
- :mod:`~repro.predict.backend` -- the registered ``"predict"`` backend.

A paper-scale sweep (256M keys x 64 processors x every model) predicts
in well under a second; the DES stays available for spot checks via
``backend="sim"``.
"""

from .analytic import (
    LocalSortStats,
    RadixPassStats,
    WorkloadStats,
    family_stats,
    measured_stats,
    uniform_stats,
)
from .backend import PredictedBackend
from .calibration import (
    Calibration,
    calibration_grid,
    default_calibration_path,
    fit_calibration,
    load_calibration,
)
from .driver import PredictTeam, drive, predict_outcome, sequential_time_ns
from .exchange import PredictExecutor

__all__ = [
    "Calibration",
    "LocalSortStats",
    "PredictExecutor",
    "PredictTeam",
    "PredictedBackend",
    "RadixPassStats",
    "WorkloadStats",
    "calibration_grid",
    "default_calibration_path",
    "drive",
    "family_stats",
    "fit_calibration",
    "load_calibration",
    "measured_stats",
    "predict_outcome",
    "sequential_time_ns",
    "uniform_stats",
]
