"""Closed-form replacement for the DES exchange kernel.

The discrete-event exchange is the only expensive part of the simulator:
a single MPI all-to-all at p=64 schedules ~8k sender/receiver events.
Everything else the simulator charges (compute phases, collectives,
prefix trees, CC-SAS exchanges) is already closed form, so the predictor
subclasses :class:`~repro.smp.executor.PhaseExecutor` and overrides only
``_exchange_des`` with an O(p^2) matrix approximation of the same
accounting:

- Senders/getters walk their round-robin partner schedule serially, so a
  processor's own path is a row sum of per-partner costs (overhead,
  software copy, wire time).
- Link contention: each node's capacity-1 link must carry the summed
  wire time of every transfer routed through it, so a processor is
  queued for roughly the traffic of its node peers (``QUEUE_OVERLAP`` of
  it -- transfers do not align perfectly).
- MPI receivers drain a 1-deep channel per source: they finish shortly
  after the globally slowest sender, and the gap between that and their
  own busy/rmem time is SYNC -- the same derivation the DES uses.

The constants below were fitted against the DES on uniform and skewed
traffic matrices (see ``docs/PREDICT.md``); the per-category calibration
layer (:mod:`repro.predict.calibration`) absorbs the residual error.
"""

from __future__ import annotations

import numpy as np

from ..smp.executor import PhaseExecutor, PhaseOutcome
from ..smp.phases import ExchangePhase, Transport


class PredictExecutor(PhaseExecutor):
    """Phase executor with the DES exchange replaced by closed forms."""

    #: Fraction of competing same-link wire traffic a processor actually
    #: waits behind.  MPI senders pile up on their own node's outgoing
    #: link; SHMEM's round-robin partner schedule staggers link visits
    #: (each round targets a permutation of the sources), so one-sided
    #: transfers queue markedly less.
    QUEUE_OVERLAP_MPI = 0.5
    QUEUE_OVERLAP_SHMEM = 0.35
    #: Fraction of a receiver's final drain that extends the phase past
    #: the slowest sender; fitting put it at zero -- the drain fully
    #: overlaps the channel waits accumulated earlier in the round.
    RECV_TAIL = 0.0

    def _exchange_des(
        self,
        phase: ExchangePhase,
        start_offsets: np.ndarray,
        trace_t0_ns: float = 0.0,
    ) -> PhaseOutcome:
        p = phase.n_procs
        m = self.machine
        c = self.costs
        out = PhaseOutcome(p)
        bytes_m = np.asarray(phase.bytes_matrix, dtype=np.float64)
        chunks_m = np.asarray(phase.chunks_matrix, dtype=np.float64)
        offs = np.asarray(start_offsets, dtype=np.float64)

        # Same contention multiplier the DES applies to wire times.
        net = self._pad(bytes_m)
        transfer = self.interconnect.transfer(net)
        dir_bw = m.link_bw_bytes_per_ns / 2.0
        own = np.maximum(net.sum(axis=1), net.sum(axis=0)) / dir_bw
        peak_own = float(own.max(initial=0.0))
        gamma = 1.0
        if peak_own > 0 and transfer.bottleneck_ns > peak_own:
            gamma = transfer.bottleneck_ns / peak_own

        nodes = np.array([m.node_of(i) for i in range(p)])
        off_node = nodes[:, None] != nodes[None, :]
        diag_bytes = np.diag(bytes_m)

        if phase.transport.is_message_passing:
            busy, rmem, sync, messages = self._mpi_closed_form(
                phase, bytes_m, chunks_m, offs, gamma, dir_bw, nodes, off_node
            )
        else:
            busy, rmem, sync, messages = self._shmem_closed_form(
                phase, bytes_m, chunks_m, gamma, dir_bw, nodes, off_node
            )

        busy = busy + diag_bytes * c.copy_busy_ns_per_byte
        out.busy = busy
        out.rmem = rmem
        out.sync = sync
        out.messages = messages
        out.bytes_sent = net.sum(axis=1)
        return out

    # ------------------------------------------------------------------
    def _link_queue(
        self,
        wire: np.ndarray,
        link_node: np.ndarray,
        nodes: np.ndarray,
        overlap: float,
    ) -> np.ndarray:
        """Per-processor queueing estimate: ``QUEUE_OVERLAP`` of the wire
        traffic other processors route through the links this processor's
        transfers visit.  ``wire[i, j]`` is i's wire time for the (i, j)
        transfer; ``link_node[i, j]`` the node whose link carries it."""
        p = wire.shape[0]
        n_nodes = int(nodes.max()) + 1 if p else 0
        demand = np.zeros(n_nodes)
        np.add.at(demand, link_node.ravel(), wire.ravel())
        own_wire = wire.sum(axis=1)
        # Wire-weighted average demand over the links each processor
        # visits, minus its own contribution to them.
        visited = np.where(
            own_wire[:, None] > 0, wire / np.maximum(own_wire[:, None], 1e-30), 0.0
        )
        avg_demand = (visited * demand[link_node]).sum(axis=1)
        return overlap * np.maximum(0.0, avg_demand - own_wire)

    # ------------------------------------------------------------------
    def _mpi_closed_form(
        self,
        phase: ExchangePhase,
        bytes_m: np.ndarray,
        chunks_m: np.ndarray,
        offs: np.ndarray,
        gamma: float,
        dir_bw: float,
        nodes: np.ndarray,
        off_node: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        p = phase.n_procs
        c = self.costs
        sgi = phase.transport is Transport.MPI_SGI
        o = c.mpi_sgi_overhead_ns if sgi else c.mpi_new_overhead_ns

        active = chunks_m > 0
        np.fill_diagonal(active, False)
        k_eff = np.where(active, chunks_m, 0.0)
        k_msg = np.where(active, 1.0, 0.0) if phase.combine_messages else k_eff

        # Sender-side costs, per (source, destination) pair.
        send_busy = k_msg * o
        if sgi:
            send_busy = send_busy + np.where(active, bytes_m, 0.0) * (
                c.mpi_sgi_stage_ns_per_byte
            )
        per_byte = (
            max(0.0, c.mpi_sgi_ns_per_byte - c.mpi_sgi_stage_ns_per_byte)
            if sgi
            else c.mpi_new_ns_per_byte
        )
        xfer = active & off_node
        sw = np.where(xfer, bytes_m, 0.0) * per_byte
        wire = np.where(xfer, bytes_m, 0.0) / dir_bw * gamma
        # Chunks beyond the first stall in the 1-deep channel.
        if phase.combine_messages:
            drain_pen = np.zeros(p)
        else:
            drain_pen = (
                np.where(active, np.maximum(0.0, k_eff - 1.0), 0.0).sum(axis=1)
                * c.mpi_channel_drain_ns
            )

        # Senders contend at their own node's outgoing link.
        link_node = np.broadcast_to(nodes[:, None], (p, p))
        queue = self._link_queue(wire, link_node, nodes, self.QUEUE_OVERLAP_MPI)

        busy_send = send_busy.sum(axis=1)
        rmem = sw.sum(axis=1) + wire.sum(axis=1) + queue

        # Receiver-side drain work (column sums: i receives column i).
        if phase.combine_messages:
            recv = np.where(active, o + bytes_m * c.mpi_reorg_ns_per_byte, 0.0)
        else:
            place = c.mpi_sgi_stage_ns_per_byte if sgi else c.mpi_new_place_ns_per_byte
            recv = k_eff * o + np.where(active, bytes_m, 0.0) * place
        busy_recv = recv.sum(axis=0)

        # Sender and receiver of a processor run concurrently in the DES:
        # the wall clock follows the sender's serial path (its drain
        # stalls included), while receive-side drains overlap it -- so
        # receiver busy time eats into what would otherwise be SYNC.
        path = busy_send + rmem + drain_pen
        t_done = float(np.max(offs + path, initial=0.0))
        elapsed = np.maximum(path, t_done - offs + self.RECV_TAIL * busy_recv)
        busy = busy_send + busy_recv
        sync = np.maximum(0.0, elapsed - busy - rmem)
        return busy, rmem, sync, k_msg.sum(axis=1)

    # ------------------------------------------------------------------
    def _shmem_closed_form(
        self,
        phase: ExchangePhase,
        bytes_m: np.ndarray,
        chunks_m: np.ndarray,
        gamma: float,
        dir_bw: float,
        nodes: np.ndarray,
        off_node: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        p = phase.n_procs
        c = self.costs
        puts = phase.transport is Transport.SHMEM_PUT
        # Orient so row i holds processor i's transfers (i pushes row i
        # under put, pulls column i under get); the partner is the other
        # index either way.
        k = chunks_m if puts else chunks_m.T
        b = bytes_m if puts else bytes_m.T
        active = k > 0
        np.fill_diagonal(active, False)

        xfer = active & off_node
        sw = np.where(xfer, b, 0.0) * c.shmem_ns_per_byte
        lat = np.zeros((p, p))
        for i in range(p):
            for s in range(p):
                if xfer[i, s]:
                    lat[i, s] = self.interconnect.uncontended_latency_ns(i, s)
        wire = np.where(xfer, b, 0.0) / dir_bw * gamma + lat

        # Both puts and gets contend at the partner's node link.
        link_node = np.broadcast_to(nodes[None, :], (p, p))
        queue = self._link_queue(wire, link_node, nodes, self.QUEUE_OVERLAP_SHMEM)

        busy = (np.where(active, k, 0.0) * c.shmem_overhead_ns).sum(axis=1)
        rmem = sw.sum(axis=1) + wire.sum(axis=1) + queue
        # One-sided transfers never block on a partner: SYNC is zero,
        # exactly as in the DES (whose link waits land in RMEM too).
        sync = np.zeros(p)
        return busy, rmem, sync, np.where(active, k, 0.0).sum(axis=1)
