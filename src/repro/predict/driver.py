"""Phase driver: turns :class:`WorkloadStats` into a `PerfReport`.

The driver replays exactly the phase sequence the simulated sorters emit
-- through the *same* emission helpers (``radix_histogram_phase``,
``radix_permute_phase``, ``local_sort_pass_phase``) -- onto a
:class:`PredictTeam`, whose executor replaces only the discrete-event
exchange with the closed form of :mod:`repro.predict.exchange`.  Every
other phase (compute, collectives, prefix trees, CC-SAS exchanges,
barriers) is therefore bit-identical to the simulation; the prediction
differs from a simulated run only where the workload statistics are
approximate and inside MPI/SHMEM exchanges.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..data.distributions import KEY_BITS
from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..machine.memory import MemorySystem
from ..models import ProgrammingModel, get_model
from ..params import SAMPLES_PER_PROC, elem_bytes_for
from ..smp.phases import ExchangePhase, Transport, uniform_compute
from ..smp.team import Team
from ..sorts.local_sort import local_sort_pass_phase
from ..sorts.radix import (
    SortOutcome,
    default_machine,
    radix_histogram_phase,
    radix_permute_phase,
)
from ..sorts.sequential import default_sequential_machine, sequential_pass_ns
from ..sorts.common import n_passes
from .analytic import WorkloadStats
from .exchange import PredictExecutor

CATEGORIES = ("BUSY", "LMEM", "RMEM", "SYNC")


class PredictTeam(Team):
    """A team whose exchanges run on the closed-form executor, optionally
    rescaled by fitted per-category calibration factors.

    Only MPI/SHMEM exchanges are scaled: every other phase is computed by
    the very same code the simulator runs, so a factor there could only
    *introduce* error.  Scaling the outcome before it is applied keeps
    the sanitizer's accounting identity intact -- the phase record and
    the counters both derive from the scaled arrays.
    """

    def __init__(
        self,
        machine: MachineConfig,
        n_procs: int | None = None,
        costs: CostModel = DEFAULT_COSTS,
        label: str = "",
        factors: dict[str, float] | None = None,
    ):
        super().__init__(machine, n_procs, costs, label=label)
        self.executor = PredictExecutor(machine, costs)
        self.factors = factors
        #: Uncalibrated per-category exchange totals (ns summed over
        #: processors) -- what the calibration fit solves against.
        self.exchange_raw = {cat: 0.0 for cat in CATEGORIES}

    def exchange(self, phase: ExchangePhase) -> None:
        if phase.transport.is_ccsas:
            super().exchange(phase)
            return
        offsets = self.clock - self.clock.min()
        outcome = self.executor.exchange(
            phase, offsets, trace_t0_ns=float(self.clock.min())
        )
        self.exchange_raw["BUSY"] += float(outcome.busy.sum())
        self.exchange_raw["LMEM"] += float(outcome.lmem.sum())
        self.exchange_raw["RMEM"] += float(outcome.rmem.sum())
        self.exchange_raw["SYNC"] += float(outcome.sync.sum())
        if self.factors:
            outcome.busy *= self.factors.get("BUSY", 1.0)
            outcome.lmem *= self.factors.get("LMEM", 1.0)
            outcome.rmem *= self.factors.get("RMEM", 1.0)
            outcome.sync *= self.factors.get("SYNC", 1.0)
        self._apply(phase.name, outcome)


# ----------------------------------------------------------------------
# Algorithm drivers (mirror ParallelRadixSort.run / ParallelSampleSort.run)
# ----------------------------------------------------------------------
def _drive_radix(team: Team, model: ProgrammingModel, stats: WorkloadStats) -> None:
    p = team.n_procs
    n_per = stats.n // p
    nb = 1 << stats.radix
    elem_bytes = elem_bytes_for(stats.key_bits)
    l2 = team.machine.l2.size_bytes
    fits = n_per * elem_bytes <= l2
    shmem_cached = model.exchange_transport is Transport.SHMEM_GET
    for k, ps in enumerate(stats.radix_passes):
        tag = f"pass{k}"
        warm_in = fits and k > 0 and shmem_cached
        radix_histogram_phase(team, tag, n_per, warm_in, elem_bytes)
        model.accumulate_histograms(team, nb, tag)
        radix_permute_phase(
            team, model, tag, n_per, stats.n,
            ps.active_buckets, ps.locality, ps.comm, fits, elem_bytes,
        )
        team.barrier(f"{tag}.barrier")


def _drive_sample(team: Team, model: ProgrammingModel, stats: WorkloadStats) -> None:
    p = team.n_procs
    c = team.costs
    n_per = stats.n // p
    elem_bytes = elem_bytes_for(stats.key_bits)
    ls1, ls2 = stats.local1, stats.local2

    for k in range(stats.passes):
        local_sort_pass_phase(
            team, "localsort1", k, ls1.counts, ls1.actives[k], ls1.localities[k],
            elem_bytes=elem_bytes,
        )
    team.compute(
        uniform_compute(
            "sample-select",
            np.full(p, SAMPLES_PER_PROC * c.splitter_busy_ns_per_key),
        )
    )
    model.gather_samples(team, float(SAMPLES_PER_PROC * elem_bytes), "splitters")
    team.compute(
        uniform_compute(
            "decide", np.full(p, np.log2(max(2, n_per)) * (p - 1) * 30.0)
        )
    )
    model.exchange_for_sample(team, "distribute", stats.distribute, locality=1.0)
    sample_tp = model.sample_transport or model.exchange_transport
    got_cached = sample_tp in (Transport.SHMEM_GET, Transport.CCSAS_READ)
    for k in range(stats.passes):
        local_sort_pass_phase(
            team, "localsort2", k, ls2.counts, ls2.actives[k], ls2.localities[k],
            received_cached=got_cached, elem_bytes=elem_bytes,
        )
    team.barrier("final")


def drive(team: Team, model: ProgrammingModel | str, stats: WorkloadStats) -> None:
    """Emit the full phase sequence of ``stats`` onto ``team``."""
    mdl = get_model(model) if isinstance(model, str) else model
    if stats.algorithm == "radix":
        _drive_radix(team, mdl, stats)
    else:
        _drive_sample(team, mdl, stats)


def predict_outcome(
    stats: WorkloadStats,
    model: ProgrammingModel | str,
    machine: MachineConfig | None = None,
    costs: CostModel = DEFAULT_COSTS,
    factors: dict[str, float] | None = None,
    sorted_keys: np.ndarray | None = None,
) -> SortOutcome:
    """Predict a sort run from its workload statistics."""
    mdl = get_model(model) if isinstance(model, str) else model
    machine = machine or default_machine(stats.p)
    team = PredictTeam(
        machine, stats.p, costs,
        label=f"{stats.algorithm}/{mdl.name}", factors=factors,
    )
    drive(team, mdl, stats)
    return SortOutcome(
        sorted_keys=(
            sorted_keys if sorted_keys is not None else np.empty(0, dtype=np.int64)
        ),
        report=team.report(),
        algorithm=stats.algorithm,
        model_name=mdl.name,
        radix=stats.radix,
        n_labeled=stats.n,
        n_procs=stats.p,
        passes=stats.passes,
    )


# ----------------------------------------------------------------------
# Sequential baseline (closed form, memoized)
# ----------------------------------------------------------------------
@lru_cache(maxsize=256)
def sequential_time_ns(
    n: int,
    radix: int = 8,
    costs: CostModel = DEFAULT_COSTS,
    key_bits: int = KEY_BITS,
) -> float:
    """Analytic uniprocessor radix-sort time for uniform keys: the same
    per-pass cost the measured baseline charges
    (:func:`repro.sorts.sequential.sequential_pass_ns`) at the uniform
    closed-form destination locality ``2^-radix``."""
    machine = default_sequential_machine()
    memsys = MemorySystem(machine, costs)
    locality = 1.0 / (1 << radix)
    return n_passes(radix, key_bits) * sequential_pass_ns(
        memsys, costs, n, radix, locality
    )
