"""Top-level public API.

The main entry point is :func:`sort` -- one call that runs a parallel
sort on either execution substrate behind the unified
:class:`~repro.backend.Backend` seam:

- ``backend="sim"`` sorts on the simulated cache-coherent DSM machine
  under a chosen algorithm/programming model and reports simulated
  per-processor time (the paper's BUSY/LMEM/RMEM/SYNC accounting);
- ``backend="native"`` sorts for real across host processes and reports
  measured wall-clock per-worker time in the same report shape.

Pass ``trace=True`` (or a :class:`~repro.trace.TraceRecorder`) to capture
a structured event trace; export it with
:func:`repro.trace.write_chrome_trace`.

:func:`simulate_sort` and :func:`compare_models` are the pre-Backend
entry points, kept as thin deprecated shims.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..backend import ALGORITHMS, SortJob, SortResult, get_backend, infer_key_bits
from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..sorts.radix import SortOutcome
from ..sorts.sequential import SequentialResult, sequential_radix_sort
from ..trace import MemoryRecorder, TraceRecorder

__all__ = [
    "ALGORITHMS",
    "compare_models",
    "sequential_baseline",
    "simulate_sort",
    "sort",
]


def sort(
    keys: np.ndarray,
    algorithm: str = "radix",
    backend: str = "sim",
    *,
    model: str = "shmem",
    n_procs: int | None = None,
    radix: int | None = None,
    machine: MachineConfig | None = None,
    costs: CostModel = DEFAULT_COSTS,
    n_labeled: int | None = None,
    key_bits: int | None = None,
    distribution: str | None = None,
    payload: np.ndarray | None = None,
    trace: bool | TraceRecorder = False,
) -> SortResult:
    """Sort ``keys`` on the chosen backend and report where time goes.

    Parameters
    ----------
    keys:
        One-dimensional keys.  The simulated backend requires
        non-negative integers whose length divides evenly by ``n_procs``;
        the native sample sort accepts any sortable dtype.  The predicted
        backend additionally accepts an *empty* array together with
        ``distribution=`` and ``n_labeled=`` to predict a paper-scale run
        without materializing its keys.
    algorithm:
        ``"radix"`` or ``"sample"``.
    backend:
        ``"sim"`` (simulated DSM machine), ``"native"`` (real host
        processes) or ``"predict"`` (calibrated analytic model).
    model:
        Simulated backend only: ``"ccsas"``, ``"ccsas-new"``,
        ``"mpi-new"``, ``"mpi-sgi"`` or ``"shmem"``.
    n_procs:
        Simulated processors (16/32/64 in the paper; default 64) or
        native worker processes (default: all cores, see
        ``REPRO_WORKERS``).
    radix:
        Radix-digit width; defaults to the backend/algorithm's tuned
        choice.
    machine, costs, n_labeled:
        Simulated/predicted backends only: machine description, cost
        constants, and the labeled size for scale extrapolation (see
        DESIGN.md).
    key_bits:
        Significant key bits (default: inferred from the keys).
    distribution:
        Predicted backend only: distribution family name for key-free
        prediction (see ``repro.data.generate``).
    payload:
        Record sorts: an array of the same length permuted alongside the
        keys (returned in the result's ``payload`` field).  Handled at
        the backend seam, so every backend supports it.
    trace:
        ``True`` records a structured trace into the result's ``trace``
        field; a :class:`~repro.trace.TraceRecorder` records into that
        recorder instead.

    Returns
    -------
    SortResult
        Sorted keys, a :class:`~repro.smp.perf.PerfReport`, and the
        captured trace events (if tracing was requested).
    """
    recorder: TraceRecorder | None
    if trace is True:
        recorder = MemoryRecorder()
    elif trace is False or trace is None:
        recorder = None
    else:
        recorder = trace
    job = SortJob(
        keys=np.asarray(keys),
        algorithm=algorithm,
        model=model,
        n_procs=n_procs,
        radix=radix,
        machine=machine,
        costs=costs,
        n_labeled=n_labeled,
        key_bits=key_bits,
        distribution=distribution,
        payload=None if payload is None else np.asarray(payload),
    )
    return get_backend(backend).run(job, recorder=recorder)


def sequential_baseline(
    keys: np.ndarray,
    radix: int = 8,
    n_labeled: int | None = None,
    machine: MachineConfig | None = None,
    costs: CostModel = DEFAULT_COSTS,
) -> SequentialResult:
    """The paper's shared uniprocessor baseline for speedup computation."""
    keys = np.asarray(keys)
    return sequential_radix_sort(
        keys, radix=radix, n_labeled=n_labeled, machine=machine, costs=costs,
        key_bits=infer_key_bits(keys),
    )


# ----------------------------------------------------------------------
# Deprecated pre-Backend entry points (thin shims over sort())
# ----------------------------------------------------------------------
def simulate_sort(
    keys: np.ndarray,
    algorithm: str = "radix",
    model: str = "shmem",
    n_procs: int = 64,
    radix: int | None = None,
    machine: MachineConfig | None = None,
    costs: CostModel = DEFAULT_COSTS,
    n_labeled: int | None = None,
) -> SortOutcome:
    """Deprecated: use ``sort(keys, backend="sim", ...)``.

    Returns the simulation's :class:`~repro.sorts.radix.SortOutcome` as
    before; new code should use the backend-agnostic
    :class:`~repro.backend.SortResult` from :func:`sort`.
    """
    warnings.warn(
        "simulate_sort() is deprecated; use repro.core.api.sort("
        "keys, backend='sim', ...) which returns a SortResult",
        DeprecationWarning,
        stacklevel=2,
    )
    result = sort(
        keys,
        algorithm=algorithm,
        backend="sim",
        model=model,
        n_procs=n_procs,
        radix=radix,
        machine=machine,
        costs=costs,
        n_labeled=n_labeled,
    )
    assert result.outcome is not None
    return result.outcome


def compare_models(
    keys: np.ndarray,
    algorithm: str = "radix",
    models: list[str] | None = None,
    **kwargs,
) -> dict[str, SortOutcome]:
    """Deprecated: run the same workload under several programming models.

    Use ``sort(keys, backend="sim", model=...)`` per model instead.
    """
    warnings.warn(
        "compare_models() is deprecated; call repro.core.api.sort() with "
        "backend='sim' once per model",
        DeprecationWarning,
        stacklevel=2,
    )
    if models is None:
        models = (
            ["ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem"]
            if algorithm == "radix"
            else ["ccsas", "mpi-new", "mpi-sgi", "shmem"]
        )
    out: dict[str, SortOutcome] = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for m in models:
            out[m] = simulate_sort(keys, algorithm=algorithm, model=m, **kwargs)
    return out
