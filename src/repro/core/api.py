"""Top-level public API.

Two entry points:

- :func:`simulate_sort` -- sort a NumPy array on the simulated
  cache-coherent DSM machine under a chosen algorithm/programming model,
  returning both the sorted keys and a per-processor performance report
  (the paper's BUSY/LMEM/RMEM/SYNC accounting).
- :func:`compare_models` -- run the same workload under several models and
  return their outcomes side by side.

For actually-parallel sorting of large arrays on the host machine, see
:mod:`repro.native`.
"""

from __future__ import annotations

import numpy as np

from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..sorts.radix import ParallelRadixSort, SortOutcome, default_machine
from ..sorts.sample import ParallelSampleSort
from ..sorts.sequential import SequentialResult, sequential_radix_sort

ALGORITHMS = ("radix", "sample")


def simulate_sort(
    keys: np.ndarray,
    algorithm: str = "radix",
    model: str = "shmem",
    n_procs: int = 64,
    radix: int | None = None,
    machine: MachineConfig | None = None,
    costs: CostModel = DEFAULT_COSTS,
    n_labeled: int | None = None,
) -> SortOutcome:
    """Sort ``keys`` on the simulated machine and report where time goes.

    Parameters
    ----------
    keys:
        Non-negative integer keys (the paper's workloads are 31-bit).
        The array length must divide evenly by ``n_procs``.
    algorithm:
        ``"radix"`` or ``"sample"``.
    model:
        ``"ccsas"``, ``"ccsas-new"`` (radix only in the paper, accepted for
        both), ``"mpi-new"``, ``"mpi-sgi"`` or ``"shmem"``.
    n_procs:
        Simulated processor count (16/32/64 in the paper).
    radix:
        Radix-digit width; defaults to the paper's best choice per
        algorithm (8 for radix sort, 11 for sample sort).
    machine:
        Machine description; defaults to the 64-processor Origin2000.
    n_labeled:
        Model the performance of this many keys while functionally sorting
        the (smaller) ``keys`` array -- the scale-extrapolation mechanism
        used by the paper-reproduction experiments.  Defaults to
        ``len(keys)``.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if len(keys) == 0:
        raise ValueError("keys must be non-empty")
    if np.issubdtype(keys.dtype, np.signedinteger) and keys.min() < 0:
        raise ValueError("keys must be non-negative")
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError("radix/sample sorting requires integer keys")
    if algorithm == "radix":
        sorter = ParallelRadixSort(model, radix=radix if radix is not None else 8)
    elif algorithm == "sample":
        sorter = ParallelSampleSort(model, radix=radix if radix is not None else 11)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
    key_bits = max(1, int(keys.max()).bit_length()) if len(keys) else 1
    return sorter.run(
        keys,
        n_procs=n_procs,
        machine=machine or default_machine(n_procs),
        costs=costs,
        n_labeled=n_labeled,
        key_bits=key_bits,
    )


def sequential_baseline(
    keys: np.ndarray,
    radix: int = 8,
    n_labeled: int | None = None,
    machine: MachineConfig | None = None,
    costs: CostModel = DEFAULT_COSTS,
) -> SequentialResult:
    """The paper's shared uniprocessor baseline for speedup computation."""
    keys = np.asarray(keys)
    key_bits = max(1, int(keys.max()).bit_length()) if len(keys) else 1
    return sequential_radix_sort(
        keys, radix=radix, n_labeled=n_labeled, machine=machine, costs=costs,
        key_bits=key_bits,
    )


def compare_models(
    keys: np.ndarray,
    algorithm: str = "radix",
    models: list[str] | None = None,
    **kwargs,
) -> dict[str, SortOutcome]:
    """Run the same workload under several programming models."""
    if models is None:
        models = (
            ["ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem"]
            if algorithm == "radix"
            else ["ccsas", "mpi-new", "mpi-sgi", "shmem"]
        )
    return {
        m: simulate_sort(keys, algorithm=algorithm, model=m, **kwargs)
        for m in models
    }
