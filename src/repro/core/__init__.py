"""Public API and experiment grid runner."""

from .api import compare_models, sequential_baseline, simulate_sort, sort
from .predict import predict_speedup, predict_time
from .experiment import (
    PROC_COUNTS,
    SIZE_ORDER,
    SIZES,
    ExperimentRunner,
    RunSpec,
    paper_page_bytes,
)

__all__ = [
    "ExperimentRunner",
    "PROC_COUNTS",
    "RunSpec",
    "SIZE_ORDER",
    "SIZES",
    "compare_models",
    "paper_page_bytes",
    "predict_speedup",
    "predict_time",
    "sequential_baseline",
    "simulate_sort",
    "sort",
]
