"""Deprecated closed-form prediction entry points.

The predictor grew into the :mod:`repro.predict` package (workload
statistics, closed-form exchange, calibration, and the registered
``"predict"`` backend); these wrappers keep the original
``predict_time`` / ``predict_speedup`` signatures working.  Prefer::

    from repro.backend import SortJob, get_backend
    get_backend("predict").run(SortJob(...))

or :func:`repro.predict.predict_outcome` for report-level access.
"""

from __future__ import annotations

import warnings

from ..data.distributions import KEY_BITS
from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..predict.analytic import uniform_stats
from ..predict.driver import predict_outcome, sequential_time_ns
from ..sorts.radix import default_machine


def _deprecated(name: str) -> None:
    warnings.warn(
        f"{name} is deprecated; use repro.predict (or the 'predict' "
        "backend) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def predict_time(
    algorithm: str,
    model: str,
    n: int,
    n_procs: int,
    radix: int | None = None,
    machine: MachineConfig | None = None,
    costs: CostModel = DEFAULT_COSTS,
    key_bits: int = KEY_BITS,
) -> float:
    """Deprecated: predicted execution time (ns) for uniform random keys.

    Thin shim over :mod:`repro.predict` -- closed-form uniform workload
    statistics driven through the shared phase-emission helpers
    (uncalibrated, matching the historical behavior of this function).
    """
    _deprecated("predict_time")
    r = radix if radix is not None else (8 if algorithm == "radix" else 11)
    stats = uniform_stats(algorithm, n, n_procs, r, key_bits)
    outcome = predict_outcome(
        stats, model, machine=machine or default_machine(n_procs), costs=costs
    )
    return outcome.time_ns


def predict_speedup(
    algorithm: str,
    model: str,
    n: int,
    n_procs: int,
    radix: int | None = None,
    baseline_radix: int = 8,
    costs: CostModel = DEFAULT_COSTS,
) -> float:
    """Deprecated: predicted speedup over the uniprocessor baseline.

    The baseline is the memoized analytic sequential time
    (:func:`repro.predict.sequential_time_ns`), sharing its per-pass cost
    model with :mod:`repro.sorts.sequential`.
    """
    _deprecated("predict_speedup")
    seq_ns = sequential_time_ns(n, baseline_radix, costs)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        pred_ns = predict_time(algorithm, model, n, n_procs, radix, costs=costs)
    return seq_ns / pred_ns
