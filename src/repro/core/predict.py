"""Closed-form performance prediction (the paper's stated future work).

Section 5: "Future work will include ... developing a formula (based on
profiles) to predict performance for each programming model."  This module
implements that: :func:`predict_time` estimates the execution time of
either sorting algorithm under any programming model for a *uniform
random* key workload, without sorting anything -- it feeds analytically
derived histograms and traffic matrices through the same phase executor
the simulation uses.

Under uniform keys the per-pass structure is known in closed form:

- every process's digit histogram is ~n/(p * 2^r) per bucket;
- the permutation moves bytes_ij = 4 n / p^2 between every pair;
- process i sends each destination ~2^r/p chunks, thinned by the Poisson
  occupancy 1 - exp(-lambda) when buckets outnumber keys;
- sample sort's distribution is one chunk per pair with balanced counts.

``tests/core/test_predict.py`` checks the prediction against the full
simulation on random keys.
"""

from __future__ import annotations

import math

import numpy as np

from ..data.distributions import KEY_BITS
from ..machine.access import BucketedAppend, SequentialScan
from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..machine.memory import HomeLocation
from ..models import get_model
from ..params import ELEM_BYTES, SAMPLES_PER_PROC
from ..smp.phases import uniform_compute
from ..smp.team import Team
from ..sorts.common import CommMatrices, n_passes
from ..sorts.radix import default_machine


def _uniform_radix_comm(n: int, p: int, radix: int) -> CommMatrices:
    """Expected traffic of one radix pass over uniform random keys."""
    nb = 1 << radix
    bytes_m = np.full((p, p), n / (p * p) * ELEM_BYTES)
    # Cells per (source, destination) block and their expected occupancy.
    cells = nb / p
    lam = n / (p * nb)  # expected keys per (process, digit) cell
    occupied = cells * (1.0 - math.exp(-lam)) if lam < 30 else cells
    chunks = np.full((p, p), max(occupied, 1e-9))
    return CommMatrices(bytes_m, chunks)


def predict_time(
    algorithm: str,
    model: str,
    n: int,
    n_procs: int,
    radix: int | None = None,
    machine: MachineConfig | None = None,
    costs: CostModel = DEFAULT_COSTS,
    key_bits: int = KEY_BITS,
) -> float:
    """Predicted execution time (ns) for uniform random keys.

    Mirrors the simulated sorts phase-for-phase but derives every
    histogram and traffic matrix analytically.
    """
    if algorithm not in ("radix", "sample"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if n <= 0 or n_procs <= 0 or n % n_procs != 0:
        raise ValueError("n must be a positive multiple of n_procs")
    r = radix if radix is not None else (8 if algorithm == "radix" else 11)
    if not 1 <= r <= 16:
        raise ValueError("radix must be in [1, 16]")
    machine = machine or default_machine(n_procs)
    mdl = get_model(model)
    team = Team(machine, n_procs, costs, label=f"predict/{algorithm}/{model}")

    p = n_procs
    n_per = n // p
    nb = 1 << r
    passes = n_passes(r, key_bits)
    locality = 1.0 / nb  # uniform keys: P(same digit as predecessor)
    l2 = machine.l2.size_bytes
    fits = n_per * ELEM_BYTES <= l2
    local = HomeLocation.local()

    def hist_phase(tag: str, counts: np.ndarray, resident: bool) -> None:
        busy = costs.hist_busy_ns_per_key * counts
        pats = [
            [(SequentialScan(int(c), ELEM_BYTES, resident=resident), local)]
            for c in counts
        ]
        team.compute(uniform_compute(f"{tag}.histogram", busy, pats))

    def permute_phase(tag: str, counts: np.ndarray, span_per: float) -> None:
        busy = costs.permute_busy_ns_per_key * counts
        pats = []
        for c in counts:
            c_int = int(c)
            pats.append(
                [
                    (SequentialScan(c_int, ELEM_BYTES, resident=fits), local),
                    (
                        BucketedAppend(
                            c_int, nb, ELEM_BYTES,
                            int(max(span_per, 1)), locality=locality,
                        ),
                        local,
                    ),
                ]
            )
        team.compute(uniform_compute(f"{tag}.permute", busy, pats))

    uniform_counts = np.full(p, float(n_per))
    if algorithm == "radix":
        comm = _uniform_radix_comm(n, p, r)
        for k in range(passes):
            tag = f"pass{k}"
            hist_phase(tag, uniform_counts, resident=False)
            mdl.accumulate_histograms(team, nb, tag)
            permute_phase(tag, uniform_counts, n_per * ELEM_BYTES)
            mdl.exchange(
                team, f"{tag}.exchange", comm,
                locality=1.0 if mdl.buffers_locally else locality,
                writer_buckets=0 if mdl.buffers_locally else nb,
                span_bytes=float(n * ELEM_BYTES),
            )
            team.barrier(f"{tag}.barrier")
    else:
        # Local sort 1: `passes` histogram+permute rounds per process.
        for k in range(passes):
            hist_phase(f"ls1.{k}", uniform_counts, resident=k > 0 and fits)
            permute_phase(f"ls1.{k}", uniform_counts, n_per * ELEM_BYTES)
        team.compute(
            uniform_compute(
                "sample-select",
                np.full(p, SAMPLES_PER_PROC * costs.splitter_busy_ns_per_key),
            )
        )
        mdl.gather_samples(team, float(SAMPLES_PER_PROC * ELEM_BYTES), "splitters")
        team.compute(
            uniform_compute(
                "decide", np.full(p, math.log2(max(2, n_per)) * (p - 1) * 30.0)
            )
        )
        comm = CommMatrices(
            np.full((p, p), n / (p * p) * ELEM_BYTES), np.ones((p, p))
        )
        mdl.exchange_for_sample(team, "distribute", comm, locality=1.0)
        for k in range(passes):
            hist_phase(f"ls2.{k}", uniform_counts, resident=True)
            permute_phase(f"ls2.{k}", uniform_counts, n_per * ELEM_BYTES)
        team.barrier("final")

    return team.elapsed_ns


def predict_speedup(
    algorithm: str,
    model: str,
    n: int,
    n_procs: int,
    radix: int | None = None,
    baseline_radix: int = 8,
    costs: CostModel = DEFAULT_COSTS,
) -> float:
    """Predicted speedup over the uniprocessor radix-sort baseline."""
    from ..sorts.sequential import default_sequential_machine

    machine1 = default_sequential_machine()
    nb = 1 << baseline_radix
    memsys_team = Team(machine1, 1, costs)
    counts = np.array([float(n)])
    locality = 1.0 / nb
    for k in range(n_passes(baseline_radix)):
        busy_h = costs.hist_busy_ns_per_key * counts
        busy_p = costs.permute_busy_ns_per_key * counts
        memsys_team.compute(
            uniform_compute(
                f"seq{k}.h",
                busy_h,
                [[(SequentialScan(n, ELEM_BYTES), HomeLocation.local())]],
            )
        )
        memsys_team.compute(
            uniform_compute(
                f"seq{k}.p",
                busy_p,
                [[
                    (SequentialScan(n, ELEM_BYTES), HomeLocation.local()),
                    (
                        BucketedAppend(n, nb, ELEM_BYTES, n * ELEM_BYTES,
                                       locality=locality),
                        HomeLocation.local(),
                    ),
                ]],
            )
        )
    seq_ns = memsys_team.elapsed_ns
    return seq_ns / predict_time(algorithm, model, n, n_procs, radix, costs=costs)
