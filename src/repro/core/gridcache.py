"""Content-addressed on-disk cache for experiment grid cells.

Every figure/table of the paper is a cell of the same grid (algorithm x
model x size x p x radix x distribution), and the in-process memo of
:class:`~repro.core.experiment.ExperimentRunner` forgets everything at
exit.  :class:`GridCache` persists each cell's payload
(:class:`~repro.sorts.radix.SortOutcome`,
:class:`~repro.sorts.sequential.SequentialResult`) on disk, keyed by a
stable digest of everything that determines the result:

- the grid-cell key material (``RunSpec`` fields, sequential-baseline
  parameters),
- the :class:`~repro.machine.config.MachineConfig` the cell runs on,
- the :class:`~repro.machine.costs.CostModel` calibration constants,
- a fingerprint of the ``repro`` package's own source code, so editing
  any model/simulator module invalidates every cached result, and
- the entry schema version (:data:`SCHEMA_VERSION`).

The cache is shared between processes (the parallel ``run_many`` workers
write to it concurrently) and between invocations, so a repeated
``python -m repro table2`` is served from disk.  Loads are
corruption-tolerant by design: a truncated, bit-flipped, unpicklable or
schema-mismatched entry is treated as a miss (and deleted), never an
error -- the worst a bad cache can do is cost a recompute.  The fault
sites ``cache.corrupt``, ``cache.enospc`` and ``cache.eacces``
(:mod:`repro.faults`, docs/FAULTS.md) exercise exactly these degrade
paths deterministically.

Layout::

    <root>/v<SCHEMA_VERSION>/<kind>/<digest[:2]>/<digest>.pkl

where ``<root>`` is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro`` and
``kind`` groups entries ("run" for parallel grid cells, "seq" for
sequential baselines).  Each file is a small framed container::

    MAGIC | sha256(body) | body = pickle({schema, kind, fingerprint,
                                          key, payload})

Inspect and manage it with ``python -m repro cache {stats,clear,gc}``.
See docs/CACHE.md for the invalidation rules.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
import tempfile
import time
import zlib
from pathlib import Path
from typing import Any, Iterator

from ..faults.context import current_fault_plan
from ..trace import PID_FAULTS, current_recorder

#: Bump when the entry framing or payload schema changes; old versions
#: live in sibling ``v<N>`` directories and are reaped by ``gc``.
SCHEMA_VERSION = 1

#: File magic: identifies the framing so stray files are never unpickled.
_MAGIC = b"repro-cache\x01"

_DIGEST_BYTES = 32  # sha256


def _maybe_injected_fault(site: str) -> bool:
    """Probe the ambient fault plan at a cache site (see repro.faults).

    The cache degrades by contract -- a corrupt read is a miss, a failed
    store is dropped -- so an injected fault here is recovered the moment
    it fires; the plan's recovery counter is noted immediately.
    """
    plan = current_fault_plan()
    if plan is None or not plan.should(site):
        return False
    rec = current_recorder()
    if rec.enabled:
        rec.instant(
            f"fault.{site}",
            cat="fault.inject",
            ts_us=time.perf_counter() * 1e6,
            pid=PID_FAULTS,
        )
    plan.note_recovered(site)
    return True


# ----------------------------------------------------------------------
# Cache directory and code fingerprint
# ----------------------------------------------------------------------
def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


_fingerprint: str | None = None


def code_fingerprint() -> str:
    """Digest of every ``.py`` source in the installed ``repro`` package.

    Any edit to the simulator, cost model, sorts or data generators
    changes this value and therefore every cache key -- results computed
    by old code can never be served for new code.  Computed once per
    process.
    """
    global _fingerprint
    if _fingerprint is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\x00")
            h.update(path.read_bytes())
            h.update(b"\x00")
        _fingerprint = h.hexdigest()
    return _fingerprint


# ----------------------------------------------------------------------
# Canonical key material
# ----------------------------------------------------------------------
def canonical_key(obj: Any) -> Any:
    """Reduce key material to JSON-stable plain data.

    Dataclasses (``RunSpec``, ``MachineConfig``, ``CostModel``, nested
    cache/TLB configs) become ``{"__dataclass__": name, **fields}`` maps
    so that two *different* types with identical field values cannot
    alias each other's entries.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {"__dataclass__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical_key(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(k): canonical_key(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonical_key(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"unhashable cache key material: {type(obj).__name__}")


@dataclasses.dataclass
class CacheStats:
    """In-process counters plus an on-disk inventory snapshot."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0  # corrupt entries encountered (treated as misses)

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class GridCache:
    """Content-addressed persistent result cache (see module docstring).

    All I/O failure modes degrade to cache misses or dropped stores; a
    read-only or unwritable cache directory disables persistence without
    affecting results.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def key_digest(self, kind: str, key_material: dict[str, Any]) -> str:
        """Stable hex digest of one entry's full identity."""
        doc = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "fingerprint": code_fingerprint(),
            "key": canonical_key(key_material),
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{SCHEMA_VERSION}"

    def path_for(self, kind: str, digest: str) -> Path:
        return self.version_dir / kind / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------
    # Get / put
    # ------------------------------------------------------------------
    def get(self, kind: str, key_material: dict[str, Any]) -> Any | None:
        """The stored payload, or ``None`` on any miss (including a
        corrupt or stale entry, which is removed)."""
        digest = self.key_digest(kind, key_material)
        path = self.path_for(kind, digest)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        if _maybe_injected_fault("cache.corrupt"):
            # Degrade-to-recompute, exactly as a genuinely corrupt frame
            # would -- but keep the (actually fine) on-disk entry.
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        entry = self._decode(raw)
        if (
            entry is None
            or entry.get("schema") != SCHEMA_VERSION
            or entry.get("kind") != kind
            or entry.get("fingerprint") != code_fingerprint()
        ):
            self.stats.errors += 1
            self.stats.misses += 1
            self._remove(path)
            return None
        self.stats.hits += 1
        return entry["payload"]

    def put(self, kind: str, key_material: dict[str, Any], payload: Any) -> bool:
        """Store ``payload``; returns False (without raising) if the
        cache directory is unwritable or the payload cannot pickle."""
        digest = self.key_digest(kind, key_material)
        path = self.path_for(kind, digest)
        entry = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "fingerprint": code_fingerprint(),
            "key": canonical_key(key_material),
            "payload": payload,
        }
        try:
            body = zlib.compress(
                pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL), 1
            )
        except Exception:
            self.stats.errors += 1
            return False
        framed = _MAGIC + hashlib.sha256(body).digest() + body
        if _maybe_injected_fault("cache.enospc") or _maybe_injected_fault(
            "cache.eacces"
        ):
            # Dropped store, exactly as the OSError path below.
            self.stats.errors += 1
            return False
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: concurrent run_many workers racing on the
            # same cell each write a private temp file; the losing rename
            # simply replaces an identical entry.
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(framed)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        return True

    def invalidate(self, kind: str, key_material: dict[str, Any]) -> None:
        """Drop one entry (used when a loaded payload fails validation)."""
        self._remove(self.path_for(kind, self.key_digest(kind, key_material)))

    # ------------------------------------------------------------------
    # Maintenance: stats / clear / gc
    # ------------------------------------------------------------------
    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        yield from self.root.glob("v*/*/*/*.pkl")

    def disk_stats(self) -> dict[str, Any]:
        """Inventory of what is on disk right now."""
        by_kind: dict[str, int] = {}
        total_bytes = 0
        n = 0
        stale = 0
        for path in self._entries():
            n += 1
            kind = path.parent.parent.name
            by_kind[kind] = by_kind.get(kind, 0) + 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            if path.parent.parent.parent.name != f"v{SCHEMA_VERSION}":
                stale += 1
        return {
            "root": str(self.root),
            "entries": n,
            "bytes": total_bytes,
            "by_kind": by_kind,
            "stale_schema": stale,
        }

    def clear(self) -> int:
        """Remove every entry (all schema versions); returns the count."""
        n = 0
        for path in list(self._entries()):
            if self._remove(path):
                n += 1
        self._prune_empty_dirs()
        return n

    def gc(self, max_age_days: float | None = None) -> dict[str, int]:
        """Reap entries that can no longer be served: corrupt frames,
        old schema versions, fingerprints of edited code -- plus, when
        ``max_age_days`` is given, anything older."""
        removed = {"corrupt": 0, "schema": 0, "fingerprint": 0, "aged": 0}
        now = time.time()
        current_fp = code_fingerprint()
        for path in list(self._entries()):
            if path.parent.parent.parent.name != f"v{SCHEMA_VERSION}":
                if self._remove(path):
                    removed["schema"] += 1
                continue
            try:
                raw = path.read_bytes()
            except OSError:
                continue
            entry = self._decode(raw)
            if entry is None:
                if self._remove(path):
                    removed["corrupt"] += 1
                continue
            if entry.get("fingerprint") != current_fp:
                if self._remove(path):
                    removed["fingerprint"] += 1
                continue
            if max_age_days is not None:
                try:
                    age_s = now - path.stat().st_mtime
                except OSError:
                    continue
                if age_s > max_age_days * 86400.0:
                    if self._remove(path):
                        removed["aged"] += 1
        self._prune_empty_dirs()
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _decode(raw: bytes) -> dict[str, Any] | None:
        """Entry dict from a framed file, or ``None`` if invalid."""
        head = len(_MAGIC) + _DIGEST_BYTES
        if len(raw) < head or not raw.startswith(_MAGIC):
            return None
        digest = raw[len(_MAGIC) : head]
        body = raw[head:]
        if hashlib.sha256(body).digest() != digest:
            return None
        try:
            entry = pickle.loads(zlib.decompress(body))
        except Exception:
            return None
        return entry if isinstance(entry, dict) else None

    @staticmethod
    def _remove(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def _prune_empty_dirs(self) -> None:
        if not self.root.is_dir():
            return
        # Deepest-first so emptied parents become removable too.
        for d in sorted(
            (p for p in self.root.glob("v*/**/") if p.is_dir()),
            key=lambda p: len(p.parts),
            reverse=True,
        ):
            try:
                d.rmdir()  # only succeeds when empty
            except OSError:
                pass


def format_stats(cache: GridCache) -> str:
    """Human-readable ``cache stats`` rendering."""
    disk = cache.disk_stats()
    buf = io.StringIO()
    print(f"cache root     {disk['root']}", file=buf)
    print(f"entries        {disk['entries']}", file=buf)
    print(f"size           {disk['bytes'] / 1e6:,.2f} MB", file=buf)
    for kind, n in sorted(disk["by_kind"].items()):
        print(f"  {kind:<12} {n}", file=buf)
    if disk["stale_schema"]:
        print(f"stale schema   {disk['stale_schema']} (run 'cache gc')", file=buf)
    s = cache.stats
    print(
        f"this process   {s.hits} hits / {s.misses} misses "
        f"({s.hit_rate:.0%} hit rate), {s.stores} stores, "
        f"{s.errors} errors",
        file=buf,
    )
    return buf.getvalue().rstrip()
