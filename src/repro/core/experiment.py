"""Experiment grid runner.

Defines :class:`RunSpec` -- one cell of the paper's evaluation grid
(algorithm x model x labeled size x processor count x radix x key
distribution) -- and executes it on the simulated machine (or, with
``backend="predict"``, on the calibrated analytic predictor), with two
layers of caching so that figure/table harnesses sharing cells (e.g.
Table 2 and Table 3) pay for each run once per *machine*, not once per
invocation:

- an in-process memo (``run(spec) is run(spec)``), and
- a content-addressed on-disk cache (:mod:`repro.core.gridcache`,
  default ``~/.cache/repro`` / ``$REPRO_CACHE_DIR``) keyed by the spec,
  the machine configuration, the cost-model calibration and a
  fingerprint of the package source, so stale results are never served.

:meth:`ExperimentRunner.run_many` additionally fans independent grid
cells out over a ``ProcessPoolExecutor`` (workers share the disk cache;
the parent merges results into the memo), emitting one
:mod:`repro.trace` span per cell for progress monitoring.

Labeled-vs-actual sizing: the functional arrays run at the largest
power-of-two fraction of the labeled size not exceeding ``max_actual``
(default 256K keys); the performance model sees labeled sizes throughout
(see ``repro.sorts.common`` for the chunk extrapolation).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from ..backend import Backend, SimulatedBackend, SortJob, get_backend
from ..data.distributions import KEY_BITS, generate
from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..machine.zoo import MACHINES, get_machine
from ..sorts.radix import SortOutcome
from ..sorts.sequential import SequentialResult, sequential_radix_sort
from ..trace import PID_GRID, current_recorder
from .gridcache import GridCache

#: The paper's labeled data-set sizes.
SIZES: dict[str, int] = {
    "1M": 1 << 20,
    "4M": 1 << 22,
    "16M": 1 << 24,
    "64M": 1 << 26,
    "256M": 1 << 28,
}
SIZE_ORDER = ["1M", "4M", "16M", "64M", "256M"]
PROC_COUNTS = [16, 32, 64]


def paper_page_bytes(n_labeled: int) -> int:
    """The paper's tuned page size: 64 KB up to 64M keys, 256 KB for 256M."""
    return 256 * 1024 if n_labeled >= SIZES["256M"] else 64 * 1024


def actual_size(n_labeled: int, max_actual: int, floor: int = 1) -> int:
    """Functional array size: halve ``n_labeled`` until it fits
    ``max_actual``, never dropping below ``floor`` (the divisibility
    requirement of whoever consumes the array -- ``p**2`` for the
    parallel bucket distribution, 1 for the sequential baseline).

    Both :attr:`RunSpec.n_actual` and the sequential baseline use this
    one helper so that a parallel run and its speedup denominator sample
    identically sized arrays.
    """
    n = n_labeled
    while n > max_actual and n % 2 == 0 and n // 2 >= floor:
        n //= 2
    return n


@dataclass(frozen=True)
class RunSpec:
    """One grid cell of the evaluation."""

    algorithm: str  # "radix" | "sample"
    model: str  # "ccsas" | "ccsas-new" | "mpi-new" | "mpi-sgi" | "shmem"
    n_labeled: int
    n_procs: int
    radix: int
    distribution: str = "gauss"
    seed: int = 1
    max_actual: int = 1 << 18
    #: Machine-zoo member to simulate on (see ``repro.machine.zoo``).
    machine: str = "origin2000"

    def __post_init__(self) -> None:
        if self.algorithm not in ("radix", "sample"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.n_labeled <= 0 or self.n_procs <= 0:
            raise ValueError("sizes must be positive")
        if self.n_labeled % self.n_procs != 0:
            raise ValueError("labeled size must divide evenly over processors")
        if self.machine not in MACHINES:
            raise ValueError(
                f"unknown machine {self.machine!r}; choose from "
                f"{sorted(MACHINES)}"
            )

    @property
    def n_actual(self) -> int:
        """Functional array size, keeping divisibility by p**2 (the
        bucket distribution needs n/p**2 sub-blocks)."""
        return actual_size(
            self.n_labeled, self.max_actual, floor=self.n_procs * self.n_procs
        )

    @property
    def scale(self) -> int:
        return self.n_labeled // self.n_actual

    def size_label(self) -> str:
        for label, value in SIZES.items():
            if value == self.n_labeled:
                return label
        if self.n_labeled % (1 << 20) == 0:
            return f"{self.n_labeled >> 20}M"
        return str(self.n_labeled)

    def cell_label(self) -> str:
        """Compact human-readable label for progress spans and logs."""
        base = (
            f"{self.algorithm}/{self.model} {self.size_label()} "
            f"p={self.n_procs} r={self.radix} {self.distribution}"
        )
        if self.machine != "origin2000":
            base += f" @{self.machine}"
        return base


def _spec_machine(spec: RunSpec) -> MachineConfig:
    return get_machine(
        spec.machine,
        n_procs=spec.n_procs,
        page_bytes=paper_page_bytes(spec.n_labeled),
    )


def _sequential_machine() -> MachineConfig:
    # The uniprocessor baseline runs at the default 16 KB page size
    # (see repro.sorts.sequential.default_sequential_machine).
    return MachineConfig.origin2000(n_processors=2, scale=1, page_bytes=16 * 1024)


def _compute_outcome(
    spec: RunSpec,
    costs: CostModel,
    keys: np.ndarray,
    backend: Backend | None = None,
) -> SortOutcome:
    result = (backend or SimulatedBackend()).run(
        SortJob(
            keys=keys,
            algorithm=spec.algorithm,
            model=spec.model,
            n_procs=spec.n_procs,
            radix=spec.radix,
            machine=_spec_machine(spec),
            costs=costs,
            n_labeled=spec.n_labeled,
            key_bits=KEY_BITS,
        )
    )
    outcome = result.outcome
    assert outcome is not None
    assert np.all(np.diff(outcome.sorted_keys) >= 0), "simulated sort failed"
    return outcome


#: Per-worker-process memo of generated key arrays, shared across the
#: grid cells one ``run_many`` worker executes (pool processes are
#: reused, so e.g. five models at the same size/p/radix generate once).
_worker_keys: dict[tuple, np.ndarray] = {}


def _grid_worker(
    spec: RunSpec, costs: CostModel, cache_root: str | None
) -> SortOutcome:
    """``run_many`` subprocess body: compute one cell, publish it to the
    shared disk cache, ship the outcome back to the parent."""
    cache = GridCache(cache_root) if cache_root is not None else None
    if cache is not None:
        hit = cache.get("run", _run_key_material(spec, costs))
        if hit is not None and _outcome_valid(hit):
            return hit
    key_id = (spec.distribution, spec.n_actual, spec.n_procs, spec.radix, spec.seed)
    keys = _worker_keys.get(key_id)
    if keys is None:
        keys = generate(
            spec.distribution, spec.n_actual, spec.n_procs,
            radix=spec.radix, seed=spec.seed,
        )
        _worker_keys[key_id] = keys
    outcome = _compute_outcome(spec, costs, keys)
    if cache is not None:
        cache.put("run", _run_key_material(spec, costs), outcome)
    return outcome


def _run_key_material(spec: RunSpec, costs: CostModel) -> dict:
    return {"spec": spec, "machine": _spec_machine(spec), "costs": costs}


def _outcome_valid(outcome: object) -> bool:
    """Cheap validation of a disk-cache payload before trusting it."""
    return (
        isinstance(outcome, SortOutcome)
        and isinstance(outcome.sorted_keys, np.ndarray)
        and bool(np.all(np.diff(outcome.sorted_keys) >= 0))
    )


class ExperimentRunner:
    """Executes grid cells with memoization and persistent caching.

    ``cache`` may be a :class:`~repro.core.gridcache.GridCache`, ``None``
    (the default cache at ``$REPRO_CACHE_DIR`` / ``~/.cache/repro``,
    unless ``$REPRO_NO_CACHE`` is set), or ``False`` to disable
    persistence entirely.  ``parallel`` sets the default worker count for
    :meth:`run_many` (``None``/1 = serial).

    ``backend`` selects the execution substrate for grid cells: ``"sim"``
    (the default discrete-event simulation) or ``"predict"`` (the
    calibrated analytic model).  Predicted cells take milliseconds, so
    they bypass both the disk cache and the :meth:`run_many` process pool
    -- forking workers would cost more than the predictions themselves.
    The sequential baseline used by :meth:`speedup` is shared between
    backends (it is the paper's common denominator).
    """

    def __init__(
        self,
        costs: CostModel = DEFAULT_COSTS,
        cache: GridCache | None | bool = None,
        parallel: int | None = None,
        backend: str | Backend = "sim",
    ):
        self.costs = costs
        self.backend = get_backend(backend)
        self._predicted = self.backend.name == "predict"
        if self._predicted or cache is False:
            cache = None
        elif cache is None:
            cache = None if os.environ.get("REPRO_NO_CACHE") else GridCache()
        self.cache: GridCache | None = cache
        self.parallel = parallel
        self._runs: dict[RunSpec, SortOutcome] = {}
        self._seq: dict[tuple, SequentialResult] = {}
        self._keys: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    def sequential(
        self,
        n_labeled: int,
        radix: int = 8,
        distribution: str = "gauss",
        seed: int = 1,
        max_actual: int = 1 << 18,
        floor: int = 1,
    ) -> SequentialResult:
        """The shared uniprocessor baseline (paper Table 1 uses Gauss).

        ``max_actual``/``floor`` bound the functional array exactly as
        they do for :attr:`RunSpec.n_actual`, and are part of the memo
        key: a ``--small`` run and a full-size run in one process no
        longer alias each other's cached baseline.
        """
        key = (n_labeled, radix, distribution, seed, max_actual, floor)
        hit = self._seq.get(key)
        if hit is not None:
            return hit
        key_material = {
            "n_labeled": n_labeled,
            "radix": radix,
            "distribution": distribution,
            "seed": seed,
            "max_actual": max_actual,
            "floor": floor,
            "machine": _sequential_machine(),
            "costs": self.costs,
        }
        if self.cache is not None:
            cached = self.cache.get("seq", key_material)
            if isinstance(cached, SequentialResult):
                self._seq[key] = cached
                return cached
        n_actual = actual_size(n_labeled, max_actual, floor=floor)
        keys = generate(distribution, n_actual, 1, radix=radix, seed=seed)
        result = sequential_radix_sort(
            keys, radix=radix, n_labeled=n_labeled,
            machine=_sequential_machine(), costs=self.costs,
        )
        self._seq[key] = result
        if self.cache is not None:
            self.cache.put("seq", key_material, result)
        return result

    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> SortOutcome:
        hit = self._runs.get(spec)
        if hit is not None:
            return hit
        if self.cache is not None:
            material = _run_key_material(spec, self.costs)
            cached = self.cache.get("run", material)
            if cached is not None:
                if _outcome_valid(cached):
                    self._runs[spec] = cached
                    return cached
                self.cache.invalidate("run", material)
        key_id = (
            spec.distribution, spec.n_actual, spec.n_procs, spec.radix, spec.seed
        )
        keys = self._keys.get(key_id)
        if keys is None:
            keys = generate(
                spec.distribution,
                spec.n_actual,
                spec.n_procs,
                radix=spec.radix,
                seed=spec.seed,
            )
            self._keys[key_id] = keys
        outcome = _compute_outcome(spec, self.costs, keys, backend=self.backend)
        self._runs[spec] = outcome
        if self.cache is not None:
            self.cache.put("run", _run_key_material(spec, self.costs), outcome)
        return outcome

    # ------------------------------------------------------------------
    def run_many(
        self,
        specs: Iterable[RunSpec],
        parallel: int | None = None,
    ) -> list[SortOutcome]:
        """Run every grid cell, fanning cache misses out over worker
        processes, and return outcomes in ``specs`` order.

        ``parallel`` (default: the runner's ``parallel`` setting) caps
        concurrent workers; ``None`` or 1 runs serially in-process.
        Workers publish to the shared disk cache and the parent merges
        their outcomes into the in-memory memo, so the result is
        indistinguishable from a serial :meth:`run` loop.  One
        ``grid.cell`` trace span is emitted per executed cell.
        """
        spec_list = list(specs)
        parallel = self.parallel if parallel is None else parallel
        if self._predicted:
            parallel = 1  # predicted cells are cheaper than a fork
        pending: list[RunSpec] = []
        seen: set[RunSpec] = set()
        for spec in spec_list:
            if spec not in self._runs and spec not in seen:
                seen.add(spec)
                pending.append(spec)

        rec = current_recorder()
        # Serve what the disk cache already has (cheap, no processes).
        misses: list[RunSpec] = []
        for spec in pending:
            t0 = time.perf_counter()
            cached = None
            if self.cache is not None:
                material = _run_key_material(spec, self.costs)
                cached = self.cache.get("run", material)
                if cached is not None and not _outcome_valid(cached):
                    self.cache.invalidate("run", material)
                    cached = None
            if cached is not None:
                self._runs[spec] = cached
                self._emit_cell_span(rec, spec, t0, source="disk")
            else:
                misses.append(spec)

        if misses:
            n_workers = min(parallel or 1, len(misses))
            if n_workers > 1:
                self._run_parallel(misses, n_workers, rec)
            else:
                for spec in misses:
                    t0 = time.perf_counter()
                    self.run(spec)
                    self._emit_cell_span(rec, spec, t0, source="computed")
        return [self._runs[spec] for spec in spec_list]

    def _run_parallel(self, specs: Sequence[RunSpec], n_workers: int, rec) -> None:
        import concurrent.futures as cf
        import itertools
        import multiprocessing as mp

        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        cache_root = str(self.cache.root) if self.cache is not None else None
        ctx = mp.get_context(method)
        # Cells sharing a generated key array (same distribution / size /
        # p / radix / seed, e.g. the five models of one Table 2 column)
        # are grouped into adjacent chunks so one worker's key memo
        # serves the whole group.
        ordered = sorted(
            specs,
            key=lambda s: (
                s.distribution, s.n_actual, s.n_procs, s.radix, s.seed,
                s.algorithm, s.model,
            ),
        )
        chunksize = max(1, -(-len(ordered) // (n_workers * 2)))
        with cf.ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
            t_prev = time.perf_counter()
            for spec, outcome in zip(
                ordered,
                pool.map(
                    _grid_worker,
                    ordered,
                    itertools.repeat(self.costs),
                    itertools.repeat(cache_root),
                    chunksize=chunksize,
                ),
            ):
                self._runs[spec] = outcome
                self._emit_cell_span(rec, spec, t_prev, source="worker")
                t_prev = time.perf_counter()

    @staticmethod
    def _emit_cell_span(rec, spec: RunSpec, t0: float, source: str) -> None:
        if not rec.enabled:
            return
        t1 = time.perf_counter()
        rec.complete(
            spec.cell_label(),
            cat="grid.cell",
            ts_us=t0 * 1e6,
            dur_us=(t1 - t0) * 1e6,
            pid=PID_GRID,
            tid=0,
            args={"source": source},
        )

    # ------------------------------------------------------------------
    def speedup(self, spec: RunSpec, baseline_radix: int = 8) -> float:
        """Speedup vs. the shared sequential radix-sort baseline at the
        same labeled size, distribution and functional sizing (the
        paper's methodology)."""
        seq = self.sequential(
            spec.n_labeled, radix=baseline_radix, distribution=spec.distribution,
            seed=spec.seed, max_actual=spec.max_actual,
            floor=spec.n_procs * spec.n_procs,
        )
        return self.run(spec).speedup_vs(seq.time_ns)

    def best_over_radix(
        self, spec: RunSpec, radix_choices: list[int]
    ) -> tuple[SortOutcome, int]:
        """The fastest outcome over a set of radix sizes (Tables 2/3)."""
        self.run_many([replace(spec, radix=r) for r in radix_choices])
        best: SortOutcome | None = None
        best_r = radix_choices[0]
        for r in radix_choices:
            out = self.run(replace(spec, radix=r))
            if best is None or out.time_ns < best.time_ns:
                best, best_r = out, r
        assert best is not None
        return best, best_r

    def clear(self) -> None:
        """Forget the in-process memo (the disk cache is unaffected;
        use ``python -m repro cache clear`` for that)."""
        self._runs.clear()
        self._seq.clear()
        self._keys.clear()
