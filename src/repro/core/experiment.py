"""Experiment grid runner.

Defines :class:`RunSpec` -- one cell of the paper's evaluation grid
(algorithm x model x labeled size x processor count x radix x key
distribution) -- and executes it on the simulated machine, with caching so
that figure/table harnesses sharing cells (e.g. Table 2 and Table 3) pay
for each run once.

Labeled-vs-actual sizing: the functional arrays run at the largest
power-of-two fraction of the labeled size not exceeding ``max_actual``
(default 256K keys); the performance model sees labeled sizes throughout
(see ``repro.sorts.common`` for the chunk extrapolation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..backend import SimulatedBackend, SortJob
from ..data.distributions import KEY_BITS, generate
from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..sorts.radix import SortOutcome
from ..sorts.sequential import SequentialResult, sequential_radix_sort

#: The paper's labeled data-set sizes.
SIZES: dict[str, int] = {
    "1M": 1 << 20,
    "4M": 1 << 22,
    "16M": 1 << 24,
    "64M": 1 << 26,
    "256M": 1 << 28,
}
SIZE_ORDER = ["1M", "4M", "16M", "64M", "256M"]
PROC_COUNTS = [16, 32, 64]


def paper_page_bytes(n_labeled: int) -> int:
    """The paper's tuned page size: 64 KB up to 64M keys, 256 KB for 256M."""
    return 256 * 1024 if n_labeled >= SIZES["256M"] else 64 * 1024


@dataclass(frozen=True)
class RunSpec:
    """One grid cell of the evaluation."""

    algorithm: str  # "radix" | "sample"
    model: str  # "ccsas" | "ccsas-new" | "mpi-new" | "mpi-sgi" | "shmem"
    n_labeled: int
    n_procs: int
    radix: int
    distribution: str = "gauss"
    seed: int = 1
    max_actual: int = 1 << 18

    def __post_init__(self) -> None:
        if self.algorithm not in ("radix", "sample"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.n_labeled <= 0 or self.n_procs <= 0:
            raise ValueError("sizes must be positive")
        if self.n_labeled % self.n_procs != 0:
            raise ValueError("labeled size must divide evenly over processors")

    @property
    def n_actual(self) -> int:
        """Functional array size: halve the labeled size until it fits
        ``max_actual``, keeping divisibility by p**2 (the bucket
        distribution needs n/p**2 sub-blocks)."""
        n = self.n_labeled
        floor = self.n_procs * self.n_procs
        while n > self.max_actual and n % 2 == 0 and n // 2 >= floor:
            n //= 2
        return n

    @property
    def scale(self) -> int:
        return self.n_labeled // self.n_actual

    def size_label(self) -> str:
        for label, value in SIZES.items():
            if value == self.n_labeled:
                return label
        if self.n_labeled % (1 << 20) == 0:
            return f"{self.n_labeled >> 20}M"
        return str(self.n_labeled)


class ExperimentRunner:
    """Executes grid cells with memoization."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS):
        self.costs = costs
        self.backend = SimulatedBackend()
        self._runs: dict[RunSpec, SortOutcome] = {}
        self._seq: dict[tuple, SequentialResult] = {}
        self._keys: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    def sequential(
        self,
        n_labeled: int,
        radix: int = 8,
        distribution: str = "gauss",
        seed: int = 1,
        max_actual: int = 1 << 18,
    ) -> SequentialResult:
        """The shared uniprocessor baseline (paper Table 1 uses Gauss)."""
        key = (n_labeled, radix, distribution, seed)
        hit = self._seq.get(key)
        if hit is not None:
            return hit
        n_actual = n_labeled
        while n_actual > max_actual and n_actual % 2 == 0:
            n_actual //= 2
        keys = generate(distribution, n_actual, 1, radix=radix, seed=seed)
        # The uniprocessor baseline runs at the default 16 KB page size
        # (see repro.sorts.sequential.default_sequential_machine).
        machine = MachineConfig.origin2000(n_processors=2, scale=1, page_bytes=16 * 1024)
        result = sequential_radix_sort(
            keys, radix=radix, n_labeled=n_labeled, machine=machine, costs=self.costs
        )
        self._seq[key] = result
        return result

    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> SortOutcome:
        hit = self._runs.get(spec)
        if hit is not None:
            return hit
        key_id = (
            spec.distribution, spec.n_actual, spec.n_procs, spec.radix, spec.seed
        )
        keys = self._keys.get(key_id)
        if keys is None:
            keys = generate(
                spec.distribution,
                spec.n_actual,
                spec.n_procs,
                radix=spec.radix,
                seed=spec.seed,
            )
            self._keys[key_id] = keys
        machine = MachineConfig.origin2000(
            n_processors=spec.n_procs,
            scale=1,
            page_bytes=paper_page_bytes(spec.n_labeled),
        )
        result = self.backend.run(
            SortJob(
                keys=keys,
                algorithm=spec.algorithm,
                model=spec.model,
                n_procs=spec.n_procs,
                radix=spec.radix,
                machine=machine,
                costs=self.costs,
                n_labeled=spec.n_labeled,
                key_bits=KEY_BITS,
            )
        )
        outcome = result.outcome
        assert outcome is not None
        assert np.all(np.diff(outcome.sorted_keys) >= 0), "simulated sort failed"
        self._runs[spec] = outcome
        return outcome

    # ------------------------------------------------------------------
    def speedup(self, spec: RunSpec, baseline_radix: int = 8) -> float:
        """Speedup vs. the shared sequential radix-sort baseline at the
        same labeled size and distribution (the paper's methodology)."""
        seq = self.sequential(
            spec.n_labeled, radix=baseline_radix, distribution=spec.distribution,
            seed=spec.seed,
        )
        return self.run(spec).speedup_vs(seq.time_ns)

    def best_over_radix(
        self, spec: RunSpec, radix_choices: list[int]
    ) -> tuple[SortOutcome, int]:
        """The fastest outcome over a set of radix sizes (Tables 2/3)."""
        best: SortOutcome | None = None
        best_r = radix_choices[0]
        for r in radix_choices:
            out = self.run(replace(spec, radix=r))
            if best is None or out.time_ns < best.time_ns:
                best, best_r = out, r
        assert best is not None
        return best, best_r

    def clear(self) -> None:
        self._runs.clear()
        self._seq.clear()
        self._keys.clear()
