"""SPMD simulation runtime: phases, executor, team, perf accounting."""

from .executor import PhaseExecutor, PhaseOutcome
from .perf import CATEGORIES, PerfCounters, PerfReport, PhaseRecord
from .phases import (
    BarrierPhase,
    CollectivePhase,
    ComputePhase,
    ExchangePhase,
    Phase,
    PrefixTreePhase,
    ProcWork,
    Transport,
    uniform_compute,
)
from .team import Team

__all__ = [
    "BarrierPhase",
    "CATEGORIES",
    "CollectivePhase",
    "ComputePhase",
    "ExchangePhase",
    "PerfCounters",
    "PerfReport",
    "Phase",
    "PhaseExecutor",
    "PhaseOutcome",
    "PhaseRecord",
    "PrefixTreePhase",
    "ProcWork",
    "Team",
    "Transport",
    "uniform_compute",
]
