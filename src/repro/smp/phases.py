"""Phase descriptors: what each processor does between two sync points.

A sorting implementation runs its *functional* work in NumPy and, for each
bulk-synchronous phase, emits one of these descriptors to the
:class:`~repro.smp.team.Team`.  The executor turns descriptors into
per-processor BUSY/LMEM/RMEM/SYNC time using the machine model.  This is
the same altitude as the paper's own instrumentation: per-phase,
per-processor accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..machine.access import AccessPattern
from ..machine.memory import HomeLocation


class Transport(enum.Enum):
    """How an all-to-all exchange moves bytes between partitions."""

    #: Fine-grain remote stores, temporally scattered (SPLASH-2 CC-SAS).
    CCSAS_SCATTERED = "ccsas-scattered"
    #: Locally buffered chunks copied to remote memory (CC-SAS-NEW).
    CCSAS_BULK = "ccsas-bulk"
    #: Contiguous remote *reads* (CC-SAS sample sort pulls its keys; no
    #: remote-write protocol storm, no writebacks at the far end).
    CCSAS_READ = "ccsas-read"
    #: Two-sided messages through our MPICH-derived direct-copy MPI.
    MPI_NEW = "mpi-new"
    #: Two-sided messages through the vendor MPI with staging copies.
    MPI_SGI = "mpi-sgi"
    #: One-sided receiver-initiated gets (SHMEM).
    SHMEM_GET = "shmem-get"
    #: One-sided sender-initiated puts (SHMEM).  Same cost structure as
    #: get, but "get has the advantage that data are brought into the
    #: cache, while put doesn't deposit them in the destination cache"
    #: (Section 3.1) -- the destination's next pass starts cold.
    SHMEM_PUT = "shmem-put"

    @property
    def is_message_passing(self) -> bool:
        return self in (Transport.MPI_NEW, Transport.MPI_SGI)

    @property
    def is_shmem(self) -> bool:
        return self in (Transport.SHMEM_GET, Transport.SHMEM_PUT)

    @property
    def is_ccsas(self) -> bool:
        return self in (
            Transport.CCSAS_SCATTERED,
            Transport.CCSAS_BULK,
            Transport.CCSAS_READ,
        )


@dataclass(frozen=True)
class ProcWork:
    """One processor's share of a compute phase."""

    busy_ns: float = 0.0
    patterns: tuple[tuple[AccessPattern, HomeLocation], ...] = ()

    def __post_init__(self) -> None:
        if self.busy_ns < 0:
            raise ValueError("busy time must be non-negative")


@dataclass(frozen=True)
class ComputePhase:
    """Purely local work: per-processor busy time plus access patterns."""

    name: str
    work: tuple[ProcWork, ...]

    @property
    def n_procs(self) -> int:
        return len(self.work)


@dataclass(frozen=True)
class ExchangePhase:
    """All-to-all personalized communication.

    ``bytes_matrix[i, j]``: payload bytes moving from processor ``i``'s
    partition to ``j``'s.  ``chunks_matrix[i, j]``: number of separately
    addressed contiguous chunks (= messages for MPI/SHMEM; for CC-SAS it
    measures temporal scatteredness).  The diagonal is local movement:
    it costs memory bandwidth but no network traffic.
    """

    name: str
    bytes_matrix: np.ndarray
    chunks_matrix: np.ndarray
    transport: Transport
    #: Access locality of the destination writes (forwarded to the cache
    #: and TLB models; high for pre-grouped key distributions).
    locality: float = 0.0
    #: For CC-SAS scattered writes: how many distinct destination streams
    #: each writer interleaves (the radix bucket count), and the byte span
    #: they cover -- drives destination-side TLB behavior.
    writer_buckets: int = 0
    span_bytes: float = 0.0
    #: MPI only: pack all chunks for a destination into one message and
    #: reorganize at the receiver (the strategy the paper tried and
    #: rejected), instead of one message per contiguously-destined chunk.
    combine_messages: bool = False

    def __post_init__(self) -> None:
        b = np.asarray(self.bytes_matrix, dtype=np.float64)
        c = np.asarray(self.chunks_matrix, dtype=np.float64)
        if b.ndim != 2 or b.shape[0] != b.shape[1]:
            raise ValueError("bytes matrix must be square")
        if b.shape != c.shape:
            raise ValueError("bytes and chunks matrices must match")
        if np.any(b < 0) or np.any(c < 0):
            raise ValueError("traffic must be non-negative")
        if np.any((b > 0) & (c <= 0)):
            raise ValueError("non-zero traffic requires at least one chunk")
        object.__setattr__(self, "bytes_matrix", b)
        object.__setattr__(self, "chunks_matrix", c)

    @property
    def n_procs(self) -> int:
        return self.bytes_matrix.shape[0]


@dataclass(frozen=True)
class CollectivePhase:
    """An allgather-style collective: every processor contributes
    ``bytes_per_proc`` and receives everyone else's contribution."""

    name: str
    n_procs: int
    bytes_per_proc: float
    transport: Transport

    def __post_init__(self) -> None:
        if self.n_procs <= 0 or self.bytes_per_proc < 0:
            raise ValueError("invalid collective sizes")


@dataclass(frozen=True)
class PrefixTreePhase:
    """CC-SAS global histogram accumulation via a binary prefix tree over
    fine-grained shared loads/stores (the SPLASH-2 structure the paper
    credits for CC-SAS's cheap histogram phase)."""

    name: str
    n_procs: int
    elems_per_proc: int  # histogram bins contributed by each processor

    def __post_init__(self) -> None:
        if self.n_procs <= 0 or self.elems_per_proc < 0:
            raise ValueError("invalid prefix-tree sizes")


@dataclass(frozen=True)
class BarrierPhase:
    name: str = "barrier"


Phase = ComputePhase | ExchangePhase | CollectivePhase | PrefixTreePhase | BarrierPhase


def uniform_compute(
    name: str,
    busy_ns: np.ndarray | list[float],
    patterns_per_proc: list[list[tuple[AccessPattern, HomeLocation]]] | None = None,
) -> ComputePhase:
    """Build a :class:`ComputePhase` from parallel arrays."""
    busy = np.asarray(busy_ns, dtype=np.float64)
    n = len(busy)
    pats = patterns_per_proc or [[] for _ in range(n)]
    if len(pats) != n:
        raise ValueError("patterns list must match busy array length")
    work = tuple(
        ProcWork(float(busy[i]), tuple(pats[i])) for i in range(n)
    )
    return ComputePhase(name, work)
