"""Per-processor performance accounting.

Reproduces the paper's measurement methodology (Section 4): execution time
is divided into BUSY (instruction execution), LMEM (stalls on local cache
misses), RMEM (stalls communicating remote data) and SYNC (synchronization
waits).  For CC-SAS the paper's tools could not separate LMEM from RMEM --
:meth:`PerfCounters.mem_ns` provides the combined MEM category used in its
Figure 4(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

CATEGORIES = ("BUSY", "LMEM", "RMEM", "SYNC")


@dataclass
class PerfCounters:
    """Accumulated time of one simulated processor (all nanoseconds)."""

    busy_ns: float = 0.0
    lmem_ns: float = 0.0
    rmem_ns: float = 0.0
    sync_ns: float = 0.0
    # Diagnostics (not part of the paper's four categories)
    l2_misses: float = 0.0
    tlb_misses: float = 0.0
    messages: float = 0.0
    bytes_sent: float = 0.0
    protocol_transactions: float = 0.0

    @property
    def total_ns(self) -> float:
        return self.busy_ns + self.lmem_ns + self.rmem_ns + self.sync_ns

    @property
    def mem_ns(self) -> float:
        """LMEM + RMEM combined (the CC-SAS 'MEM' category)."""
        return self.lmem_ns + self.rmem_ns

    def add(self, other: "PerfCounters") -> None:
        self.busy_ns += other.busy_ns
        self.lmem_ns += other.lmem_ns
        self.rmem_ns += other.rmem_ns
        self.sync_ns += other.sync_ns
        self.l2_misses += other.l2_misses
        self.tlb_misses += other.tlb_misses
        self.messages += other.messages
        self.bytes_sent += other.bytes_sent
        self.protocol_transactions += other.protocol_transactions

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.busy_ns, self.lmem_ns, self.rmem_ns, self.sync_ns)


@dataclass
class PhaseRecord:
    """Aggregate accounting of one named phase (for breakdowns by phase)."""

    name: str
    per_proc_ns: np.ndarray

    @property
    def max_ns(self) -> float:
        return float(self.per_proc_ns.max())


@dataclass
class PerfReport:
    """Result of one simulated parallel run."""

    n_procs: int
    counters: list[PerfCounters]
    phases: list[PhaseRecord] = field(default_factory=list)
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.counters) != self.n_procs:
            raise ValueError(
                f"{len(self.counters)} counters for {self.n_procs} processors"
            )

    # ------------------------------------------------------------------
    @property
    def total_time_ns(self) -> float:
        """Wall-clock of the run: the slowest processor's accumulated time.

        Because every barrier charges faster processors the wait for the
        slowest, all per-processor totals agree at run end (up to the final
        unbarriered phase); the max is the honest wall-clock.
        """
        return max(c.total_ns for c in self.counters)

    @property
    def total_time_us(self) -> float:
        return self.total_time_ns / 1000.0

    def category_matrix(self) -> np.ndarray:
        """(n_procs, 4) matrix of BUSY/LMEM/RMEM/SYNC times in ns."""
        return np.array([c.as_tuple() for c in self.counters])

    def category_means_ns(self) -> dict[str, float]:
        mat = self.category_matrix()
        return dict(zip(CATEGORIES, mat.mean(axis=0)))

    def category_fractions(self) -> dict[str, float]:
        means = self.category_means_ns()
        total = sum(means.values()) or 1.0
        return {k: v / total for k, v in means.items()}

    def speedup_vs(self, sequential_ns: float) -> float:
        if self.total_time_ns <= 0:
            raise ValueError("run has no accumulated time")
        return sequential_ns / self.total_time_ns

    def merged(self) -> PerfCounters:
        total = PerfCounters()
        for c in self.counters:
            total.add(c)
        return total

    def phase_summary(self) -> dict[str, float]:
        """Max-across-processors time per phase name, in ns."""
        out: dict[str, float] = {}
        for rec in self.phases:
            out[rec.name] = out.get(rec.name, 0.0) + rec.max_ns
        return out
