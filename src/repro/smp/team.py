"""The simulated SPMD process team.

A :class:`Team` owns per-processor clocks and performance counters.  Sort
implementations feed it phase descriptors; it executes them through the
:class:`~repro.smp.executor.PhaseExecutor`, advances clocks, and converts
clock imbalance into SYNC time at barriers -- which is exactly how the
paper's SYNC category arises on the real machine.
"""

from __future__ import annotations

import math

import numpy as np

from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..trace import PID_SIM, current_recorder
from ..verify.context import current_sanitizer
from .executor import PhaseExecutor, PhaseOutcome
from .perf import PerfCounters, PerfReport, PhaseRecord
from .phases import (
    CollectivePhase,
    ComputePhase,
    ExchangePhase,
    PrefixTreePhase,
    Transport,
)


class Team:
    """``n_procs`` simulated processors executing bulk-synchronous phases."""

    def __init__(
        self,
        machine: MachineConfig,
        n_procs: int | None = None,
        costs: CostModel = DEFAULT_COSTS,
        label: str = "",
    ):
        self.machine = machine
        self.n_procs = n_procs if n_procs is not None else machine.n_processors
        if not 0 < self.n_procs <= machine.n_processors:
            raise ValueError(
                f"team of {self.n_procs} does not fit machine with "
                f"{machine.n_processors} processors"
            )
        self.costs = costs
        self.label = label
        self.executor = PhaseExecutor(machine, costs)
        self.clock = np.zeros(self.n_procs)
        self.counters = [PerfCounters() for _ in range(self.n_procs)]
        self.phase_records: list[PhaseRecord] = []
        #: Barrier epoch per processor.  The bulk-synchronous runtime
        #: advances the whole team through each barrier together, so the
        #: epochs must always agree when a barrier begins -- the runtime
        #: sanitizer (:mod:`repro.verify`) audits exactly that.
        self.epochs = np.zeros(self.n_procs, dtype=np.int64)
        self.sanitizer = current_sanitizer()

    # ------------------------------------------------------------------
    def _apply(self, name: str, outcome: PhaseOutcome) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_phase(self, name, outcome)
        if outcome.n_procs != self.n_procs:
            raise ValueError("phase outcome does not match team size")
        rec = current_recorder()
        if rec.enabled:
            elapsed = outcome.elapsed
            for i in range(self.n_procs):
                if elapsed[i] > 0:
                    rec.complete(
                        name,
                        cat="sim.phase",
                        ts_us=self.clock[i] / 1e3,
                        dur_us=elapsed[i] / 1e3,
                        pid=PID_SIM,
                        tid=i,
                        args={
                            "busy_ns": float(outcome.busy[i]),
                            "lmem_ns": float(outcome.lmem[i]),
                            "rmem_ns": float(outcome.rmem[i]),
                            "sync_ns": float(outcome.sync[i]),
                        },
                    )
        for i, c in enumerate(self.counters):
            c.busy_ns += outcome.busy[i]
            c.lmem_ns += outcome.lmem[i]
            c.rmem_ns += outcome.rmem[i]
            c.sync_ns += outcome.sync[i]
            c.l2_misses += outcome.l2_misses[i]
            c.tlb_misses += outcome.tlb_misses[i]
            c.messages += outcome.messages[i]
            c.bytes_sent += outcome.bytes_sent[i]
            c.protocol_transactions += outcome.protocol_tx[i]
        self.clock += outcome.elapsed
        self.phase_records.append(PhaseRecord(name, outcome.elapsed.copy()))

    # ------------------------------------------------------------------
    # Phase entry points used by the sorting implementations
    # ------------------------------------------------------------------
    def compute(self, phase: ComputePhase) -> None:
        self._apply(phase.name, self.executor.compute(phase))

    def exchange(self, phase: ExchangePhase) -> None:
        offsets = self.clock - self.clock.min()
        self._apply(
            phase.name,
            self.executor.exchange(
                phase, offsets, trace_t0_ns=float(self.clock.min())
            ),
        )

    def collective(self, phase: CollectivePhase) -> None:
        # A collective is inherently synchronizing: nobody finishes before
        # the last arrival.  Absorb clock skew as SYNC first.
        self.barrier(f"{phase.name}.sync", charge_overhead=False)
        self._apply(phase.name, self.executor.collective(phase))

    def prefix_tree(self, phase: PrefixTreePhase) -> None:
        self.barrier(f"{phase.name}.sync", charge_overhead=False)
        self._apply(phase.name, self.executor.prefix_tree(phase))

    def barrier(self, name: str = "barrier", charge_overhead: bool = True) -> None:
        """Synchronize all processors: laggards set the pace, the rest wait."""
        if self.sanitizer is not None:
            self.sanitizer.on_barrier(self, name)
        self.epochs += 1
        target = float(self.clock.max())
        wait = target - self.clock
        overhead = 0.0
        if charge_overhead:
            if self.machine.kind == "bsp":
                # A barrier ends a superstep: the BSP model charges the
                # flat latency parameter L, not a combining-tree walk.
                overhead = self.machine.bsp_l_ns
            else:
                levels = max(1, math.ceil(math.log2(max(2, self.n_procs))))
                overhead = self.costs.barrier_ns_per_level * levels
        rec = current_recorder()
        if rec.enabled:
            for i in range(self.n_procs):
                if wait[i] + overhead > 0:
                    rec.complete(
                        name,
                        cat="sim.barrier",
                        ts_us=self.clock[i] / 1e3,
                        dur_us=(wait[i] + overhead) / 1e3,
                        pid=PID_SIM,
                        tid=i,
                    )
        for i, c in enumerate(self.counters):
            c.sync_ns += wait[i] + overhead
        self.clock[:] = target + overhead
        self.phase_records.append(PhaseRecord(name, wait + overhead))

    # ------------------------------------------------------------------
    def report(self) -> PerfReport:
        return PerfReport(
            n_procs=self.n_procs,
            counters=self.counters,
            phases=self.phase_records,
            label=self.label,
        )

    @property
    def elapsed_ns(self) -> float:
        return float(self.clock.max())
