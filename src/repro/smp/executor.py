"""Phase executor: turns phase descriptors into per-processor time.

Local compute phases go through the analytic memory models; all-to-all
exchange phases under MPI/SHMEM run on the discrete-event kernel (so that
link contention, round skew and the MPI 1-deep channel handshake produce
waiting time the same way they do on the real machine); CC-SAS exchanges
combine the interconnect bandwidth model with directory-protocol
transaction accounting.

Attribution convention (matching the paper's categories):

- BUSY: per-key work, message overheads, staging/placement copies;
- LMEM: local cache misses, TLB refills, writebacks;
- RMEM: remote data transfer time, protocol stalls, link queueing;
- SYNC: everything else a processor spends blocked (channel stalls,
  waiting for partners, barrier imbalance) -- derived as
  ``elapsed - busy - lmem - rmem`` inside the DES phases so that stacked
  bars always sum to wall-clock time, exactly like the paper's Figure 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..machine.directory import DirectoryProtocol
from ..machine.interconnect import Interconnect
from ..machine.memory import MemorySystem
from ..machine.zoo import UnsupportedTransportError, check_transport
from ..sim.engine import Simulator
from ..sim.resources import Channel, Resource
from ..trace import PID_SIM, current_recorder
from .phases import (
    CollectivePhase,
    ComputePhase,
    ExchangePhase,
    PrefixTreePhase,
    Transport,
)


@dataclass
class PhaseOutcome:
    """Per-processor time deltas contributed by one phase."""

    n_procs: int
    busy: np.ndarray = field(default=None)  # type: ignore[assignment]
    lmem: np.ndarray = field(default=None)  # type: ignore[assignment]
    rmem: np.ndarray = field(default=None)  # type: ignore[assignment]
    sync: np.ndarray = field(default=None)  # type: ignore[assignment]
    l2_misses: np.ndarray = field(default=None)  # type: ignore[assignment]
    tlb_misses: np.ndarray = field(default=None)  # type: ignore[assignment]
    messages: np.ndarray = field(default=None)  # type: ignore[assignment]
    bytes_sent: np.ndarray = field(default=None)  # type: ignore[assignment]
    protocol_tx: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        for name in (
            "busy",
            "lmem",
            "rmem",
            "sync",
            "l2_misses",
            "tlb_misses",
            "messages",
            "bytes_sent",
            "protocol_tx",
        ):
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(self.n_procs))

    @property
    def elapsed(self) -> np.ndarray:
        return self.busy + self.lmem + self.rmem + self.sync


class PhaseExecutor:
    """Maps phase descriptors to :class:`PhaseOutcome` on one machine."""

    def __init__(self, machine: MachineConfig, costs: CostModel = DEFAULT_COSTS):
        self.machine = machine
        self.costs = costs
        self.memsys = MemorySystem(machine, costs)
        self.interconnect = Interconnect(machine)
        self.directory = DirectoryProtocol(machine, costs)

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def compute(self, phase: ComputePhase) -> PhaseOutcome:
        p = phase.n_procs
        bsp = self.machine.kind == "bsp"
        out = PhaseOutcome(p)
        for i, work in enumerate(phase.work):
            out.busy[i] = work.busy_ns
            for pattern, home in work.patterns:
                mt = self.memsys.pattern_time(pattern, home)
                if bsp:
                    # The BSP model has no memory hierarchy: local work,
                    # memory access included, is all part of w (BUSY).
                    out.busy[i] += mt.lmem_ns + mt.rmem_ns
                else:
                    out.lmem[i] += mt.lmem_ns
                    out.rmem[i] += mt.rmem_ns
                out.l2_misses[i] += mt.l2_misses
                out.tlb_misses[i] += mt.tlb_misses
        return out

    # ------------------------------------------------------------------
    # CC-SAS prefix-tree histogram accumulation
    # ------------------------------------------------------------------
    def prefix_tree(self, phase: PrefixTreePhase) -> PhaseOutcome:
        p = phase.n_procs
        out = PhaseOutcome(p)
        levels = max(1, math.ceil(math.log2(max(2, p))))
        per_elem = self.costs.prefix_tree_ns_per_elem
        if self.machine.kind == "ap1000":
            raise UnsupportedTransportError(
                "ap1000", "ccsas-prefix-tree",
                "fine-grain shared histograms need remote loads",
            )
        if self.machine.kind == "bsp":
            # One local pass over the histogram vector, plus log2(p)
            # rounds each exchanging the vector as a (g, h)-relation.
            g = self.machine.bsp_g_ns_per_byte
            out.busy[:] = per_elem * phase.elems_per_proc
            out.rmem[:] = g * (phase.elems_per_proc * 4.0) * levels
            return out
        # Up-sweep + down-sweep over the binary tree: each processor touches
        # its histogram vector once per level it participates in; fine-grain
        # remote loads dominate, executed directly by the coherence hardware.
        total = per_elem * phase.elems_per_proc * levels
        out.busy[:] = 0.4 * total
        if self.machine.kind == "multicore":
            # Uniform memory: the shared tree lives in the LLC/DRAM, so
            # the fine-grain traffic is local, not remote.
            out.lmem[:] = 0.6 * total
        else:
            out.rmem[:] = 0.6 * total
        return out

    # ------------------------------------------------------------------
    # Collectives (MPI_Allgather / shmem collect)
    # ------------------------------------------------------------------
    def collective(self, phase: CollectivePhase) -> PhaseOutcome:
        p = phase.n_procs
        c = self.costs
        out = PhaseOutcome(p)
        rounds = max(1, math.ceil(math.log2(max(2, p))))
        check_transport(self.machine, phase.transport)
        if self.machine.kind == "bsp":
            # An allgather is one h-relation: every processor sends its
            # block to p-1 peers and receives p-1 blocks.
            received = phase.bytes_per_proc * max(0, p - 1)
            out.rmem[:] = received * self.machine.bsp_g_ns_per_byte
            out.messages[:] = max(0, p - 1)
            out.bytes_sent[:] = received
            return out
        if phase.transport is Transport.MPI_SGI:
            per_msg = c.mpi_sgi_overhead_ns
            extra = phase.bytes_per_proc * (p - 1) * c.mpi_sgi_stage_ns_per_byte
            base_factor = c.allgather_mpi_sgi_factor
        elif phase.transport is Transport.MPI_NEW:
            per_msg = c.mpi_new_overhead_ns
            extra = 0.0
            base_factor = c.allgather_mpi_new_factor
        elif phase.transport.is_shmem:
            per_msg = c.shmem_overhead_ns
            extra = 0.0
            base_factor = 1.0
        else:
            raise ValueError(
                f"collectives are not used under {phase.transport}; "
                "CC-SAS accumulates via the prefix tree"
            )
        received = phase.bytes_per_proc * max(0, p - 1)
        busy = p * c.allgather_ns_per_proc * base_factor + rounds * per_msg + extra
        rmem = received * c.allgather_ns_per_byte
        out.busy[:] = busy
        if self.machine.kind == "multicore":
            out.lmem[:] = rmem  # uniform memory: no remote category
        else:
            out.rmem[:] = rmem
        out.messages[:] = rounds
        out.bytes_sent[:] = received
        return out

    # ------------------------------------------------------------------
    # Exchanges
    # ------------------------------------------------------------------
    def exchange(
        self,
        phase: ExchangePhase,
        start_offsets: np.ndarray | None = None,
        trace_t0_ns: float = 0.0,
    ) -> PhaseOutcome:
        p = phase.n_procs
        if p > self.machine.n_processors:
            raise ValueError(
                f"phase uses {p} processors but machine has "
                f"{self.machine.n_processors}"
            )
        if start_offsets is None:
            start_offsets = np.zeros(p)
        check_transport(self.machine, phase.transport)
        if self.machine.kind == "bsp":
            return self._exchange_bsp(phase)
        if phase.transport.is_ccsas:
            if self.machine.kind == "multicore":
                return self._exchange_uniform(phase)
            return self._exchange_ccsas(phase, start_offsets)
        return self._exchange_des(phase, start_offsets, trace_t0_ns)

    # -- multicore: shared LLC, uniform memory, no directory ---------------
    def _exchange_uniform(self, phase: ExchangePhase) -> PhaseOutcome:
        """Shared-address permutation on a single-node multicore.

        There is no directory protocol and no network: every store is a
        plain write into the shared output array.  The copy loop is BUSY;
        the memory traffic pays uniform DRAM latency (pipelined, ~1 in 8
        line fetches exposed) and all cores drain through one shared
        memory interface, whichever bound is larger.
        """
        p = phase.n_procs
        m = self.machine
        c = self.costs
        out = PhaseOutcome(p)
        bytes_m = np.asarray(phase.bytes_matrix, dtype=np.float64)
        chunks_m = np.asarray(phase.chunks_matrix, dtype=np.float64)
        moved = bytes_m.sum(axis=1)
        per_chunk = (
            c.ccsas_read_chunk_ns
            if phase.transport is Transport.CCSAS_READ
            else c.ccsas_chunk_copy_ns
        )
        if phase.transport is Transport.CCSAS_SCATTERED:
            # Fine-grain scattered stores: per-element loop, no chunk setup.
            out.busy = moved * c.copy_busy_ns_per_byte
        else:
            out.busy = (
                moved * c.copy_busy_ns_per_byte + chunks_m.sum(axis=1) * per_chunk
            )
        lines = moved / m.line_bytes
        drain_ns = float(bytes_m.sum()) / m.link_bw_bytes_per_ns
        out.lmem = np.maximum(
            lines * m.local_read_ns * 0.125, np.where(moved > 0, drain_ns, 0.0)
        )
        out.l2_misses = lines
        return out

    # -- BSP: one h-relation, g ns per byte -------------------------------
    def _exchange_bsp(self, phase: ExchangePhase) -> PhaseOutcome:
        """Superstep communication accounting: each processor is charged
        ``g * h`` where ``h`` is the larger of the bytes it sends and the
        bytes it receives (its side of the h-relation); the straggler
        wait and the superstep's ``L`` land at the next barrier."""
        p = phase.n_procs
        g = self.machine.bsp_g_ns_per_byte
        out = PhaseOutcome(p)
        bytes_m = np.asarray(phase.bytes_matrix, dtype=np.float64)
        off_diag = bytes_m.copy()
        np.fill_diagonal(off_diag, 0.0)
        sent = off_diag.sum(axis=1)
        received = off_diag.sum(axis=0)
        out.rmem = g * np.maximum(sent, received)
        # Keys staying in the local partition move by plain memcpy, the
        # same local work the other machine kinds charge.
        out.busy = (
            np.diag(bytes_m).astype(np.float64) * self.costs.copy_busy_ns_per_byte
        )
        out.messages = (np.asarray(phase.chunks_matrix) > 0).sum(axis=1).astype(
            np.float64
        )
        out.bytes_sent = sent
        return out

    # -- CC-SAS ---------------------------------------------------------
    def _exchange_ccsas(
        self, phase: ExchangePhase, start_offsets: np.ndarray
    ) -> PhaseOutcome:
        p = phase.n_procs
        m = self.machine
        c = self.costs
        out = PhaseOutcome(p)
        traffic = self._pad(phase.bytes_matrix)
        scattered = phase.transport is Transport.CCSAS_SCATTERED

        transfer = self.interconnect.transfer(traffic)
        if phase.transport is Transport.CCSAS_READ:
            # Contiguous remote reads: no invalidations, no remote
            # writebacks; latency pipelines behind the block transfer.
            loads = None
        else:
            loads = self.directory.remote_write_load(
                traffic, scattered,
                chunks=self._pad(phase.chunks_matrix) if scattered else None,
            )

        off_diag = traffic.copy()
        np.fill_diagonal(off_diag, 0.0)
        for i in range(p):
            wire = transfer.per_proc_ns[i]
            remote_bytes = float(off_diag[i].sum() if not
                                 (phase.transport is Transport.CCSAS_READ)
                                 else off_diag[:, i].sum())
            if loads is not None:
                stall = loads[i].stall_ns
                # Wire time and protocol occupancy overlap partially: they
                # use different resources (links vs. hub controllers) but a
                # writer can only retire so many outstanding stores.
                overlap = 0.25 if scattered else 0.6
                out.rmem[i] = max(wire, stall) + (1.0 - overlap) * min(wire, stall)
                out.protocol_tx[i] = loads[i].transactions
            else:
                lines = remote_bytes / m.line_bytes
                lat = m.local_read_ns + m.remote_base_ns
                # Reads of contiguous chunks: ~1 in 8 line fetches exposes
                # latency; the rest pipeline behind it.
                out.rmem[i] = max(wire, lines * lat * 0.125)
            out.bytes_sent[i] = remote_bytes
            if scattered and phase.writer_buckets:
                # Scattered stores also churn the writer's TLB across the
                # whole destination array.
                from ..machine.access import BucketedAppend

                n_remote = remote_bytes / 4.0
                tlb = self.memsys.pattern_time(
                    BucketedAppend(
                        int(n_remote),
                        phase.writer_buckets,
                        4,
                        int(phase.span_bytes or remote_bytes),
                        locality=phase.locality,
                    )
                )
                out.lmem[i] += tlb.tlb_misses * c.tlb_miss_ns
                out.tlb_misses[i] += tlb.tlb_misses
            if phase.transport in (Transport.CCSAS_BULK, Transport.CCSAS_READ):
                # The chunk copy itself is CPU work: a per-chunk setup plus
                # a load/store loop over the payload.
                if phase.transport is Transport.CCSAS_BULK:
                    moved = float(phase.bytes_matrix[i].sum())
                    n_chunks = float(phase.chunks_matrix[i].sum())
                    per_chunk = c.ccsas_chunk_copy_ns
                else:
                    moved = float(phase.bytes_matrix[:, i].sum())
                    n_chunks = float(phase.chunks_matrix[:, i].sum())
                    per_chunk = c.ccsas_read_chunk_ns
                out.busy[i] = (
                    moved * c.copy_busy_ns_per_byte + n_chunks * per_chunk
                )
        return out

    # -- MPI / SHMEM over the DES kernel ---------------------------------
    def _exchange_des(
        self,
        phase: ExchangePhase,
        start_offsets: np.ndarray,
        trace_t0_ns: float = 0.0,
    ) -> PhaseOutcome:
        p = phase.n_procs
        m = self.machine
        c = self.costs
        out = PhaseOutcome(p)
        bytes_m = phase.bytes_matrix
        chunks_m = phase.chunks_matrix

        # Router-level contention folded into wire times as a multiplier
        # (holding multiple DES resources per transfer risks deadlock and
        # adds little: the hop-level bottleneck is captured exactly by the
        # interconnect model).
        net = self._pad(bytes_m)
        transfer = self.interconnect.transfer(net)
        dir_bw = m.link_bw_bytes_per_ns / 2.0
        own = np.maximum(net.sum(axis=1), net.sum(axis=0)) / dir_bw
        peak_own = float(own.max(initial=0.0))
        gamma = 1.0
        if peak_own > 0 and transfer.bottleneck_ns > peak_own:
            gamma = transfer.bottleneck_ns / peak_own

        sim = Simulator()
        sim.trace_offset_ns = trace_t0_ns
        rec = current_recorder()
        trace_msgs = rec.enabled and rec.verbose
        node_link = [Resource(sim, 1, f"link{n}") for n in range(m.n_nodes)]
        busy = np.zeros(p)
        rmem = np.zeros(p)
        end_time = np.asarray(start_offsets, dtype=np.float64).copy()
        messages = np.zeros(p)

        is_mpi = phase.transport.is_message_passing
        sgi = phase.transport is Transport.MPI_SGI

        if is_mpi:
            chans = {
                (i, j): Channel(sim, 1, f"ch{i}->{j}")
                for i in range(p)
                for j in range(p)
                if i != j and chunks_m[i, j] > 0
            }

            def sender(i: int):
                yield float(start_offsets[i])
                for t in range(1, p):
                    j = (i + t) % p
                    k = float(chunks_m[i, j])
                    b = float(bytes_m[i, j])
                    if k <= 0:
                        continue
                    if phase.combine_messages:
                        k = 1.0  # one packed message per destination
                    o = c.mpi_sgi_overhead_ns if sgi else c.mpi_new_overhead_ns
                    send_busy = k * o + (b * c.mpi_sgi_stage_ns_per_byte if sgi else 0.0)
                    busy[i] += send_busy
                    if m.node_of(i) != m.node_of(j):
                        # Software data path: the library moves payload well
                        # below the hardware block-transfer rate.
                        per_byte = (
                            c.mpi_sgi_ns_per_byte - c.mpi_sgi_stage_ns_per_byte
                            if sgi
                            else c.mpi_new_ns_per_byte
                        )
                        sw = b * max(0.0, per_byte)
                        rmem[i] += sw
                        yield send_busy + sw
                        wire = (b / dir_bw) * gamma
                        link = node_link[m.node_of(i)]
                        t0 = sim.now
                        yield link.acquire()
                        yield wire
                        link.release()
                        rmem[i] += sim.now - t0  # queueing + wire
                    else:
                        yield send_busy
                    # 1-deep per-pair buffer: each chunk beyond the first
                    # waits for the receiver to drain its predecessor (the
                    # paper's explanation for MPI's elevated SYNC time).
                    yield chans[(i, j)].put((i, j, k, b))
                    if k > 1:
                        yield (k - 1.0) * c.mpi_channel_drain_ns
                    messages[i] += k
                    if trace_msgs:
                        rec.instant(
                            f"mpi.send {i}->{j}",
                            cat="sim.msg",
                            ts_us=(trace_t0_ns + sim.now) / 1e3,
                            pid=PID_SIM,
                            tid=i,
                            args={"bytes": b, "chunks": k},
                        )
                end_time[i] = max(end_time[i], sim.now)

            def receiver(i: int):
                yield float(start_offsets[i])
                for t in range(1, p):
                    s = (i - t) % p
                    k = float(chunks_m[s, i])
                    b = float(bytes_m[s, i])
                    if k <= 0:
                        continue
                    yield chans[(s, i)].get()
                    o = c.mpi_sgi_overhead_ns if sgi else c.mpi_new_overhead_ns
                    if phase.combine_messages:
                        # One packed message: cheap receive, but the chunks
                        # must be reorganized to their correct positions.
                        drain = o + b * c.mpi_reorg_ns_per_byte
                    else:
                        drain = k * o + b * (
                            c.mpi_sgi_stage_ns_per_byte
                            if sgi
                            else c.mpi_new_place_ns_per_byte
                        )
                    busy[i] += drain
                    yield drain
                    if trace_msgs:
                        rec.instant(
                            f"mpi.recv {s}->{i}",
                            cat="sim.msg",
                            ts_us=(trace_t0_ns + sim.now) / 1e3,
                            pid=PID_SIM,
                            tid=i,
                            args={"bytes": b, "chunks": k},
                        )
                end_time[i] = max(end_time[i], sim.now)

            for i in range(p):
                sim.process(sender(i), f"send{i}", tid=i)
                sim.process(receiver(i), f"recv{i}", tid=i)
        else:  # SHMEM: one-sided transfers, no handshake
            puts = phase.transport is Transport.SHMEM_PUT

            def getter(i: int):
                yield float(start_offsets[i])
                for t in range(1, p):
                    # get: processor i pulls its chunks from source s;
                    # put: processor i pushes its chunks to destination s.
                    s = (i + t) % p
                    k = float(chunks_m[i, s] if puts else chunks_m[s, i])
                    b = float(bytes_m[i, s] if puts else bytes_m[s, i])
                    if k <= 0:
                        continue
                    get_busy = k * c.shmem_overhead_ns
                    busy[i] += get_busy
                    if m.node_of(s) != m.node_of(i):
                        sw = b * c.shmem_ns_per_byte
                        rmem[i] += sw
                        yield get_busy + sw
                        lat = self.interconnect.uncontended_latency_ns(i, s)
                        wire = (b / dir_bw) * gamma + lat
                        # gets contend at the source's node link, puts at
                        # the destination's.
                        link = node_link[m.node_of(s)]
                        t0 = sim.now
                        yield link.acquire()
                        yield wire
                        link.release()
                        rmem[i] += sim.now - t0
                    else:
                        yield get_busy
                    messages[i] += k
                    if trace_msgs:
                        rec.instant(
                            f"shmem.{'put' if puts else 'get'} {i}<->{s}",
                            cat="sim.msg",
                            ts_us=(trace_t0_ns + sim.now) / 1e3,
                            pid=PID_SIM,
                            tid=i,
                            args={"bytes": b, "chunks": k},
                        )
                end_time[i] = sim.now

            for i in range(p):
                sim.process(getter(i), f"get{i}", tid=i)

        sim.run()
        if sim.sanitizer is not None:
            # Every message produced must have been consumed and every
            # DES process must have run to completion: a mismatch between
            # sender and receiver schedules would otherwise silently
            # truncate the phase's waiting time.
            sim.sanitizer.on_exchange_drained(
                sim, chans.values() if is_mpi else (), phase.name
            )
        # Chunks destined for the local partition are placed by plain
        # memcpy outside the network.
        diag = np.diag(bytes_m).astype(np.float64)
        busy += diag * c.copy_busy_ns_per_byte
        elapsed = end_time - start_offsets
        out.busy = busy
        out.rmem = rmem
        out.sync = np.maximum(0.0, elapsed - busy - rmem)
        out.messages = messages
        out.bytes_sent = net.sum(axis=1)
        return out

    # ------------------------------------------------------------------
    def _pad(self, matrix: np.ndarray) -> np.ndarray:
        """Grow a (p, p) phase matrix to the machine's full processor count
        (idle processors contribute zero traffic)."""
        p = matrix.shape[0]
        full = self.machine.n_processors
        if p == full:
            return matrix
        padded = np.zeros((full, full))
        padded[:p, :p] = matrix
        return padded
