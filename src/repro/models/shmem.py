"""The SHMEM model: one-sided put/get over a symmetric address space.

Structurally the SHMEM programs are the MPI programs with the send/receive
pairs replaced by receiver-initiated ``get`` operations (Sections 3.1-3.2):
only one side computes message parameters, there is no staging copy, no
receive matching, and no 1-deep channel handshake -- which is why SHMEM
shows the lowest SYNC time of the explicit models (Figure 4d).  ``get`` is
preferred over ``put`` because it deposits data in the requester's cache.
"""

from __future__ import annotations

from ..smp.phases import Transport
from .mpi import _MPIBase


class SHMEMModel(_MPIBase):
    name = "shmem"
    exchange_transport = Transport.SHMEM_GET

    def __init__(self, op: str = "get"):
        """``op`` selects the one-sided primitive: ``"get"`` (the paper's
        choice -- data lands in the requester's cache) or ``"put"``
        (sender-initiated; the destination's next pass starts cold)."""
        super().__init__()
        if op not in ("get", "put"):
            raise ValueError(f"op must be 'get' or 'put', not {op!r}")
        self.op = op
        self.exchange_transport = (
            Transport.SHMEM_GET if op == "get" else Transport.SHMEM_PUT
        )
