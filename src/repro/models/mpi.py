"""The message-passing (MPI) model, in two implementations.

Both use ``MPI_Allgather`` for histogram/sample collection followed by
redundant local computation of global offsets/splitters (Section 3.1:
"having all the histogram information locally greatly simplifies the later
computation of parameters for the MPI send/receive functions").  The
permutation sends each contiguously-destined chunk as a separate message
(the variant the paper found faster on this machine).

- :class:`MPINewModel` ("NEW"): the authors' MPICH-derived implementation
  that copies directly into the destination process's address space --
  lower per-message overhead, no staging copy.
- :class:`MPISGIModel` ("SGI"): the vendor implementation, which stages
  every message through a library buffer in the shared address space
  (an extra copy on each side) and has higher per-message overhead.
"""

from __future__ import annotations

import numpy as np

from ..smp.phases import CollectivePhase, Transport, uniform_compute
from ..smp.team import Team
from ..params import ELEM_BYTES, SAMPLES_PER_PROC
from .base import ProgrammingModel

#: Cost per histogram bin of locally reducing p gathered histograms into
#: global offsets (simple integer adds over cached data).
COMBINE_NS_PER_CELL = 4.0


class _MPIBase(ProgrammingModel):
    buffers_locally = True

    def __init__(self, combine_messages: bool = False):
        """``combine_messages`` selects the paper's rejected alternative:
        "for process i to send only one message to each other process j,
        containing all its chunks of keys ... Processor j will then
        reorganize the data chunks to their correct positions" (Section
        3.1).  Default is the strategy the paper found faster: one
        message per contiguously-destined chunk."""
        self.combine_messages = combine_messages

    def accumulate_histograms(self, team: Team, n_bins: int, pass_name: str) -> None:
        team.collective(
            CollectivePhase(
                f"{pass_name}.allgather-hist",
                team.n_procs,
                bytes_per_proc=float(n_bins * ELEM_BYTES),
                transport=self.exchange_transport,
            )
        )
        # Every process redundantly combines all p local histograms.
        combine = team.n_procs * n_bins * COMBINE_NS_PER_CELL
        team.compute(
            uniform_compute(
                f"{pass_name}.hist-combine", np.full(team.n_procs, combine)
            )
        )

    def gather_samples(self, team: Team, sample_bytes: float, name: str) -> None:
        team.collective(
            CollectivePhase(
                f"{name}.allgather-samples",
                team.n_procs,
                bytes_per_proc=float(sample_bytes),
                transport=self.exchange_transport,
            )
        )
        # "the computation of the splitters becomes completely local, with
        # the tradeoff that a lot of it is redundantly performed on all
        # processes" (Section 3.2).
        total_samples = team.n_procs * SAMPLES_PER_PROC
        busy = total_samples * team.costs.sample_sort_busy_ns_per_key
        team.compute(
            uniform_compute(f"{name}.splitters", np.full(team.n_procs, busy))
        )


class MPINewModel(_MPIBase):
    name = "mpi-new"
    exchange_transport = Transport.MPI_NEW


class MPISGIModel(_MPIBase):
    name = "mpi-sgi"
    exchange_transport = Transport.MPI_SGI
