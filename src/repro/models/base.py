"""Programming-model interface.

A programming model encapsulates *how* the algorithm's communication steps
are realized on the machine: how local histograms become global ones, how
sample keys are gathered, and which transport moves the permuted keys.
The sorting algorithms (:mod:`repro.sorts`) are written once against this
interface -- mirroring the paper's observation that "the basic parallel
algorithms are also similar across programming models, a useful property
that allows programming models to be compared more easily" (Section 3).
"""

from __future__ import annotations

import abc

import numpy as np

from ..smp.phases import ExchangePhase, Transport
from ..smp.team import Team
from ..trace import PID_SIM, current_recorder


class ProgrammingModel(abc.ABC):
    """One of the paper's three programming models (MPI counted twice for
    its two implementations)."""

    #: Registry key and display name ("ccsas", "mpi-new", ...).
    name: str = ""
    #: Transport used for the radix-sort key-permutation exchange.
    exchange_transport: Transport
    #: Transport used for sample sort's single distribution exchange.
    #: Defaults to ``exchange_transport``; CC-SAS overrides it with
    #: contiguous remote *reads* ("the temporal scatteredness and even the
    #: need for remote writes disappear in CC-SAS", Section 4.3).
    sample_transport: Transport | None = None
    #: Whether the permutation writes into local buffers first (MPI, SHMEM
    #: and CC-SAS-NEW do; the original CC-SAS program writes straight into
    #: the shared output array).
    buffers_locally: bool = True
    #: MPI only: pack all of a destination's chunks into one message and
    #: reorganize at the receiver (the strategy the paper evaluated and
    #: rejected in Section 3.1).
    combine_messages: bool = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def accumulate_histograms(
        self, team: Team, n_bins: int, pass_name: str
    ) -> None:
        """Turn per-process local histograms into globally known offsets."""

    @abc.abstractmethod
    def gather_samples(self, team: Team, sample_bytes: float, name: str) -> None:
        """Collect every process's sample keys and compute splitters."""

    # ------------------------------------------------------------------
    def exchange(
        self,
        team: Team,
        name: str,
        comm,  # CommMatrices (duck-typed to avoid an import cycle with repro.sorts)
        locality: float = 0.0,
        writer_buckets: int = 0,
        span_bytes: float = 0.0,
        transport: Transport | None = None,
    ) -> None:
        """All-to-all personalized communication of permuted keys."""
        rec = current_recorder()
        if rec.enabled:
            off_diag = comm.bytes_matrix.copy()
            np.fill_diagonal(off_diag, 0.0)
            rec.instant(
                f"{self.name}.exchange:{name}",
                cat="model.exchange",
                ts_us=float(team.clock.min()) / 1e3,
                pid=PID_SIM,
                tid=0,
                args={
                    "transport": str(transport or self.exchange_transport),
                    "remote_bytes": float(off_diag.sum()),
                    "messages": float(comm.chunks_matrix.sum()),
                },
            )
        team.exchange(
            ExchangePhase(
                name=name,
                bytes_matrix=comm.bytes_matrix,
                chunks_matrix=np.maximum(
                    comm.chunks_matrix, (comm.bytes_matrix > 0).astype(float)
                ),
                transport=transport or self.exchange_transport,
                locality=locality,
                writer_buckets=writer_buckets,
                span_bytes=span_bytes,
                combine_messages=self.combine_messages,
            )
        )

    def exchange_for_sample(self, team: Team, name: str, comm, locality: float = 0.0) -> None:
        """Sample sort's phase-4 distribution (one chunk per pair)."""
        self.exchange(
            team, name, comm, locality=locality,
            transport=self.sample_transport or self.exchange_transport,
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
