"""Programming-model runtimes: CC-SAS, CC-SAS-NEW, MPI (SGI & NEW), SHMEM."""

from .base import ProgrammingModel
from .ccsas import CCSASModel, CCSASNewModel
from .mpi import MPINewModel, MPISGIModel
from .shmem import SHMEMModel

MODELS: dict[str, type[ProgrammingModel]] = {
    cls.name: cls
    for cls in (CCSASModel, CCSASNewModel, MPINewModel, MPISGIModel, SHMEMModel)
}

#: Aliases accepted by :func:`get_model`.
_ALIASES = {
    "cc-sas": "ccsas",
    "cc-sas-new": "ccsas-new",
    "ccsas_new": "ccsas-new",
    "mpi": "mpi-new",  # the paper's own results use their NEW implementation
    "mpi_new": "mpi-new",
    "mpi_sgi": "mpi-sgi",
    "sgi": "mpi-sgi",
}


def get_model(name: str) -> ProgrammingModel:
    """Instantiate a programming model by name (with common aliases)."""
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        return MODELS[key]()
    except KeyError:
        raise ValueError(
            f"unknown programming model {name!r}; choose from "
            f"{sorted(MODELS)} (aliases: {sorted(_ALIASES)})"
        ) from None


__all__ = [
    "CCSASModel",
    "CCSASNewModel",
    "MODELS",
    "MPINewModel",
    "MPISGIModel",
    "ProgrammingModel",
    "SHMEMModel",
    "get_model",
]
