"""The cache-coherent shared address space (CC-SAS) model.

Communication and replication are implicit: processes load and store
shared data and the coherence hardware moves lines.  Histogram
accumulation uses the SPLASH-2 binary prefix tree over fine-grained shared
accesses -- cheap and size-independent, which is why CC-SAS wins on small
data sets (Section 4.2).  Two permutation variants exist:

- :class:`CCSASModel` -- the original SPLASH-2 program writes keys straight
  into the shared output array, producing temporally scattered remote
  stores and a storm of coherence-protocol transactions;
- :class:`CCSASNewModel` -- the paper's restructured version buffers keys
  locally and copies contiguous chunks, like the message-passing versions
  (Section 4.2.1).
"""

from __future__ import annotations

import math

import numpy as np

from ..machine.access import SequentialScan
from ..machine.memory import HomeLocation
from ..smp.phases import PrefixTreePhase, Transport, uniform_compute
from ..smp.team import Team
from ..params import ELEM_BYTES, SAMPLES_PER_PROC
from .base import ProgrammingModel

#: The paper's sample-collection grouping: "every set of 32 processes forms
#: a group and selects one member to be responsible to collect the sample
#: keys, sort them, and communicate with other groups".
GROUP_SIZE = 32


class CCSASModel(ProgrammingModel):
    name = "ccsas"
    exchange_transport = Transport.CCSAS_SCATTERED
    sample_transport = Transport.CCSAS_READ
    buffers_locally = False

    def accumulate_histograms(self, team: Team, n_bins: int, pass_name: str) -> None:
        team.prefix_tree(
            PrefixTreePhase(f"{pass_name}.hist-tree", team.n_procs, n_bins)
        )

    def gather_samples(self, team: Team, sample_bytes: float, name: str) -> None:
        p = team.n_procs
        costs = team.costs
        n_groups = max(1, math.ceil(p / GROUP_SIZE))
        samples_total = p * SAMPLES_PER_PROC
        busy = np.zeros(p)
        patterns: list[list] = [[] for _ in range(p)]
        leaders = [g * GROUP_SIZE for g in range(n_groups)]
        for leader in leaders:
            group_n = min(GROUP_SIZE, p - leader) * SAMPLES_PER_PROC
            # Leader reads the group's samples via remote loads and sorts
            # them; leaders then exchange partial results.
            busy[leader] = group_n * costs.sample_sort_busy_ns_per_key
            patterns[leader].append(
                (
                    SequentialScan(group_n, ELEM_BYTES),
                    HomeLocation.remote(team.machine, leader),
                )
            )
        # Everyone then reads the shared splitter array (p-1 keys: noise).
        team.compute(uniform_compute(f"{name}.collect", busy, patterns))
        team.barrier(f"{name}.splitters-ready")
        # Cross-group merge is serialized among leaders; tiny for p <= 64.
        _ = samples_total


class CCSASNewModel(CCSASModel):
    """CC-SAS with locally buffered permutation (the paper's CC-SAS-NEW)."""

    name = "ccsas-new"
    exchange_transport = Transport.CCSAS_BULK
    sample_transport = Transport.CCSAS_READ
    buffers_locally = True
