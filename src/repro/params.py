"""Shared workload constants (import-cycle-free home).

Both the programming-model layer and the sorting layer need these; keeping
them here lets ``repro.models`` avoid importing ``repro.sorts`` (which
imports ``repro.models``).
"""

#: The paper sorts 32-bit integer keys.
ELEM_BYTES = 4

#: Keys are non-negative 31-bit values (MAX set to 2**31, Section 3.3).
KEY_BITS = 31
MAX_KEY = 1 << 31

#: Sample sort's phase-2 sample count: "Each process selects 128 sample
#: keys" (Section 3.2).
SAMPLES_PER_PROC = 128
