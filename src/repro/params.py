"""Shared workload constants (import-cycle-free home).

Both the programming-model layer and the sorting layer need these; keeping
them here lets ``repro.models`` avoid importing ``repro.sorts`` (which
imports ``repro.models``).
"""

#: The paper sorts 32-bit integer keys.
ELEM_BYTES = 4


def elem_bytes_for(key_bits: int) -> int:
    """Bytes per key element: the paper's 4 for keys up to 32 bits, 8 for
    the widened workload matrix (64-bit, float-transformed, and composite
    record keys) -- wide keys must pay double the memory and wire traffic."""
    return 8 if key_bits > 32 else ELEM_BYTES

#: Keys are non-negative 31-bit values (MAX set to 2**31, Section 3.3).
KEY_BITS = 31
MAX_KEY = 1 << 31

#: Sample sort's phase-2 sample count: "Each process selects 128 sample
#: keys" (Section 3.2).
SAMPLES_PER_PROC = 128
