"""The machine-model zoo: named machine configurations by registry.

The paper measures one machine (the Origin2000); the machine layer is
parameterized enough to describe a *zoo* of cost models around that
design point (docs/MACHINES.md):

- ``origin2000`` -- the paper's directory-based CC-NUMA machine;
- ``multicore`` -- a modern shared-LLC multicore (uniform memory, no
  directory);
- ``bsp`` -- a BSP abstract machine parameterized by (g, L), mapping
  BUSY/LMEM/RMEM/SYNC onto superstep accounting;
- ``ap1000`` -- an AP1000-style distributed-memory machine with no
  remote loads (all remote traffic through message channels).

:func:`get_machine` resolves a name (plus processor count) into a
:class:`~repro.machine.config.MachineConfig`, mirroring how
:func:`repro.models.get_model` resolves programming models.
"""

from __future__ import annotations

from typing import Callable

from .config import MachineConfig


class UnsupportedTransportError(ValueError):
    """A programming model's transport cannot run on this machine kind.

    Raised when a shared-address transport (CC-SAS remote stores/reads,
    SHMEM one-sided gets) meets a machine with no remote loads (the
    AP1000 kind): those transports *are* remote memory accesses, which
    the machine forbids by construction.  Carries the offending
    ``machine_kind`` and ``transport`` for programmatic handling.
    """

    def __init__(self, machine_kind: str, transport: str, detail: str = ""):
        self.machine_kind = machine_kind
        self.transport = transport
        msg = (
            f"transport {transport!r} is not supported on a "
            f"{machine_kind!r} machine"
        )
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


def _origin2000(n_procs: int, page_bytes: int | None) -> MachineConfig:
    return MachineConfig.origin2000(
        n_processors=n_procs, scale=1, page_bytes=page_bytes
    )


def _multicore(n_procs: int, page_bytes: int | None) -> MachineConfig:
    del page_bytes  # fixed 4 KB pages; the OS is not the paper's OS
    return MachineConfig.multicore(n_processors=n_procs)


def _bsp(n_procs: int, page_bytes: int | None) -> MachineConfig:
    del page_bytes  # the BSP model has no memory hierarchy to page
    return MachineConfig.bsp(n_processors=n_procs)


def _ap1000(n_procs: int, page_bytes: int | None) -> MachineConfig:
    del page_bytes
    return MachineConfig.ap1000(n_processors=n_procs)


#: Registry: machine name -> builder(n_procs, page_bytes).
MACHINES: dict[str, Callable[[int, int | None], MachineConfig]] = {
    "origin2000": _origin2000,
    "multicore": _multicore,
    "bsp": _bsp,
    "ap1000": _ap1000,
}

#: Aliases accepted by :func:`get_machine`.
_ALIASES = {
    "origin": "origin2000",
    "o2k": "origin2000",
    "smp": "multicore",
    "llc": "multicore",
    "bsp-gl": "bsp",
    "ap-1000": "ap1000",
}

#: Which programming models each machine kind supports (None = all).
#: The AP1000 has no remote loads: shared-address transports (CC-SAS
#: stores/reads, SHMEM gets) cannot be expressed, only channels can.
SUPPORTED_MODELS: dict[str, tuple[str, ...] | None] = {
    "ccdsm": None,
    "multicore": None,
    "bsp": None,
    "ap1000": ("mpi-new", "mpi-sgi"),
}


def get_machine(
    name: str, n_procs: int = 64, page_bytes: int | None = None
) -> MachineConfig:
    """Build a machine configuration by registry name (with aliases).

    ``page_bytes`` tunes the paged machines (the Origin2000 preset);
    machine kinds without a meaningful page abstraction ignore it.
    """
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        builder = MACHINES[key]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; choose from "
            f"{sorted(MACHINES)} (aliases: {sorted(_ALIASES)})"
        ) from None
    return builder(n_procs, page_bytes)


def supported_models(machine: MachineConfig) -> tuple[str, ...] | None:
    """Programming-model names runnable on ``machine`` (None = all)."""
    return SUPPORTED_MODELS.get(machine.kind)


def check_transport(machine: MachineConfig, transport) -> None:
    """Reject transports a machine kind cannot express.

    Called from the phase executor before any exchange: on an AP1000
    machine, CC-SAS writes/reads and SHMEM one-sided gets are remote
    memory accesses, which the machine forbids; only message-passing
    transports (channels) may move remote data.
    """
    if machine.kind != "ap1000":
        return
    if getattr(transport, "is_message_passing", False):
        return
    raise UnsupportedTransportError(
        machine.kind,
        str(transport),
        "the AP1000 has no remote loads; use an MPI model",
    )


__all__ = [
    "MACHINES",
    "SUPPORTED_MODELS",
    "UnsupportedTransportError",
    "check_transport",
    "get_machine",
    "supported_models",
]
