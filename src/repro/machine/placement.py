"""NUMA page-placement policies.

The Origin2000's performance depends on where pages are homed.  All the
paper's programs allocate each process's array partition on that process's
node (the IRIX default first-touch policy gives exactly this for SPMD
initialization), which is what makes "local" phases local.  Round-robin
striping -- the alternative policy for irregular codes -- spreads every
partition's pages across all nodes, turning most "local" accesses remote.

:func:`partition_home` converts the machine's configured policy into the
:class:`~repro.machine.memory.HomeLocation` the phase cost model uses for
partition-private data.
"""

from __future__ import annotations

from .config import MachineConfig
from .memory import HomeLocation
from .topology import average_remote_latency_ns

FIRST_TOUCH = "first-touch"
ROUND_ROBIN = "round-robin"
POLICIES = (FIRST_TOUCH, ROUND_ROBIN)


def validate_policy(policy: str) -> str:
    if policy not in POLICIES:
        raise ValueError(
            f"unknown page placement {policy!r}; choose from {POLICIES}"
        )
    return policy


def partition_home(machine: MachineConfig, proc: int = 0) -> HomeLocation:
    """Home of a processor's own array partition under the machine's
    placement policy."""
    policy = getattr(machine, "placement", FIRST_TOUCH)
    validate_policy(policy)
    if policy == FIRST_TOUCH:
        return HomeLocation.local()
    # Round-robin: pages striped over all nodes; only 1/n_nodes of a
    # partition is local.
    remote_fraction = 1.0 - 1.0 / machine.n_nodes
    if remote_fraction == 0.0:
        return HomeLocation.local()
    return HomeLocation(remote_fraction, average_remote_latency_ns(machine, proc))
