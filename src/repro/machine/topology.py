"""Hypercube router topology of the Origin2000.

The 64-processor machine has 16 routers (each serving two 2-processor
nodes) connected as a 4-dimensional hypercube.  Remote latency grows by
roughly 100 ns per router hop; the bisection width bounds all-to-all
bandwidth.  Routing is dimension-ordered (e-cube), which is what the real
SPIDER routers implement.
"""

from __future__ import annotations

import numpy as np

from .config import MachineConfig


class Hypercube:
    """A d-dimensional hypercube over ``2**d`` routers."""

    def __init__(self, dim: int):
        if dim < 0:
            raise ValueError("dimension must be non-negative")
        self.dim = dim
        self.n_routers = 1 << dim

    @classmethod
    def for_machine(cls, machine: MachineConfig) -> "Hypercube":
        return cls(machine.hypercube_dim)

    # ------------------------------------------------------------------
    def hops(self, a: int, b: int) -> int:
        """Number of router-to-router hops between routers ``a`` and ``b``
        (the Hamming distance of their indices)."""
        self._check(a)
        self._check(b)
        return int(a ^ b).bit_count()

    def hop_matrix(self) -> np.ndarray:
        """(n_routers, n_routers) matrix of hop counts."""
        idx = np.arange(self.n_routers)
        xor = idx[:, None] ^ idx[None, :]
        return bit_count(xor)

    def route(self, a: int, b: int) -> list[int]:
        """Dimension-ordered route from ``a`` to ``b``, inclusive."""
        self._check(a)
        self._check(b)
        path = [a]
        cur = a
        for d in range(self.dim):
            bit = 1 << d
            if (cur ^ b) & bit:
                cur ^= bit
                path.append(cur)
        return path

    def links_on_route(self, a: int, b: int) -> list[tuple[int, int]]:
        """The undirected links traversed by the dimension-ordered route,
        each normalized as (low, high)."""
        path = self.route(a, b)
        return [tuple(sorted(pair)) for pair in zip(path, path[1:])]

    def neighbors(self, router: int) -> list[int]:
        self._check(router)
        return [router ^ (1 << d) for d in range(self.dim)]

    @property
    def n_links(self) -> int:
        """Total undirected links: each router has ``dim`` neighbors."""
        return self.n_routers * self.dim // 2

    @property
    def bisection_links(self) -> int:
        """Links crossing the worst-case bisection (= n_routers / 2)."""
        return max(1, self.n_routers // 2)

    @property
    def diameter(self) -> int:
        return self.dim

    def average_hops(self) -> float:
        """Mean hops between distinct routers (= dim * 2**(dim-1) / (2**dim - 1))."""
        if self.n_routers == 1:
            return 0.0
        total = self.dim * (1 << (self.dim - 1)) * self.n_routers
        # ``total`` counts ordered pairs including self-pairs (which add 0).
        return total / (self.n_routers * (self.n_routers - 1))

    def _check(self, r: int) -> None:
        if not 0 <= r < self.n_routers:
            raise ValueError(f"router {r} out of range [0, {self.n_routers})")


def bit_count(x: np.ndarray) -> np.ndarray:
    """Vectorized popcount for non-negative integer arrays."""
    x = np.asarray(x, dtype=np.uint64)
    count = np.zeros(x.shape, dtype=np.int64)
    while np.any(x):
        count += (x & np.uint64(1)).astype(np.int64)
        x >>= np.uint64(1)
    return count


def proc_hop_matrix(machine: MachineConfig) -> np.ndarray:
    """(p, p) matrix of router hops between every processor pair."""
    cube = Hypercube.for_machine(machine)
    routers = np.array([machine.router_of(i) for i in range(machine.n_processors)])
    hop = cube.hop_matrix()
    return hop[routers[:, None], routers[None, :]]


def remote_latency_ns(machine: MachineConfig, src: int, dst: int) -> float:
    """Uncontended read latency from processor ``src`` to memory homed at
    processor ``dst``'s node."""
    if machine.node_of(src) == machine.node_of(dst):
        return machine.local_read_ns
    hops = Hypercube.for_machine(machine).hops(
        machine.router_of(src), machine.router_of(dst)
    )
    return machine.local_read_ns + machine.remote_base_ns + machine.hop_ns * hops


def average_remote_latency_ns(machine: MachineConfig, src: int = 0) -> float:
    """Average uncontended latency from ``src`` to memory on *other* nodes."""
    lat = [
        remote_latency_ns(machine, src, dst)
        for dst in range(machine.n_processors)
        if machine.node_of(dst) != machine.node_of(src)
    ]
    if not lat:
        return machine.local_read_ns
    return float(np.mean(lat))
