"""Exact set-associative LRU cache reference simulator.

This is the ground truth the analytic model in :mod:`repro.machine.cache`
is validated against.  It processes explicit address streams one access at
a time, so it is only suitable for the small streams used in tests and for
debugging -- the experiment harness never calls it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import CacheConfig


@dataclass
class RefStats:
    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class ReferenceCache:
    """Exact set-associative LRU cache with write-allocate/write-back."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._n_sets = config.n_sets
        # Per set: list of (tag, dirty) ordered most- to least-recently used.
        self._sets: list[list[list]] = [[] for _ in range(self._n_sets)]
        self.stats = RefStats()

    def reset(self) -> None:
        self._sets = [[] for _ in range(self._n_sets)]
        self.stats = RefStats()

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool = False) -> bool:
        """Access one byte address.  Returns True on hit."""
        if addr < 0:
            raise ValueError("addresses must be non-negative")
        line = addr >> self._line_shift
        set_idx = line % self._n_sets
        tag = line // self._n_sets
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                ways.insert(0, ways.pop(i))
                if is_write:
                    ways[0][1] = True
                return True
        # Miss: allocate, evicting LRU if the set is full.
        self.stats.misses += 1
        if len(ways) >= self.config.associativity:
            victim = ways.pop()
            if victim[1]:
                self.stats.writebacks += 1
        ways.insert(0, [tag, bool(is_write)])
        return False

    def run(self, addresses: np.ndarray | list[int], is_write: bool = False) -> RefStats:
        """Process a whole address stream; returns cumulative stats."""
        for a in np.asarray(addresses, dtype=np.int64):
            self.access(int(a), is_write)
        return self.stats

    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        line = addr >> self._line_shift
        set_idx = line % self._n_sets
        tag = line // self._n_sets
        return any(entry[0] == tag for entry in self._sets[set_idx])

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
