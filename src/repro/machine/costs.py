"""Calibrated cost constants for the performance model.

Every constant is in nanoseconds (or ns/byte) on the 195 MHz R10000 of the
paper's Origin2000.  The CPU-work constants are calibrated so that the
*sequential* radix sort reproduces the per-key times of the paper's Table 1
(1.61 s for 1M Gauss keys ~= 400 ns/key/pass at radix 8, rising to
~560 ns/key/pass at 64M as TLB misses appear); the messaging constants are
calibrated so that the model-vs-model gaps of Figures 1-4 have the paper's
shape.  See EXPERIMENTS.md for the resulting paper-vs-measured comparison.

The paper's own methodology is counter-based phase accounting (Section 4),
so a calibrated phase-cost model is the faithful reproduction target -- we
model *where time goes*, not individual instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    # ------------------------------------------------------------------
    # CPU busy work (pure instruction time, no memory stalls)
    # ------------------------------------------------------------------
    #: Histogram pass: load key, extract digit, increment counter.
    hist_busy_ns_per_key: float = 100.0
    #: Permutation pass: load key, load/increment offset, store key.
    permute_busy_ns_per_key: float = 180.0
    #: Local-sort bookkeeping shared by both phases of one radix pass
    #: (loop control already folded into the two constants above).
    #: memcpy-style buffer copy (busy component; misses modeled separately).
    copy_busy_ns_per_byte: float = 1.0
    #: Comparing / binary-searching one key against the splitter array
    #: (sample sort phase 4 destination computation).
    splitter_busy_ns_per_key: float = 60.0
    #: Sorting one sample key during splitter selection (small local sort).
    sample_sort_busy_ns_per_key: float = 150.0

    # ------------------------------------------------------------------
    # Memory hierarchy
    # ------------------------------------------------------------------
    #: L1 miss that hits in L2 (the R10000's L2 is ~10 cycles away; folded
    #: into busy constants above except where a phase is L2-bound).
    l2_hit_ns: float = 20.0
    #: TLB refill (R10000 software-assisted refill; the analytic TLB model
    #: additionally scales this by a page-table-walk factor that grows
    #: logarithmically with the mapped span).
    tlb_miss_ns: float = 200.0
    #: Writing back a dirty line to local memory (half a read, pipelined).
    writeback_ns: float = 80.0
    #: Capacity-gated scatter penalty: once a permutation's destination
    #: span no longer fits in L2, temporally scattered appends cost extra
    #: misses ("once the data being locally permuted don't fit in the 4MB
    #: second-level cache the data access pattern matters a lot", Section
    #: 4.2.2).  Expressed as the fraction of appends that take an extra
    #: miss at full pressure; scaled down by destination-stream locality,
    #: by how few bucket streams are active (the 'half' distribution runs
    #: half as many), and ramped in as span grows past L2/2.
    scatter_capacity_miss_rate: float = 0.25

    # ------------------------------------------------------------------
    # Messaging (MPI / SHMEM software layers over the NUMA hardware)
    # ------------------------------------------------------------------
    #: Per-message CPU overhead of our MPICH-derived "NEW" MPI send/recv
    #: (descriptor setup, queue management) -- each side.
    mpi_new_overhead_ns: float = 15000.0
    #: Per-message overhead of the vendor (SGI MPT) MPI -- each side.
    mpi_sgi_overhead_ns: float = 40000.0
    #: Software data-path cost per payload byte.  Even the direct-copy MPI
    #: moves data through a portable library path at a fraction of the
    #: hardware block-transfer rate; the vendor MPI additionally stages
    #: through a bounce buffer (one extra copy each side).  SHMEM gets ride
    #: the hardware block-transfer engine almost directly.
    mpi_new_ns_per_byte: float = 45.0
    mpi_sgi_ns_per_byte: float = 110.0
    shmem_ns_per_byte: float = 8.0
    #: The staging-copy component of the SGI path, charged as CPU busy on
    #: both sides (already included in mpi_sgi_ns_per_byte's total).
    mpi_sgi_stage_ns_per_byte: float = 30.0
    #: Receive-side placement copy for MPI-NEW (direct into user buffer,
    #: single copy done by hardware block transfer; cheap).
    mpi_new_place_ns_per_byte: float = 0.0
    #: Destination-side reorganization when the sender combines all chunks
    #: for a destination into ONE message (the paper's alternative MPI
    #: strategy, "similar to the algorithm used in the NAS parallel
    #: application IS"): the receiver must scatter the packed chunks to
    #: their correct positions.  Per payload byte.
    mpi_reorg_ns_per_byte: float = 25.0
    #: One-sided SHMEM get/put initiation overhead.
    shmem_overhead_ns: float = 4000.0
    #: Time the receiver needs to drain one message from the 1-deep channel
    #: before the sender may reuse it (MPI only; the paper blames this
    #: handshake for MPI's higher SYNC time, Section 4.2).  Charged as
    #: sender-side waiting for every chunk beyond a pair's first.
    mpi_channel_drain_ns: float = 60000.0

    # ------------------------------------------------------------------
    # Collectives and synchronization
    # ------------------------------------------------------------------
    #: Barrier cost per participating processor (log-tree, per level).
    barrier_ns_per_level: float = 2500.0
    #: Allgather fixed cost per *participating processor* (total fixed cost
    #: = p x this).  The paper blames this data-size-independent cost for
    #: MPI/SHMEM losing to CC-SAS on small data sets: "This operation has a
    #: fixed cost that does not change with the data set size, so for
    #: smaller data sets it occupies a larger part of the execution time"
    #: (Section 4.2).
    allgather_ns_per_proc: float = 62500.0
    #: Collective efficiency relative to SHMEM ("the collective
    #: communication function is not so efficient as in SHMEM").
    allgather_mpi_new_factor: float = 1.3
    allgather_mpi_sgi_factor: float = 2.0
    #: Allgather per received byte (everyone receives (p-1) blocks).
    allgather_ns_per_byte: float = 2.0
    #: CC-SAS parallel prefix tree: cost per tree node visited per element
    #: (fine-grained load/store communication, directly in hardware).
    prefix_tree_ns_per_elem: float = 60.0

    # ------------------------------------------------------------------
    # Coherence protocol (CC-SAS remote stores)
    # ------------------------------------------------------------------
    #: Extra protocol transactions per remotely written line beyond the
    #: data transfer itself: read-exclusive request, invalidation(s),
    #: acknowledgement, eventual writeback = ~4 controller visits.
    protocol_transactions_per_remote_write_line: float = 4.0
    #: Effective protocol-cost model for temporally scattered remote
    #: stores (the original SPLASH-2 permutation).  The per-transaction
    #: multiplier over raw controller occupancy is
    #:
    #:   c = (base + span * min(1, node_in_bytes / sat)**1.5) * (p/64)**1.2
    #:
    #: -- scattered stores cost a full protocol round trip each even when
    #: uncontended (base); hubs NACK and retry as incoming load approaches
    #: saturation (span term); and hot-spotting grows superlinearly with
    #: the writer count (p exponent).  Calibrated against the CC-SAS bars
    #: of Figure 3: competitive at 1M keys, collapsed from 16M up.
    scattered_write_contention: float = 8.0
    scattered_write_contention_span: float = 80.0
    scattered_load_exponent: float = 1.5
    scattered_p_exponent: float = 1.2
    #: False sharing at destination-segment boundaries: scattered writers
    #: whose contiguous segments are small share cache lines with other
    #: writers, and every boundary line ping-pongs between owners.  The
    #: protocol multiplier grows with the segment-to-line ratio
    #: (1 + factor * chunks/lines); at radix 8 segments span several lines
    #: and the term is mild, at radix 11+ on small data sets nearly every
    #: line is shared and CC-SAS radix sort degrades -- which is why the
    #: paper's Table 3 keeps CC-SAS at radix 8.
    false_sharing_chunk_factor: float = 4.0
    #: Incoming remote-write bytes per node per phase at which the home
    #: controllers saturate.
    ctrl_saturation_bytes: float = 2_000_000.0
    #: The multiplier for buffered chunk copies (CC-SAS-NEW): bulk
    #: transfers pipeline at the controllers but implicit coherence still
    #: costs more than SHMEM's block-transfer engine.
    bulk_write_contention: float = 14.0
    #: Per-chunk setup cost of the CC-SAS-NEW buffered copy loop (dominates
    #: when chunks are tiny -- the reason CC-SAS-NEW is *slower* than the
    #: original CC-SAS program at 1M keys, Section 4.2.1).
    ccsas_chunk_copy_ns: float = 16000.0
    #: Per-chunk setup of a contiguous remote read (sample sort's CC-SAS
    #: distribution): cheaper, no write ownership to acquire.
    ccsas_read_chunk_ns: float = 4000.0

    def scaled(self, **overrides: float) -> "CostModel":
        """A copy with selected constants overridden (for ablations)."""
        return replace(self, **overrides)


DEFAULT_COSTS = CostModel()
