"""NUMA memory system: turns access patterns into stall time.

:class:`MemorySystem` composes the analytic cache and TLB models with the
machine's NUMA latencies, and attributes the resulting stall time to LMEM
(local memory) or RMEM (remote memory) exactly as the paper's per-processor
breakdowns do (Section 4: "CPU stall time waiting for local cache misses
(LMEM), CPU stall time for communicating remote data (RMEM)").
"""

from __future__ import annotations

from dataclasses import dataclass

from .access import AccessPattern
from .cache import AnalyticCache, MissStats
from .config import MachineConfig
from .costs import CostModel, DEFAULT_COSTS
from .tlb import AnalyticTLB, TLBStats
from .topology import average_remote_latency_ns


@dataclass(frozen=True)
class HomeLocation:
    """Where the data of a region lives relative to the accessing processor.

    ``remote_fraction`` of the region's pages are homed on other nodes, at
    an average uncontended latency of ``remote_ns``.
    """

    remote_fraction: float = 0.0
    remote_ns: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise ValueError("remote_fraction must be within [0, 1]")
        if self.remote_fraction > 0.0 and self.remote_ns <= 0.0:
            raise ValueError("remote accesses need a positive remote latency")

    @classmethod
    def local(cls) -> "HomeLocation":
        return cls(0.0, 0.0)

    @classmethod
    def partitioned(cls, machine: MachineConfig, src: int = 0) -> "HomeLocation":
        """A region partitioned evenly across all processors' nodes, as the
        key arrays are: all but the local node's share is remote."""
        remote_fraction = 1.0 - machine.procs_per_node / machine.n_processors
        return cls(remote_fraction, average_remote_latency_ns(machine, src))

    @classmethod
    def remote(cls, machine: MachineConfig, src: int = 0) -> "HomeLocation":
        """A region homed entirely on other nodes (average distance)."""
        return cls(1.0, average_remote_latency_ns(machine, src))


@dataclass(frozen=True)
class MemTime:
    """Stall-time outcome of one access pattern (plus diagnostics)."""

    lmem_ns: float = 0.0
    rmem_ns: float = 0.0
    l2_misses: float = 0.0
    tlb_misses: float = 0.0
    writebacks: float = 0.0
    bytes_missed: float = 0.0

    def __add__(self, other: "MemTime") -> "MemTime":
        return MemTime(
            self.lmem_ns + other.lmem_ns,
            self.rmem_ns + other.rmem_ns,
            self.l2_misses + other.l2_misses,
            self.tlb_misses + other.tlb_misses,
            self.writebacks + other.writebacks,
            self.bytes_missed + other.bytes_missed,
        )

    @property
    def total_ns(self) -> float:
        return self.lmem_ns + self.rmem_ns


ZERO_MEMTIME = MemTime()


class MemorySystem:
    """Per-processor view of the machine's memory hierarchy."""

    def __init__(self, machine: MachineConfig, costs: CostModel = DEFAULT_COSTS):
        self.machine = machine
        self.costs = costs
        self._l2 = AnalyticCache(machine.l2)
        self._tlb = AnalyticTLB(machine.tlb)
        # Patterns and homes are frozen dataclasses; SPMD phases evaluate
        # the same (pattern, home) once per processor, so memoize.
        self._cache: dict[tuple, MemTime] = {}

    # ------------------------------------------------------------------
    def pattern_time(
        self, pattern: AccessPattern, home: HomeLocation | None = None
    ) -> MemTime:
        """Stall time for one access pattern against data homed at ``home``
        (default: all local)."""
        home = home or HomeLocation.local()
        key = (pattern, home)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        cache: MissStats = self._l2.misses(pattern)
        tlb: TLBStats = self._tlb.misses(pattern)
        result = self._combine(cache, tlb, home)
        result = result + self._scatter_penalty(pattern, home)
        self._cache[key] = result
        return result

    def _scatter_penalty(
        self, pattern: AccessPattern, home: HomeLocation
    ) -> MemTime:
        """Capacity-gated extra misses for scattered bucket appends whose
        destination span exceeds the L2 cache (see CostModel docs)."""
        from .access import BucketedAppend

        if not isinstance(pattern, BucketedAppend) or pattern.n_elems == 0:
            return ZERO_MEMTIME
        l2 = self.machine.l2.size_bytes
        ramp = (pattern.span_bytes - l2 / 2) / l2
        ramp = min(1.0, max(0.0, ramp))
        if ramp == 0.0:
            return ZERO_MEMTIME
        pressure = min(
            1.0,
            pattern.n_buckets * self.machine.line_bytes / self.machine.l1.size_bytes,
        )
        extra = (
            self.costs.scatter_capacity_miss_rate
            * pattern.n_elems
            * (1.0 - pattern.locality)
            * ramp
            * pressure
        )
        stall = extra * self.machine.local_read_ns
        local = 1.0 - home.remote_fraction
        return MemTime(
            lmem_ns=stall * local,
            rmem_ns=extra * home.remote_fraction * (home.remote_ns or 0.0),
            l2_misses=extra,
        )

    def _combine(
        self, cache: MissStats, tlb: TLBStats, home: HomeLocation
    ) -> MemTime:
        m = self.machine
        c = self.costs
        local_misses = cache.misses * (1.0 - home.remote_fraction)
        remote_misses = cache.misses * home.remote_fraction
        lmem = (
            local_misses * m.local_read_ns
            + tlb.weighted_misses * c.tlb_miss_ns
            + cache.writebacks * c.writeback_ns
        )
        rmem = remote_misses * home.remote_ns
        return MemTime(
            lmem_ns=lmem,
            rmem_ns=rmem,
            l2_misses=cache.misses,
            tlb_misses=tlb.misses,
            writebacks=cache.writebacks,
            bytes_missed=cache.misses * m.line_bytes,
        )

    # ------------------------------------------------------------------
    def sequential_read_time(
        self, n_bytes: int, home: HomeLocation | None = None, resident: bool = False
    ) -> MemTime:
        """Convenience: stream ``n_bytes`` once (4-byte elements)."""
        from .access import SequentialScan

        n = n_bytes // 4
        return self.pattern_time(
            SequentialScan(n, 4, is_write=False, resident=resident), home
        )
