"""Simulated CC-NUMA machine: a parameterized SGI Origin2000.

Subsystems:

- :mod:`~repro.machine.config` -- machine geometry and presets
- :mod:`~repro.machine.access` -- access-pattern descriptors
- :mod:`~repro.machine.cache` / :mod:`~repro.machine.cache_ref` -- analytic
  and exact cache models
- :mod:`~repro.machine.tlb` -- analytic and exact TLB models
- :mod:`~repro.machine.topology` -- hypercube router fabric
- :mod:`~repro.machine.interconnect` -- bandwidth/contention model
- :mod:`~repro.machine.directory` -- coherence-protocol accounting
- :mod:`~repro.machine.memory` -- NUMA stall-time attribution (LMEM/RMEM)
- :mod:`~repro.machine.costs` -- calibrated cost constants
- :mod:`~repro.machine.zoo` -- named machine-model registry (the zoo)
"""

from .access import (
    AccessPattern,
    BucketedAppend,
    RandomAccess,
    SequentialScan,
    StridedScan,
)
from .cache import AnalyticCache, MissStats
from .cache_ref import ReferenceCache, RefStats
from .config import CacheConfig, MachineConfig, TLBConfig
from .costs import CostModel, DEFAULT_COSTS
from .directory import DirectoryProtocol, ProtocolLoad
from .interconnect import Interconnect, TransferTimes
from .memory import HomeLocation, MemorySystem, MemTime
from .placement import FIRST_TOUCH, POLICIES, ROUND_ROBIN, partition_home
from .tlb import AnalyticTLB, ReferenceTLB, TLBStats
from .topology import Hypercube, average_remote_latency_ns, remote_latency_ns
from .zoo import (
    MACHINES,
    UnsupportedTransportError,
    get_machine,
    supported_models,
)

__all__ = [
    "AccessPattern",
    "AnalyticCache",
    "AnalyticTLB",
    "BucketedAppend",
    "CacheConfig",
    "CostModel",
    "DEFAULT_COSTS",
    "DirectoryProtocol",
    "HomeLocation",
    "Hypercube",
    "Interconnect",
    "MACHINES",
    "MachineConfig",
    "UnsupportedTransportError",
    "get_machine",
    "supported_models",
    "FIRST_TOUCH",
    "MemorySystem",
    "MemTime",
    "POLICIES",
    "ROUND_ROBIN",
    "partition_home",
    "MissStats",
    "ProtocolLoad",
    "RandomAccess",
    "ReferenceCache",
    "ReferenceTLB",
    "RefStats",
    "SequentialScan",
    "StridedScan",
    "TLBConfig",
    "TLBStats",
    "TransferTimes",
    "average_remote_latency_ns",
    "remote_latency_ns",
]
