"""Memory access-pattern descriptors.

The sorting phases in this study touch memory in a small number of highly
structured ways, which is what makes phase-level simulation possible: instead
of replaying billions of addresses through a cache simulator, each phase
describes its accesses with one of the patterns below and the analytic models
in :mod:`repro.machine.cache` and :mod:`repro.machine.tlb` compute expected
miss counts.  The exact reference simulators (:mod:`repro.machine.cache_ref`)
validate the analytic formulas on small streams in the test suite.

All patterns describe accesses by *one* processor to *one* logical region.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SequentialScan:
    """Stream through ``n_elems`` contiguous elements once, in order.

    ``is_write`` selects write-allocate accounting (dirty lines are written
    back).  ``resident`` asserts that the region is already cached when the
    scan starts -- the caller sets it when a preceding phase left the region
    in cache *and* it fits.
    """

    n_elems: int
    elem_bytes: int
    is_write: bool = False
    resident: bool = False

    def __post_init__(self) -> None:
        if self.n_elems < 0 or self.elem_bytes <= 0:
            raise ValueError("scan sizes must be non-negative / positive")

    @property
    def footprint_bytes(self) -> int:
        return self.n_elems * self.elem_bytes


@dataclass(frozen=True)
class RandomAccess:
    """``n_accesses`` uniform-random accesses within a ``footprint_bytes``
    region (e.g. the permutation read in a fully random shuffle)."""

    n_accesses: int
    footprint_bytes: int
    elem_bytes: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.n_accesses < 0 or self.footprint_bytes < 0 or self.elem_bytes <= 0:
            raise ValueError("random-access sizes must be non-negative")


@dataclass(frozen=True)
class BucketedAppend:
    """Append ``n_elems`` elements into ``n_buckets`` sequential streams.

    This is the radix-sort permutation write: each key is appended at its
    bucket's write pointer, so each individual bucket fills sequentially, but
    successive appends hop between buckets pseudo-randomly.  The bucket
    streams are spread across a destination region of ``span_bytes``.

    ``locality`` in [0, 1] is the probability that consecutive appends go to
    the *same* bucket as their predecessor beyond what line-filling already
    implies -- 0 for a random digit stream (Gauss/random keys), approaching 1
    for the paper's ``local``/``remote`` distributions whose keys arrive
    already grouped by destination chunk (Section 4.2.2: "there is little
    local (scattered) permutation of data and hence TLB misses").
    """

    n_elems: int
    n_buckets: int
    elem_bytes: int
    span_bytes: int
    locality: float = 0.0

    def __post_init__(self) -> None:
        if self.n_elems < 0 or self.n_buckets <= 0 or self.elem_bytes <= 0:
            raise ValueError("bucketed-append sizes must be positive")
        if self.span_bytes < 0:
            raise ValueError("span must be non-negative")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be within [0, 1]")


@dataclass(frozen=True)
class StridedScan:
    """``n_elems`` accesses separated by a fixed ``stride_bytes``."""

    n_elems: int
    elem_bytes: int
    stride_bytes: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.n_elems < 0 or self.elem_bytes <= 0 or self.stride_bytes <= 0:
            raise ValueError("strided-scan sizes must be positive")


AccessPattern = SequentialScan | RandomAccess | BucketedAppend | StridedScan
