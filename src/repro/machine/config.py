"""Machine configuration for the simulated CC-NUMA multiprocessor.

The reference machine is the SGI Origin2000 used in the paper (Section 2):
64 MIPS R10000 processors at 195 MHz organized as 32 two-processor nodes,
two nodes per router, 16 routers connected in a hypercube.  Each processor
has a 4 MB two-way set-associative unified L2 cache with 128-byte lines;
the default page size is 16 KB.  Uncontended read latencies are 313 ns
(local), 796 ns (machine-wide average) and 1010 ns (furthest), growing by
roughly 100 ns per router hop.  Peak point-to-point link bandwidth is
1.6 GB/s total in both directions.

Because the reproduction runs data sets scaled down by a uniform factor
(DESIGN.md Section 2), :meth:`MachineConfig.origin2000` accepts a ``scale``
argument that shrinks every *capacity* (cache sizes, TLB reach, page size)
by the same factor while leaving latencies, bandwidths and the cache line
size untouched.  Capacity-induced effects -- the superlinear speedups and
the distribution-dependent TLB behavior the paper analyzes -- are functions
of the ratio of working-set size to capacity, so they occur at the same
*labeled* data-set sizes as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


#: Cost-model families a :class:`MachineConfig` can describe.  "ccdsm" is
#: the paper's directory-based CC-NUMA machine; the other kinds are the
#: machine-model zoo (see docs/MACHINES.md and :mod:`repro.machine.zoo`).
MACHINE_KINDS = ("ccdsm", "multicore", "bsp", "ap1000")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache level."""

    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} is not a whole number of "
                f"{self.associativity}-way sets of {self.line_bytes}-byte lines"
            )
        if not _is_pow2(self.line_bytes):
            raise ValueError("cache line size must be a power of two")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of the data TLB (fully associative, LRU)."""

    entries: int
    page_bytes: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.page_bytes <= 0:
            raise ValueError("TLB geometry values must be positive")
        if not _is_pow2(self.page_bytes):
            raise ValueError("page size must be a power of two")

    @property
    def reach_bytes(self) -> int:
        """Total bytes mapped when every entry is in use."""
        return self.entries * self.page_bytes


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of a simulated CC-NUMA machine.

    All times are nanoseconds, all sizes bytes, bandwidths bytes/ns (= GB/s).
    """

    n_processors: int = 64
    procs_per_node: int = 2
    nodes_per_router: int = 2

    cpu_mhz: float = 195.0
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 128, 2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * 1024 * 1024, 128, 2)
    )
    tlb: TLBConfig = field(default_factory=lambda: TLBConfig(64, 16 * 1024))

    #: Uncontended latency of a read miss satisfied by local memory.
    local_read_ns: float = 313.0
    #: Fixed extra latency of any remote access (crossing the node boundary),
    #: before per-hop costs.  Chosen so that the furthest access on the
    #: 64-processor machine (4 hypercube hops) costs 1010 ns as reported.
    remote_base_ns: float = 297.0
    #: Additional latency per router hop.
    hop_ns: float = 100.0
    #: Peak point-to-point bandwidth per link, both directions combined.
    link_bw_bytes_per_ns: float = 1.6
    #: Occupancy of a node's coherence/memory controller per protocol
    #: transaction it handles (request, intervention, invalidation, ack,
    #: writeback).  Serialization at the home controller is the paper's
    #: explanation for the CC-SAS radix collapse.
    ctrl_occupancy_ns: float = 40.0

    #: Capacity scale factor actually applied (bookkeeping only).
    scale: int = 1
    #: NUMA page-placement policy for partition-private data
    #: ("first-touch" or "round-robin"; see repro.machine.placement).
    placement: str = "first-touch"

    #: Cost-model family (see :data:`MACHINE_KINDS`).  "ccdsm" machines
    #: use the full directory/interconnect simulation; "multicore" shares
    #: one LLC with uniform memory and no directory traffic; "bsp" maps
    #: every phase onto (g, L) superstep accounting; "ap1000" forbids
    #: remote loads entirely (channels only).
    kind: str = "ccdsm"
    #: BSP gap: communication cost per byte of the largest per-processor
    #: h-relation, in ns/byte.  Only meaningful when ``kind == "bsp"``.
    bsp_g_ns_per_byte: float = 1.0
    #: BSP barrier/latency parameter L, charged once per superstep
    #: (barrier), in ns.  Only meaningful when ``kind == "bsp"``.
    bsp_l_ns: float = 10_000.0

    def __post_init__(self) -> None:
        if self.n_processors <= 0:
            raise ValueError("n_processors must be positive")
        if self.procs_per_node <= 0 or self.nodes_per_router <= 0:
            raise ValueError("machine shape values must be positive")
        if self.n_processors % self.procs_per_node != 0:
            raise ValueError(
                f"{self.n_processors} processors do not divide into nodes of "
                f"{self.procs_per_node}"
            )
        if self.n_nodes % self.nodes_per_router != 0:
            raise ValueError(
                f"{self.n_nodes} nodes do not divide into routers of "
                f"{self.nodes_per_router}"
            )
        if not _is_pow2(self.n_routers):
            raise ValueError(
                f"router count {self.n_routers} must be a power of two to "
                "form a hypercube"
            )
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        if self.local_read_ns <= 0 or self.link_bw_bytes_per_ns <= 0:
            raise ValueError("latency and bandwidth values must be positive")
        if self.placement not in ("first-touch", "round-robin"):
            raise ValueError(
                f"unknown page placement {self.placement!r}; choose "
                "'first-touch' or 'round-robin'"
            )
        if self.kind not in MACHINE_KINDS:
            raise ValueError(
                f"unknown machine kind {self.kind!r}; choose from "
                f"{MACHINE_KINDS}"
            )
        if self.kind == "bsp" and (
            self.bsp_g_ns_per_byte <= 0 or self.bsp_l_ns <= 0
        ):
            raise ValueError("a BSP machine needs positive g and L")

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.n_processors // self.procs_per_node

    @property
    def n_routers(self) -> int:
        return self.n_nodes // self.nodes_per_router

    @property
    def hypercube_dim(self) -> int:
        return self.n_routers.bit_length() - 1

    @property
    def line_bytes(self) -> int:
        return self.l2.line_bytes

    @property
    def page_bytes(self) -> int:
        return self.tlb.page_bytes

    @property
    def ns_per_cycle(self) -> float:
        return 1000.0 / self.cpu_mhz

    def node_of(self, proc: int) -> int:
        """Node index hosting processor ``proc``."""
        if not 0 <= proc < self.n_processors:
            raise ValueError(f"processor {proc} out of range")
        return proc // self.procs_per_node

    def router_of_node(self, node: int) -> int:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        return node // self.nodes_per_router

    def router_of(self, proc: int) -> int:
        return self.router_of_node(self.node_of(proc))

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def origin2000(
        cls,
        n_processors: int = 64,
        scale: int = 64,
        page_bytes: int | None = None,
    ) -> "MachineConfig":
        """A (possibly capacity-scaled) SGI Origin2000.

        ``scale`` divides every capacity: L1/L2 size, TLB entries and page
        size, so that a labeled data set of N keys exercises the scaled
        machine exactly as N*scale keys would exercise the real one.  The
        cache line size stays at 128 bytes (scaling it would change the
        spatial-locality granularity the paper's analysis relies on).

        ``page_bytes`` overrides the (scaled) page size; the paper tunes the
        page size per data-set size (64 KB for 1M-64M keys, 256 KB for 256M).
        """
        if scale <= 0 or not _is_pow2(scale):
            raise ValueError("scale must be a positive power of two")
        line = 128

        def scaled(size: int, minimum: int) -> int:
            return max(size // scale, minimum)

        default_page = scaled(64 * 1024, 4 * line)
        page = default_page if page_bytes is None else page_bytes
        procs_per_node = min(2, n_processors)
        n_nodes = n_processors // procs_per_node
        # The R10000 data TLB has 64 dual entries = 128 page mappings; the
        # reach scales with the (possibly scaled) page size.
        return cls(
            n_processors=n_processors,
            procs_per_node=procs_per_node,
            nodes_per_router=min(2, n_nodes),
            l1=CacheConfig(scaled(32 * 1024, 4 * line * 2), line, 2),
            l2=CacheConfig(scaled(4 * 1024 * 1024, 16 * line * 2), line, 2),
            tlb=TLBConfig(128, page),
            scale=scale,
        )

    @classmethod
    def multicore(cls, n_processors: int = 16) -> "MachineConfig":
        """A modern shared-LLC multicore: one node, uniform memory.

        Every processor lives on the same node, so partitioned data has a
        remote fraction of zero, no directory protocol traffic is charged,
        and all misses pay the (fast, uniform) local DRAM latency.  The
        LLC is one large shared cache; lines are the x86-typical 64 bytes.
        """
        line = 64
        return cls(
            n_processors=n_processors,
            procs_per_node=n_processors,
            nodes_per_router=1,
            cpu_mhz=3000.0,
            l1=CacheConfig(32 * 1024, line, 8),
            l2=CacheConfig(32 * 1024 * 1024, line, 16),
            tlb=TLBConfig(1536, 4 * 1024),
            local_read_ns=90.0,
            remote_base_ns=0.0,
            hop_ns=0.0,
            link_bw_bytes_per_ns=20.0,
            ctrl_occupancy_ns=2.0,
            kind="multicore",
        )

    @classmethod
    def bsp(
        cls,
        n_processors: int = 16,
        g_ns_per_byte: float = 1.0,
        l_ns: float = 10_000.0,
    ) -> "MachineConfig":
        """A BSP abstract machine parameterized by (g, L).

        Computation phases are pure BUSY (the model has no memory
        hierarchy); an exchange charges each processor ``g * h`` where
        ``h`` is the larger of its bytes sent and bytes received (the
        h-relation); every barrier ends a superstep and charges ``L``.
        The span of a run therefore obeys the superstep identity
        ``BUSY + g*h + L*supersteps (+ straggler waits) == span``.
        """
        return cls(
            n_processors=n_processors,
            procs_per_node=1,
            nodes_per_router=max(1, n_processors // 2),
            l1=CacheConfig(32 * 1024, 128, 2),
            l2=CacheConfig(4 * 1024 * 1024, 128, 2),
            tlb=TLBConfig(128, 16 * 1024),
            kind="bsp",
            bsp_g_ns_per_byte=g_ns_per_byte,
            bsp_l_ns=l_ns,
        )

    @classmethod
    def ap1000(cls, n_processors: int = 16) -> "MachineConfig":
        """A Fujitsu AP1000-style distributed-memory machine.

        One processor per node and *no* remote loads: a processor can
        only touch its own memory, so all remote traffic must move
        through message channels (the MPI transports).  Shared-address
        transports (CC-SAS, SHMEM one-sided gets) are rejected with
        :class:`~repro.machine.zoo.UnsupportedTransportError`.  The
        numbers follow the AP1000's 25 MHz SPARC cells and 25 MB/s
        T-net links.
        """
        return cls(
            n_processors=n_processors,
            procs_per_node=1,
            nodes_per_router=max(1, n_processors // 8),
            cpu_mhz=25.0,
            l1=CacheConfig(128 * 1024, 32, 1),
            l2=CacheConfig(128 * 1024, 32, 1),
            tlb=TLBConfig(64, 8 * 1024),
            local_read_ns=400.0,
            remote_base_ns=5000.0,
            hop_ns=200.0,
            link_bw_bytes_per_ns=0.025,
            ctrl_occupancy_ns=100.0,
            kind="ap1000",
        )

    @classmethod
    def tiny(cls) -> "MachineConfig":
        """A 4-processor machine small enough for exhaustive unit tests."""
        return cls(
            n_processors=4,
            procs_per_node=2,
            nodes_per_router=1,
            l1=CacheConfig(1024, 64, 2),
            l2=CacheConfig(8192, 64, 2),
            tlb=TLBConfig(8, 512),
        )

    def with_processors(self, n_processors: int) -> "MachineConfig":
        """The same machine shrunk/grown to ``n_processors`` processors."""
        return replace(self, n_processors=n_processors)

    def with_placement(self, placement: str) -> "MachineConfig":
        """The same machine under a different page-placement policy."""
        return replace(self, placement=placement)
