"""TLB models: analytic (pattern-level) and exact reference (per-access).

TLB behavior is central to the paper's distribution study (Sections 4.2.2
and 4.3.1): the ``remote`` and ``local`` key distributions perform *better*
on large data sets because their keys arrive grouped by destination chunk,
so the local permutation touches few pages at a time and avoids TLB misses,
while Gauss/random keys hop across as many pages as there are radix buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .access import (
    AccessPattern,
    BucketedAppend,
    RandomAccess,
    SequentialScan,
    StridedScan,
)
from .config import TLBConfig


@dataclass(frozen=True)
class TLBStats:
    accesses: int
    misses: float
    #: Cost multiplier per miss: refills over very large mapped spans walk
    #: deeper, colder page tables (grows logarithmically with span/reach).
    walk_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.accesses < 0 or self.misses < -1e-9:
            raise ValueError("TLB stats must be non-negative")
        if self.misses > self.accesses + 1e-9:
            raise ValueError("TLB misses cannot exceed accesses")
        if self.walk_factor < 1.0:
            raise ValueError("walk factor cannot be below 1")

    @property
    def weighted_misses(self) -> float:
        return self.misses * self.walk_factor

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __add__(self, other: "TLBStats") -> "TLBStats":
        total = self.misses + other.misses
        factor = 1.0
        if total > 0:
            factor = (self.weighted_misses + other.weighted_misses) / total
        return TLBStats(self.accesses + other.accesses, total, max(1.0, factor))


ZERO_TLB = TLBStats(0, 0.0)


#: Page-table-walk growth rate per doubling of span beyond the TLB's reach
#: (calibrated; see repro.machine.costs).
WALK_ALPHA = 0.3


class AnalyticTLB:
    """Expected-miss model for a fully associative LRU TLB."""

    def __init__(self, config: TLBConfig):
        self.config = config

    def _walk_factor(self, span_pages: float) -> float:
        import math

        if span_pages <= self.config.entries:
            return 1.0
        return 1.0 + WALK_ALPHA * math.log2(span_pages / self.config.entries)

    def misses(self, pattern: AccessPattern) -> TLBStats:
        if isinstance(pattern, SequentialScan):
            return self._sequential(pattern)
        if isinstance(pattern, RandomAccess):
            return self._random(pattern)
        if isinstance(pattern, BucketedAppend):
            return self._bucketed(pattern)
        if isinstance(pattern, StridedScan):
            return self._strided(pattern)
        raise TypeError(f"unknown access pattern {pattern!r}")

    # ------------------------------------------------------------------
    def _pages(self, footprint_bytes: float) -> float:
        return footprint_bytes / self.config.page_bytes

    def _sequential(self, p: SequentialScan) -> TLBStats:
        if p.n_elems == 0:
            return ZERO_TLB
        if p.resident and p.footprint_bytes <= self.config.reach_bytes:
            return TLBStats(p.n_elems, 0.0)
        pages = max(1.0, self._pages(p.footprint_bytes))
        return TLBStats(p.n_elems, min(float(p.n_elems), pages))

    def _random(self, p: RandomAccess) -> TLBStats:
        if p.n_accesses == 0 or p.footprint_bytes == 0:
            return ZERO_TLB
        pages = max(1.0, self._pages(p.footprint_bytes))
        if p.footprint_bytes <= self.config.reach_bytes:
            import math

            warm = pages * (1.0 - math.exp(-p.n_accesses / pages))
            return TLBStats(p.n_accesses, min(float(p.n_accesses), warm))
        p_hit = self.config.entries / pages
        return TLBStats(
            p.n_accesses, p.n_accesses * (1.0 - p_hit), self._walk_factor(pages)
        )

    def _bucketed(self, p: BucketedAppend) -> TLBStats:
        if p.n_elems == 0:
            return ZERO_TLB
        span_pages = max(1.0, self._pages(p.span_bytes))
        # One active page per bucket (buckets smaller than a page share).
        active_pages = min(float(p.n_buckets), span_pages)
        if active_pages <= self.config.entries:
            # Cold misses only: each page of the span is entered once per
            # bucket stream crossing into it.
            return TLBStats(p.n_elems, min(float(p.n_elems), span_pages))
        # More active streams than TLB entries: an append to bucket b finds
        # b's page mapped only with probability entries/active; grouped
        # (high-locality) appends amortize the miss across a run of keys.
        p_miss = (1.0 - self.config.entries / active_pages) * (1.0 - p.locality)
        misses = max(span_pages, p.n_elems * p_miss)
        return TLBStats(
            p.n_elems,
            min(float(p.n_elems), misses),
            self._walk_factor(span_pages),
        )

    def _strided(self, p: StridedScan) -> TLBStats:
        if p.n_elems == 0:
            return ZERO_TLB
        if p.stride_bytes >= self.config.page_bytes:
            return TLBStats(p.n_elems, float(p.n_elems))
        per_page = self.config.page_bytes / p.stride_bytes
        return TLBStats(p.n_elems, min(float(p.n_elems), p.n_elems / per_page))


class ReferenceTLB:
    """Exact fully associative LRU TLB over explicit address streams."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self._page_shift = config.page_bytes.bit_length() - 1
        self._entries: list[int] = []  # MRU-first page numbers
        self.accesses = 0
        self.misses = 0

    def reset(self) -> None:
        self._entries = []
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        if addr < 0:
            raise ValueError("addresses must be non-negative")
        page = addr >> self._page_shift
        self.accesses += 1
        try:
            i = self._entries.index(page)
        except ValueError:
            self.misses += 1
            if len(self._entries) >= self.config.entries:
                self._entries.pop()
            self._entries.insert(0, page)
            return False
        self._entries.insert(0, self._entries.pop(i))
        return True

    def run(self, addresses: np.ndarray | list[int]) -> tuple[int, int]:
        for a in np.asarray(addresses, dtype=np.int64):
            self.access(int(a))
        return self.accesses, self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
