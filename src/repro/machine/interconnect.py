"""Interconnect bandwidth/contention model.

Given an all-to-all traffic matrix (bytes sent from processor i to
processor j during one phase), this module computes per-processor transfer
times that respect three capacity limits of the Origin2000 fabric:

1. each node's single connection into its router (shared by the node's two
   processors, ``link_bw_bytes_per_ns`` each way);
2. every router-router hypercube link, loaded according to dimension-ordered
   routing of all flows crossing it;
3. the uncontended wire latency of each flow (hops * hop_ns).

The phase cannot finish before the most-loaded resource drains, and a
processor cannot finish before its own injected and received bytes drain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import MachineConfig
from .topology import Hypercube


@dataclass(frozen=True)
class TransferTimes:
    """Per-processor timing of one all-to-all transfer phase."""

    per_proc_ns: np.ndarray  # time each processor is occupied transferring
    bottleneck_ns: float  # most-loaded link/controller drain time
    max_link_bytes: float
    total_bytes: float

    def phase_ns(self, proc: int) -> float:
        return float(self.per_proc_ns[proc])


class Interconnect:
    """Contention-aware transfer-time model for one machine."""

    def __init__(self, machine: MachineConfig):
        self.machine = machine
        self.cube = Hypercube.for_machine(machine)
        self._proc_router = np.array(
            [machine.router_of(i) for i in range(machine.n_processors)]
        )
        self._link_index = {
            link: k for k, link in enumerate(self._all_links())
        }
        # route_links[a][b] -> list of link indices used by router a -> b
        self._routes: dict[tuple[int, int], list[int]] = {}

    def _all_links(self) -> list[tuple[int, int]]:
        links = []
        for r in range(self.cube.n_routers):
            for nb in self.cube.neighbors(r):
                if nb > r:
                    links.append((r, nb))
        return links

    def _route_links(self, a: int, b: int) -> list[int]:
        key = (a, b)
        cached = self._routes.get(key)
        if cached is None:
            cached = [self._link_index[l] for l in self.cube.links_on_route(a, b)]
            self._routes[key] = cached
        return cached

    # ------------------------------------------------------------------
    def transfer(self, bytes_matrix: np.ndarray) -> TransferTimes:
        """Timing of a phase where processor ``i`` sends
        ``bytes_matrix[i, j]`` bytes to processor ``j``.

        The diagonal (local copies) does not load the network.
        """
        m = self.machine
        p = m.n_processors
        traffic = np.asarray(bytes_matrix, dtype=np.float64)
        if traffic.shape != (p, p):
            raise ValueError(f"traffic matrix must be ({p}, {p})")
        if np.any(traffic < 0):
            raise ValueError("traffic must be non-negative")

        off_node = np.ones((p, p), dtype=bool)
        for i in range(p):
            for j in range(p):
                if m.node_of(i) == m.node_of(j):
                    off_node[i, j] = False
        net = np.where(off_node, traffic, 0.0)

        # Per-direction node link bandwidth: the peak figure is total in
        # both directions.
        dir_bw = m.link_bw_bytes_per_ns / 2.0

        # Node-link load: all of a node's processors share one connection.
        send_by_node = np.zeros(m.n_nodes)
        recv_by_node = np.zeros(m.n_nodes)
        for i in range(p):
            send_by_node[m.node_of(i)] += net[i].sum()
            recv_by_node[m.node_of(i)] += net[:, i].sum()
        node_link_ns = np.maximum(send_by_node, recv_by_node) / dir_bw

        # Router-link load under dimension-ordered routing.
        link_bytes = np.zeros(max(1, len(self._link_index)))
        for i in range(p):
            ri = self._proc_router[i]
            for j in range(p):
                b = net[i, j]
                if b == 0.0:
                    continue
                rj = self._proc_router[j]
                if ri == rj:
                    continue
                for l in self._route_links(int(ri), int(rj)):
                    link_bytes[l] += b
        # Hypercube links are bidirectional; the peak figure is shared.
        link_ns = link_bytes / m.link_bw_bytes_per_ns

        bottleneck = float(max(node_link_ns.max(initial=0.0), link_ns.max(initial=0.0)))

        per_proc = np.zeros(p)
        for i in range(p):
            own = max(net[i].sum(), net[:, i].sum()) / dir_bw
            node = node_link_ns[m.node_of(i)]
            per_proc[i] = max(own, node * self._share(net, i))
        # Nobody beats the network-wide bottleneck if they use the network.
        uses_net = (net.sum(axis=1) + net.sum(axis=0)) > 0
        per_proc[uses_net] = np.maximum(per_proc[uses_net], bottleneck)

        return TransferTimes(
            per_proc_ns=per_proc,
            bottleneck_ns=bottleneck,
            max_link_bytes=float(link_bytes.max(initial=0.0)),
            total_bytes=float(net.sum()),
        )

    @staticmethod
    def _share(net: np.ndarray, proc: int) -> float:
        """Fraction of its node's link time this processor is involved in
        (both node processors transferring -> each feels the full drain)."""
        return 1.0

    # ------------------------------------------------------------------
    def uncontended_latency_ns(self, src: int, dst: int) -> float:
        m = self.machine
        if m.node_of(src) == m.node_of(dst):
            return m.local_read_ns
        hops = self.cube.hops(m.router_of(src), m.router_of(dst))
        return m.local_read_ns + m.remote_base_ns + m.hop_ns * hops
