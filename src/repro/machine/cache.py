"""Analytic cache-miss model over access-pattern descriptors.

Given a :class:`~repro.machine.config.CacheConfig` and an
:class:`~repro.machine.access.AccessPattern`, :class:`AnalyticCache`
estimates how many accesses miss and how many dirty lines are written back.
The formulas are the standard working-set arguments; the test suite
cross-validates each of them against the exact LRU reference simulator in
:mod:`repro.machine.cache_ref` on small streams.

The model is intentionally *stateless across patterns*: residency between
phases is communicated explicitly via ``SequentialScan.resident``, because
the sorting phases either stream (no reuse) or reuse a region whose
residency the caller can decide from its footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .access import (
    AccessPattern,
    BucketedAppend,
    RandomAccess,
    SequentialScan,
    StridedScan,
)
from .config import CacheConfig


@dataclass(frozen=True)
class MissStats:
    """Outcome of pushing one access pattern through a cache level."""

    accesses: int
    misses: float
    writebacks: float = 0.0

    def __post_init__(self) -> None:
        if self.accesses < 0:
            raise ValueError("accesses must be non-negative")
        if self.misses < -1e-9 or self.misses > self.accesses + 1e-9:
            raise ValueError(
                f"misses {self.misses} out of range for {self.accesses} accesses"
            )
        if self.writebacks < -1e-9:
            raise ValueError("writebacks must be non-negative")

    @property
    def hits(self) -> float:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __add__(self, other: "MissStats") -> "MissStats":
        return MissStats(
            self.accesses + other.accesses,
            self.misses + other.misses,
            self.writebacks + other.writebacks,
        )


ZERO_MISSES = MissStats(0, 0.0, 0.0)


class AnalyticCache:
    """Expected-miss model for one set-associative cache level."""

    def __init__(self, config: CacheConfig):
        self.config = config

    # ------------------------------------------------------------------
    def misses(self, pattern: AccessPattern) -> MissStats:
        """Expected misses/writebacks for ``pattern`` on a cold cache
        (unless the pattern claims residency)."""
        if isinstance(pattern, SequentialScan):
            return self._sequential(pattern)
        if isinstance(pattern, RandomAccess):
            return self._random(pattern)
        if isinstance(pattern, BucketedAppend):
            return self._bucketed(pattern)
        if isinstance(pattern, StridedScan):
            return self._strided(pattern)
        raise TypeError(f"unknown access pattern {pattern!r}")

    # ------------------------------------------------------------------
    def _lines(self, footprint_bytes: float) -> float:
        return footprint_bytes / self.config.line_bytes

    def _sequential(self, p: SequentialScan) -> MissStats:
        if p.n_elems == 0:
            return ZERO_MISSES
        lines = math.ceil(p.footprint_bytes / self.config.line_bytes)
        if p.resident and p.footprint_bytes <= self.config.size_bytes:
            return MissStats(p.n_elems, 0.0, 0.0)
        misses = float(min(lines, p.n_elems))
        # A streaming write allocates and later evicts every line dirty;
        # if the region fits, nothing is forced out within this phase.
        writebacks = (
            misses if p.is_write and p.footprint_bytes > self.config.size_bytes else 0.0
        )
        return MissStats(p.n_elems, misses, writebacks)

    def _random(self, p: RandomAccess) -> MissStats:
        if p.n_accesses == 0 or p.footprint_bytes == 0:
            return ZERO_MISSES
        lines = max(1.0, self._lines(p.footprint_bytes))
        cache_lines = self.config.n_lines
        if p.footprint_bytes <= self.config.size_bytes:
            # Warm-up: each distinct line misses once; afterwards uniform
            # random accesses within a resident footprint hit.
            expected_distinct = lines * (1.0 - math.exp(-p.n_accesses / lines))
            misses = min(float(p.n_accesses), expected_distinct)
            wb = misses if p.is_write else 0.0
            return MissStats(p.n_accesses, misses, wb)
        # Footprint exceeds capacity: steady-state hit probability for
        # uniform random access under LRU is approximately the fraction of
        # the footprint that fits (line granularity hits within a line are
        # negligible for 1-element-per-access random patterns).
        p_hit = cache_lines / lines
        misses = p.n_accesses * (1.0 - p_hit)
        wb = misses if p.is_write else 0.0
        return MissStats(p.n_accesses, misses, wb)

    def _bucketed(self, p: BucketedAppend) -> MissStats:
        if p.n_elems == 0:
            return ZERO_MISSES
        elems_per_line = max(1, self.config.line_bytes // p.elem_bytes)
        cold = p.n_elems / elems_per_line  # one allocate per line written
        # Active working set: one partially-filled line per bucket.  When
        # those don't all fit (with their LRU competition), a bucket's line
        # is likely evicted before it fills, so later appends to it miss
        # again.  ``locality`` discounts that: grouped appends fill a line
        # before moving on regardless of bucket count.
        active_bytes = p.n_buckets * self.config.line_bytes
        p_evict = max(0.0, 1.0 - self.config.size_bytes / active_bytes) if active_bytes else 0.0
        p_evict *= 1.0 - p.locality
        extra = p.n_elems * p_evict * (1.0 - 1.0 / elems_per_line)
        misses = min(float(p.n_elems), cold + extra)
        # Every line written eventually leaves dirty if the span exceeds the
        # cache; evicted-then-refetched lines are written back each time.
        wb = misses if p.span_bytes > self.config.size_bytes else 0.0
        return MissStats(p.n_elems, misses, wb)

    def _strided(self, p: StridedScan) -> MissStats:
        if p.n_elems == 0:
            return ZERO_MISSES
        if p.stride_bytes >= self.config.line_bytes:
            misses = float(p.n_elems)  # every access opens a new line
        else:
            per_line = self.config.line_bytes / p.stride_bytes
            misses = p.n_elems / per_line
        footprint = p.n_elems * p.stride_bytes
        wb = misses if p.is_write and footprint > self.config.size_bytes else 0.0
        return MissStats(p.n_elems, min(float(p.n_elems), misses), wb)
