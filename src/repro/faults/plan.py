"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` decides, at named *sites* threaded through the
runtime, whether a fault fires.  Decisions come from a counter-indexed
hash of ``(seed, site, probe index)`` -- no ambient randomness -- so the
same plan replayed over the same execution injects the identical fault
schedule, and two plans with the same seed agree probe for probe.  Rate
knobs set the per-probe firing probability per site; per-site caps bound
how many faults a run can absorb; :meth:`FaultPlan.scripted` pins faults
to exact probe indices for regression tests.

The catalogue of sites (see ``docs/FAULTS.md``):

========================  ====================================================
site                      what fires there
========================  ====================================================
``pool.worker.crash``     a native pool worker dies (SIGKILL) at task start
``pool.worker.hang``      a worker sleeps past the supervised phase timeout
``pool.worker.slow``      a straggler: the worker sleeps, then runs the task
``shm.create``            ``SharedArray`` creation raises ENOSPC
``shm.attach``            a worker's ``SharedArray.attach`` raises EACCES
``cache.corrupt``         a grid-cache read decodes as corrupt (recompute)
``cache.enospc``          a grid-cache store hits ENOSPC (store dropped)
``cache.eacces``          a grid-cache store hits EACCES (store dropped)
``channel.delay``         a simulated message is delivered late
``channel.drop``          a simulated message is dropped, then retransmitted
``spill.enospc``          a run-file frame write raises ENOSPC mid-run
``spill.corrupt``         a run-file frame read decodes as corrupt (re-read)
``spill.short_write``     a run-file frame write lands only partially
========================  ====================================================

The plan also does the bookkeeping the chaos harness asserts on:
``injected`` counts faults that fired, ``recovered`` counts faults the
runtime absorbed (noted by the recovery machinery at each site), and
``events`` records the exact schedule for replay comparison.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Every injectable site, grouped by subsystem.
POOL_SITES = ("pool.worker.crash", "pool.worker.hang", "pool.worker.slow")
SHM_SITES = ("shm.create", "shm.attach")
CACHE_SITES = ("cache.corrupt", "cache.enospc", "cache.eacces")
CHANNEL_SITES = ("channel.delay", "channel.drop")
SPILL_SITES = ("spill.enospc", "spill.corrupt", "spill.short_write")
SITES = POOL_SITES + SHM_SITES + CACHE_SITES + CHANNEL_SITES + SPILL_SITES


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault: which site, at which per-site probe index."""

    site: str
    index: int


@dataclass(frozen=True)
class FaultStats:
    """Snapshot of a plan's injection/recovery bookkeeping."""

    injected: Mapping[str, int] = field(default_factory=dict)
    recovered: Mapping[str, int] = field(default_factory=dict)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_recovered(self) -> int:
        return sum(self.recovered.values())

    @property
    def kinds(self) -> tuple[str, ...]:
        """Distinct sites that injected at least one fault."""
        return tuple(sorted(k for k, v in self.injected.items() if v))

    @property
    def all_recovered(self) -> bool:
        """Every injected fault was absorbed by the runtime."""
        return all(
            self.recovered.get(site, 0) >= n for site, n in self.injected.items()
        )

    def since(self, before: "FaultStats") -> "FaultStats":
        """The delta accumulated after the ``before`` snapshot."""
        return FaultStats(
            injected={
                k: v - before.injected.get(k, 0)
                for k, v in self.injected.items()
                if v - before.injected.get(k, 0)
            },
            recovered={
                k: v - before.recovered.get(k, 0)
                for k, v in self.recovered.items()
                if v - before.recovered.get(k, 0)
            },
        )


def _validate_sites(names: Iterable[str]) -> None:
    unknown = sorted(set(names) - set(SITES))
    if unknown:
        raise ValueError(
            f"unknown fault site(s) {unknown}; choose from {sorted(SITES)}"
        )


class FaultPlan:
    """A deterministic fault schedule (see module docstring).

    Parameters
    ----------
    seed:
        Drives every probabilistic decision; two plans with equal seed,
        rates and caps fire identically.
    rates:
        Per-site probability in ``[0, 1]`` that a probe fires.  Sites not
        named never fire.
    hang_s / slow_s:
        Durations shipped with ``pool.worker.hang`` / ``pool.worker.slow``
        directives (``hang_s`` must exceed the supervised phase timeout
        for the hang to be observed as one).
    channel_delay_ns / drop_retransmit_ns:
        Extra virtual latency a delayed / dropped-and-retransmitted
        simulated message pays before deposit.
    max_per_site:
        Cap on fired faults per site (an int for all sites or a per-site
        mapping); probes beyond the cap never fire.  Keeps a chaos run
        recoverable by construction (e.g. fewer crashes than retries).
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Mapping[str, float] | None = None,
        *,
        hang_s: float = 60.0,
        slow_s: float = 0.05,
        channel_delay_ns: float = 500.0,
        drop_retransmit_ns: float = 2_000.0,
        max_per_site: int | Mapping[str, int] | None = None,
    ):
        rates = dict(rates or {})
        _validate_sites(rates)
        for site, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {site!r} must be in [0, 1], got {rate}")
        if isinstance(max_per_site, Mapping):
            _validate_sites(max_per_site)
        self.seed = int(seed)
        self.rates = rates
        self.hang_s = float(hang_s)
        self.slow_s = float(slow_s)
        self.channel_delay_ns = float(channel_delay_ns)
        self.drop_retransmit_ns = float(drop_retransmit_ns)
        self._max_per_site = max_per_site
        self._scripted: dict[str, frozenset[int]] = {}
        self._counters: Counter[str] = Counter()
        self.injected: Counter[str] = Counter()
        self.recovered: Counter[str] = Counter()
        self.events: list[FaultEvent] = []

    @classmethod
    def scripted(
        cls, schedule: Mapping[str, Iterable[int]], seed: int = 0, **kwargs
    ) -> "FaultPlan":
        """A plan that fires exactly at the given per-site probe indices
        (and nowhere else) -- for deterministic regression tests."""
        _validate_sites(schedule)
        plan = cls(seed, {}, **kwargs)
        plan._scripted = {
            site: frozenset(int(i) for i in idxs) for site, idxs in schedule.items()
        }
        return plan

    # ------------------------------------------------------------------
    def _cap(self, site: str) -> int | None:
        if self._max_per_site is None:
            return None
        if isinstance(self._max_per_site, Mapping):
            return self._max_per_site.get(site)
        return int(self._max_per_site)

    def _draw(self, site: str, index: int) -> float:
        """Uniform in [0, 1), a pure function of (seed, site, index)."""
        h = hashlib.sha256(f"{self.seed}:{site}:{index}".encode()).digest()
        return int.from_bytes(h[:8], "big") / 2.0**64

    def should(self, site: str) -> bool:
        """Probe ``site``: advance its counter and decide whether the
        fault fires here.  Fired faults are recorded in ``injected`` and
        ``events``."""
        if site not in SITES:
            raise ValueError(
                f"unknown fault site {site!r}; choose from {sorted(SITES)}"
            )
        index = self._counters[site]
        self._counters[site] += 1
        if site in self._scripted:
            fire = index in self._scripted[site]
        else:
            rate = self.rates.get(site, 0.0)
            fire = rate > 0.0 and self._draw(site, index) < rate
        if fire:
            cap = self._cap(site)
            if cap is not None and self.injected[site] >= cap:
                fire = False
        if fire:
            self.injected[site] += 1
            self.events.append(FaultEvent(site, index))
        return fire

    def note_recovered(self, site: str, n: int = 1) -> None:
        """Record that the runtime absorbed ``n`` faults at ``site``.
        Called by the recovery machinery (phase retry success, allocation
        retry success, cache degrade-to-recompute, late delivery)."""
        if n > 0:
            self.recovered[site] += n

    # ------------------------------------------------------------------
    def probes(self, site: str) -> int:
        """How many times ``site`` has been probed so far."""
        return self._counters[site]

    def stats(self) -> FaultStats:
        """Immutable snapshot of the injection/recovery counters."""
        return FaultStats(dict(self.injected), dict(self.recovered))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan seed={self.seed} rates={self.rates} "
            f"injected={dict(self.injected)}>"
        )


def pool_directives(
    plan: FaultPlan | None,
    n_tasks: int,
    *,
    allow_process_faults: bool,
    allow_task_faults: bool = True,
) -> tuple[list[tuple[str, float | None] | None], list[str]]:
    """Per-task fault directives for one pool phase attempt.

    All decisions are drawn in the calling (parent) process so the probe
    stream stays deterministic; workers merely execute the directive
    shipped with their task.  ``allow_process_faults`` gates the
    crash/hang/slow family (only safe under a supervised, non-inline
    pool); ``allow_task_faults`` gates in-task faults (``shm.attach``)
    that surface as ordinary task exceptions.

    Returns ``(directives, issued)`` where ``issued`` lists the site of
    every fault scheduled for this attempt (for recovery bookkeeping).
    """
    directives: list[tuple[str, float | None] | None] = [None] * n_tasks
    issued: list[str] = []
    if plan is None:
        return directives, issued
    for i in range(n_tasks):
        if allow_process_faults and plan.should("pool.worker.crash"):
            directives[i] = ("crash", None)
            issued.append("pool.worker.crash")
        elif allow_process_faults and plan.should("pool.worker.hang"):
            directives[i] = ("hang", plan.hang_s)
            issued.append("pool.worker.hang")
        elif allow_process_faults and plan.should("pool.worker.slow"):
            directives[i] = ("slow", plan.slow_s)
            issued.append("pool.worker.slow")
        elif allow_task_faults and plan.should("shm.attach"):
            directives[i] = ("attach-fail", None)
            issued.append("shm.attach")
    return directives, issued
