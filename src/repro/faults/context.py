"""The ambient fault-plan slot.

Mirrors :mod:`repro.trace.recorder` and :mod:`repro.verify.context`: the
instrumented fault sites (:mod:`repro.native.pool`,
:mod:`repro.native.shm`, :mod:`repro.core.gridcache`,
:mod:`repro.sim.resources`) look the current plan up instead of having
one threaded through every call signature.  The default is ``None`` --
every site guards with ``if plan is not None`` so fault injection costs
one attribute check when off.

Unlike the trace recorder's slot, this one is **owner-pid guarded**: the
native backend forks worker processes that inherit the parent's module
globals, but all fault decisions must be drawn in the parent (a single
deterministic probe stream; worker-side faults are shipped to workers as
explicit per-task directives).  :func:`current_fault_plan` therefore
returns ``None`` in any process other than the one that installed the
plan.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan import FaultPlan

_current: "FaultPlan | None" = None
_owner_pid: int | None = None


def current_fault_plan() -> "FaultPlan | None":
    """The ambiently installed plan, or ``None`` when injection is off
    (including in forked children of the installing process)."""
    if _current is None or os.getpid() != _owner_pid:
        return None
    return _current


@contextmanager
def use_fault_plan(plan: "FaultPlan | None") -> Iterator["FaultPlan | None"]:
    """Install ``plan`` as the ambient fault plan for the duration."""
    global _current, _owner_pid
    previous, previous_pid = _current, _owner_pid
    _current = plan
    _owner_pid = os.getpid() if plan is not None else None
    try:
        yield plan
    finally:
        _current, _owner_pid = previous, previous_pid
