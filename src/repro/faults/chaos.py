"""The chaos harness: a seeded fault matrix over the whole runtime.

``python -m repro chaos`` runs every fault scenario below under one
deterministic :class:`~repro.faults.FaultPlan` seed and asserts the
system's contract under faults:

- every sort (native radix/sample under worker crash/hang/slowdown and
  shared-memory failures; simulated radix/sample under message delay and
  drop) still produces exactly ``np.sort`` of its input;
- robust shared-memory allocation and the grid cache degrade instead of
  failing;
- every injected fault is *recovered* -- the recovery counters match the
  injection counters site for site;
- the matrix covers at least :data:`MIN_FAULT_KINDS` distinct fault
  kinds (guaranteed by construction: the scripted scenarios pin one
  fault of each core kind regardless of seed).

``--soak N`` repeats the matrix N times with derived seeds, for a
longer-running stability soak.  Scenario scheduling is deterministic per
seed; two runs with the same seed inject the identical fault schedule.
"""

from __future__ import annotations

import sys
import tempfile
import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable, TextIO

import numpy as np

from ..trace import MemoryRecorder, use_recorder, write_chrome_trace
from ..verify.context import use_sanitizer
from ..verify.sanitizer import Sanitizer
from .context import use_fault_plan
from .plan import FaultPlan, FaultStats

#: The acceptance floor: one chaos run must exercise at least this many
#: distinct fault kinds (sites that actually injected).
MIN_FAULT_KINDS = 5


class ChaosError(AssertionError):
    """A chaos scenario's contract was violated."""


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's verdict and fault bookkeeping."""

    name: str
    stats: FaultStats
    elapsed_s: float
    detail: str = ""


def _keys(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 24, size=n, dtype=np.int64)


def _assert_sorted(out: np.ndarray, keys: np.ndarray, where: str) -> None:
    expect = np.sort(keys)
    if not np.array_equal(out, expect):
        bad = int(np.argmax(out != expect))
        raise ChaosError(
            f"{where}: output differs from np.sort at position {bad} "
            f"({out[bad]!r} != {expect[bad]!r})"
        )


# ----------------------------------------------------------------------
# Native pool scenarios
# ----------------------------------------------------------------------
def _run_native(
    plan: FaultPlan,
    algorithm: str,
    keys: np.ndarray,
    *,
    n_workers: int = 4,
    phase_timeout_s: float = 10.0,
) -> str:
    from ..native.pool import WorkerPool
    from ..native.radix import parallel_radix_sort
    from ..native.sample import parallel_sample_sort

    sort = parallel_radix_sort if algorithm == "radix" else parallel_sample_sort
    with use_fault_plan(plan):
        with WorkerPool(
            n_workers, supervise=True, phase_timeout_s=phase_timeout_s
        ) as pool:
            out = sort(keys, pool=pool)
            _assert_sorted(out, keys, f"native/{algorithm}")
            detail = (
                f"{pool.phase_failures} phase failure(s) absorbed, "
                f"{pool.n_workers}/{n_workers} workers at end"
            )
    return detail


def _scenario_native_radix(seed: int, small: bool) -> ScenarioResult:
    """Seeded crash/slowdown/attach-failure storm under radix sort."""
    plan = FaultPlan(
        seed,
        {
            "pool.worker.crash": 0.10,
            "pool.worker.slow": 0.15,
            "shm.attach": 0.10,
            "shm.create": 0.15,
        },
        slow_s=0.01,
        max_per_site=2,
    )
    keys = _keys(seed + 101, 20_000 if small else 200_000)
    t0 = time.perf_counter()
    detail = _run_native(plan, "radix", keys)
    return ScenarioResult(
        "native-radix", plan.stats(), time.perf_counter() - t0, detail
    )


def _scenario_native_sample(seed: int, small: bool) -> ScenarioResult:
    """Seeded crash/slowdown/attach-failure storm under sample sort."""
    plan = FaultPlan(
        seed + 1,
        {
            "pool.worker.crash": 0.10,
            "pool.worker.slow": 0.15,
            "shm.attach": 0.10,
            "shm.create": 0.15,
        },
        slow_s=0.01,
        max_per_site=2,
    )
    keys = _keys(seed + 202, 20_000 if small else 200_000)
    t0 = time.perf_counter()
    detail = _run_native(plan, "sample", keys)
    return ScenarioResult(
        "native-sample", plan.stats(), time.perf_counter() - t0, detail
    )


def _scenario_scripted_pool(seed: int, small: bool) -> ScenarioResult:
    """Pinned worker crash + straggler + attach failure (every seed)."""
    plan = FaultPlan.scripted(
        {
            "pool.worker.crash": [0],
            "pool.worker.slow": [1],
            "shm.attach": [2],
        },
        seed,
        slow_s=0.01,
    )
    keys = _keys(seed + 303, 20_000 if small else 100_000)
    t0 = time.perf_counter()
    detail = _run_native(plan, "sample", keys)
    return ScenarioResult(
        "scripted-pool", plan.stats(), time.perf_counter() - t0, detail
    )


def _scenario_hang_timeout(seed: int, small: bool) -> ScenarioResult:
    """Pinned worker hang; the supervised phase timeout must fire."""
    plan = FaultPlan.scripted(
        {"pool.worker.hang": [0]}, seed, hang_s=30.0
    )
    keys = _keys(seed + 404, 20_000 if small else 100_000)
    t0 = time.perf_counter()
    detail = _run_native(plan, "radix", keys, phase_timeout_s=0.75)
    if plan.stats().injected.get("pool.worker.hang", 0) != 1:
        raise ChaosError("hang-timeout: the scripted hang never fired")
    return ScenarioResult(
        "hang-timeout", plan.stats(), time.perf_counter() - t0, detail
    )


def _scenario_shm_alloc(seed: int, small: bool) -> ScenarioResult:
    """Pinned back-to-back creation failures; robust allocation retries."""
    del small
    from ..native import shm

    plan = FaultPlan.scripted({"shm.create": [0, 1]}, seed)
    t0 = time.perf_counter()
    with use_fault_plan(plan):
        sa = shm.allocate(1024, retries=3, backoff_s=0.001)
        try:
            sa.array[:] = 7
            if int(sa.array.sum()) != 7 * 1024:
                raise ChaosError("shm-alloc: allocated array not writable")
        finally:
            sa.close()
    return ScenarioResult(
        "shm-alloc", plan.stats(), time.perf_counter() - t0, "2 ENOSPC retried"
    )


# ----------------------------------------------------------------------
# Cache and simulated-channel scenarios
# ----------------------------------------------------------------------
def _scenario_cache(seed: int, small: bool) -> ScenarioResult:
    """Pinned cache corruption + store errors; every read degrades to a
    recompute and every failed store is dropped, never raised."""
    del small
    from ..core.gridcache import GridCache

    # Probe index 1 per site: corrupt probes run per successful read
    # (the cold miss never reaches the probe), and an ENOSPC-failed put
    # short-circuits its EACCES probe, so all three sites line up at 1.
    plan = FaultPlan.scripted(
        {"cache.corrupt": [1], "cache.enospc": [1], "cache.eacces": [1]}, seed
    )
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        cache = GridCache(root)
        key = {"cell": "chaos", "seed": seed}
        with use_fault_plan(plan):
            if cache.get("run", key) is not None:  # probe 0: cold miss
                raise ChaosError("cache: cold read returned a payload")
            if not cache.put("run", key, {"v": 1}):  # enospc probe 0: ok
                raise ChaosError("cache: first store unexpectedly failed")
            if cache.get("run", key) != {"v": 1}:  # corrupt probe 0: ok
                raise ChaosError("cache: clean read missed")
            if cache.get("run", key) is not None:  # corrupt probe 1: fires
                raise ChaosError("cache: injected corruption did not degrade")
            # The entry itself must survive an injected-corrupt read.
            if cache.get("run", key) != {"v": 1}:
                raise ChaosError("cache: entry lost after injected corruption")
            if cache.put("run", key, {"v": 2}):  # enospc probe 1: fires
                raise ChaosError("cache: injected ENOSPC store succeeded")
            if cache.put("run", key, {"v": 3}):  # eacces probe 1: fires
                raise ChaosError("cache: injected EACCES store succeeded")
            if not cache.put("run", key, {"v": 4}):  # both past script: ok
                raise ChaosError("cache: post-fault store failed")
            if cache.get("run", key) != {"v": 4}:
                raise ChaosError("cache: final read missed")
        detail = (
            f"{cache.stats.errors} degraded ops, {cache.stats.stores} stores"
        )
    return ScenarioResult(
        "cache-degrade", plan.stats(), time.perf_counter() - t0, detail
    )


def _scenario_sim_channels(seed: int, small: bool) -> ScenarioResult:
    """Message delay/drop in the simulated MPI channels; the sort result
    and the sanitizer's invariants must both survive."""
    from ..backend import get_backend
    from ..backend.base import SortJob

    plan = FaultPlan(
        seed + 2,
        {"channel.delay": 0.05, "channel.drop": 0.02},
        max_per_site=64,
    )
    keys = _keys(seed + 505, 2_048 if small else 16_384)
    t0 = time.perf_counter()
    backend = get_backend("sim")
    san = Sanitizer()
    with use_sanitizer(san), use_fault_plan(plan):
        for algorithm in ("radix", "sample"):
            job = SortJob(keys, algorithm=algorithm, model="mpi", n_procs=8)
            res = backend.run(job)
            _assert_sorted(res.sorted_keys, keys, f"sim/{algorithm}")
    detail = (
        f"sanitizer saw {sum(san.recoverable.values())} recoverable events, "
        f"{sum(san.checks.values())} checks"
    )
    return ScenarioResult(
        "sim-channels", plan.stats(), time.perf_counter() - t0, detail
    )


def _scenario_scripted_channels(seed: int, small: bool) -> ScenarioResult:
    """Pinned delay + drop on the first two messages (every seed)."""
    from ..backend import get_backend
    from ..backend.base import SortJob

    plan = FaultPlan.scripted(
        {"channel.drop": [0], "channel.delay": [1]}, seed
    )
    keys = _keys(seed + 606, 2_048 if small else 8_192)
    t0 = time.perf_counter()
    with use_fault_plan(plan):
        res = get_backend("sim").run(
            SortJob(keys, algorithm="radix", model="mpi", n_procs=4)
        )
        _assert_sorted(res.sorted_keys, keys, "sim/radix(scripted)")
    return ScenarioResult(
        "scripted-channels", plan.stats(), time.perf_counter() - t0
    )


# ----------------------------------------------------------------------
# Job-server scenario
# ----------------------------------------------------------------------
def _scenario_serve_traffic(seed: int, small: bool) -> ScenarioResult:
    """Worker crashes mid-traffic under the sort job server.

    A scripted plan kills pool workers while concurrent jobs flow through
    ``repro.serve``; the contract is the service one: the server stays
    up, every *accepted* job completes with exactly ``np.sort`` of its
    keys (none lost or corrupted by a crash), and overload is refused
    with the structured ``busy`` backpressure error carrying a
    ``retry_after_s`` hint -- clients are never hung up on or handed a
    stack trace.  The plan is passed to the server (its engine thread
    installs it per job) rather than installed here: the ambient slots
    are process-global and this thread is not the one sorting.
    """
    from ..serve import ServeClient, ServeRejected, server_in_thread

    plan = FaultPlan.scripted(
        {"pool.worker.crash": [1, 4], "pool.worker.slow": [6]},
        seed,
        slow_s=0.01,
    )
    n = 20_000 if small else 100_000
    rng = np.random.default_rng(seed + 707)
    accepted: dict[str, np.ndarray] = {}
    busy = 0
    t0 = time.perf_counter()
    with server_in_thread(
        n_workers=2,
        queue_depth=2,
        fault_plan=plan,
        phase_timeout_s=10.0,
        default_deadline_s=120.0,
    ) as server:
        with ServeClient(port=server.port) as client:
            # Burst: back-to-back submits must overrun the 2-job queue.
            for i in range(12):
                keys = rng.integers(0, 1 << 24, size=n, dtype=np.int64)
                try:
                    job_id = client.submit(
                        keys, "radix" if i % 2 == 0 else "sample"
                    )
                except ServeRejected as rej:
                    if rej.code != "busy":
                        raise ChaosError(
                            f"serve-traffic: burst rejected with "
                            f"{rej.code!r}, expected 'busy'"
                        ) from None
                    if rej.retry_after_s is None:
                        raise ChaosError(
                            "serve-traffic: busy rejection carried no "
                            "retry_after_s hint"
                        ) from None
                    busy += 1
                    time.sleep(min(rej.retry_after_s, 0.2))
                    continue
                accepted[job_id] = keys
            if busy == 0:
                raise ChaosError(
                    "serve-traffic: 12-job burst against a depth-2 queue "
                    "produced no busy rejection"
                )
            if len(accepted) < 3:
                raise ChaosError(
                    f"serve-traffic: only {len(accepted)} job(s) accepted"
                )
            # Every accepted job must finish and sort correctly -- the
            # crashes land on the pool underneath these very jobs.
            for job_id, keys in accepted.items():
                status = client.wait(job_id, timeout_s=120.0)
                if status.get("status") != "done":
                    raise ChaosError(
                        f"serve-traffic: accepted job {job_id} ended "
                        f"{status.get('status')!r} "
                        f"({status.get('error')}: {status.get('message')})"
                    )
                _assert_sorted(
                    client.result(job_id), keys, f"serve/{job_id}"
                )
            failures_absorbed = server.engine.pool.phase_failures
    stats = plan.stats()
    if stats.injected.get("pool.worker.crash", 0) < 1:
        raise ChaosError("serve-traffic: the scripted crashes never fired")
    detail = (
        f"{len(accepted)} job(s) verified, {busy} busy rejection(s), "
        f"{failures_absorbed} phase failure(s) absorbed"
    )
    return ScenarioResult(
        "serve-traffic", stats, time.perf_counter() - t0, detail
    )


# ----------------------------------------------------------------------
# Out-of-core stream scenario
# ----------------------------------------------------------------------
def _scenario_stream_merge(seed: int, small: bool) -> ScenarioResult:
    """Worker kill mid-merge plus the full spill fault family.

    An external sort is driven over a shared supervised pool with a
    scripted plan firing (a) ``spill.enospc`` and ``spill.short_write``
    during run formation, (b) a ``pool.worker.crash`` pinned to the first
    *merge-phase* task -- the crash probe index is computed from the run
    geometry so it lands after every run-formation phase -- and (c)
    ``spill.corrupt`` during the final in-parent merge reads.  The
    contract: the merged output is exactly ``np.sort`` of the input,
    every injected fault is recovered, and the pool's fault log shows the
    absorbed failure attributed to a ``stream.merge`` phase.
    """
    from ..native.pool import WorkerPool
    from ..sorts.common import n_passes
    from ..stream import external_sort

    n = 40_000 if small else 160_000
    chunk_keys = n // 8  # 8 chunks -> 8 runs; fan_in=4 forces a merge pass
    keys = _keys(seed + 808, n)
    p = 2  # worker count and the chunk sorts' task width
    passes = n_passes(11, int(keys.max()).bit_length())
    # Each chunk sort probes pool.worker.crash once per task per phase:
    # `passes` radix passes x 2 phases (histogram, permute) x p tasks.
    crash_idx = 8 * passes * 2 * p
    plan = FaultPlan.scripted(
        {
            "pool.worker.crash": [crash_idx],
            "spill.enospc": [2],
            "spill.short_write": [4],
            "spill.corrupt": [5],
        },
        seed,
    )
    t0 = time.perf_counter()
    blocks: list[np.ndarray] = []
    with use_fault_plan(plan):
        with WorkerPool(p, supervise=True, phase_timeout_s=10.0) as pool:
            result = external_sort(
                keys,
                chunk_keys=chunk_keys,
                fan_in=4,
                frame_keys=4096,
                pool=pool,
                on_block=blocks.append,
            )
            merge_faults = [
                rec
                for rec in pool.fault_log
                if str(rec.get("phase", "")).startswith("stream.merge")
            ]
    out = (
        np.concatenate(blocks) if blocks else np.empty(0, dtype=keys.dtype)
    )
    _assert_sorted(out, keys, "stream-merge")
    stats = plan.stats()
    if stats.injected.get("pool.worker.crash", 0) < 1:
        raise ChaosError(
            "stream-merge: the scripted mid-merge crash never fired "
            f"(crash probes seen: {plan.probes('pool.worker.crash')}, "
            f"scripted index {crash_idx})"
        )
    if not merge_faults:
        raise ChaosError(
            "stream-merge: no absorbed failure was attributed to a "
            "stream.merge phase in the pool fault log"
        )
    for site in ("spill.enospc", "spill.short_write", "spill.corrupt"):
        if stats.injected.get(site, 0) < 1:
            raise ChaosError(f"stream-merge: scripted {site} never fired")
    if result.merge_passes < 1:
        raise ChaosError("stream-merge: the merge never went multi-pass")
    detail = (
        f"{result.runs} runs, {result.merge_passes} merge pass(es), "
        f"{len(merge_faults)} merge-phase failure(s) absorbed, "
        f"verified={result.verified}"
    )
    return ScenarioResult(
        "stream-merge", stats, time.perf_counter() - t0, detail
    )


SCENARIOS: tuple[Callable[[int, bool], ScenarioResult], ...] = (
    _scenario_native_radix,
    _scenario_native_sample,
    _scenario_scripted_pool,
    _scenario_hang_timeout,
    _scenario_shm_alloc,
    _scenario_cache,
    _scenario_sim_channels,
    _scenario_scripted_channels,
    _scenario_serve_traffic,
    _scenario_stream_merge,
)


def _scenario_name(fn: Callable[[int, bool], ScenarioResult]) -> str:
    return fn.__name__.removeprefix("_scenario_").replace("_", "-")


# ----------------------------------------------------------------------
def run_chaos(
    seed: int = 0,
    small: bool = False,
    soak: int = 1,
    trace_out: str | None = None,
    stream: TextIO | None = None,
    scenario: str | None = None,
) -> int:
    """Run the chaos matrix; returns a process exit code (0 = pass).

    Raises nothing for fault-contract violations -- they are reported and
    reflected in the exit code, so a soak survives to report every
    scenario.

    ``scenario`` restricts the run to one named scenario (hyphens and
    underscores are interchangeable); the :data:`MIN_FAULT_KINDS`
    coverage floor applies only to full-matrix runs, since a single
    scenario legitimately exercises fewer kinds.
    """
    out = stream if stream is not None else sys.stdout
    if soak < 1:
        raise ValueError("soak count must be >= 1")
    scenarios = SCENARIOS
    if scenario is not None:
        wanted = scenario.replace("_", "-")
        scenarios = tuple(s for s in SCENARIOS if _scenario_name(s) == wanted)
        if not scenarios:
            known = ", ".join(_scenario_name(s) for s in SCENARIOS)
            print(f"unknown scenario {scenario!r}; choose from: {known}",
                  file=out)
            return 2
    recorder = MemoryRecorder() if trace_out else None
    injected_total: Counter[str] = Counter()
    recovered_total: Counter[str] = Counter()
    failures: list[str] = []
    t_start = time.perf_counter()
    with use_recorder(recorder):
        for round_i in range(soak):
            round_seed = seed + 1_000 * round_i
            if soak > 1:
                print(f"-- soak round {round_i + 1}/{soak} "
                      f"(seed {round_seed})", file=out)
            for scenario_fn in scenarios:
                name = _scenario_name(scenario_fn)
                try:
                    r = scenario_fn(round_seed, small)
                except ChaosError as err:
                    failures.append(f"{name}: {err}")
                    print(f"  FAIL {name:<18} {err}", file=out)
                    continue
                except Exception as err:  # noqa: BLE001 - chaos must report
                    failures.append(f"{name}: {type(err).__name__}: {err}")
                    print(
                        f"  FAIL {name:<18} {type(err).__name__}: {err}",
                        file=out,
                    )
                    continue
                injected_total.update(r.stats.injected)
                recovered_total.update(r.stats.recovered)
                if not r.stats.all_recovered:
                    unrec = {
                        site: n - r.stats.recovered.get(site, 0)
                        for site, n in r.stats.injected.items()
                        if n > r.stats.recovered.get(site, 0)
                    }
                    failures.append(f"{r.name}: unrecovered faults {unrec}")
                    print(f"  FAIL {r.name:<18} unrecovered: {unrec}", file=out)
                    continue
                kinds = ",".join(r.stats.kinds) or "none fired"
                print(
                    f"  ok   {r.name:<18} {r.stats.total_injected:>3} "
                    f"fault(s) in {r.elapsed_s:6.2f}s  [{kinds}]"
                    + (f"  ({r.detail})" if r.detail else ""),
                    file=out,
                )
    elapsed = time.perf_counter() - t_start
    kinds = sorted(k for k, v in injected_total.items() if v)
    print(
        f"chaos: {sum(injected_total.values())} fault(s) across "
        f"{len(kinds)} kind(s) injected, "
        f"{sum(recovered_total.values())} recovered, "
        f"{len(failures)} failure(s) in {elapsed:.1f}s",
        file=out,
    )
    if scenario is None:
        if len(kinds) < MIN_FAULT_KINDS:
            failures.append(
                f"coverage: only {len(kinds)} fault kind(s) fired "
                f"({kinds}); need >= {MIN_FAULT_KINDS}"
            )
        if sum(recovered_total.values()) == 0:
            failures.append(
                "coverage: no fault was recovered (counters all zero)"
            )
    if recorder is not None and trace_out:
        write_chrome_trace(trace_out, recorder)
        print(f"{len(recorder.events)} trace events -> {trace_out}", file=out)
    if failures:
        for f in failures:
            print(f"chaos FAILURE: {f}", file=out)
        return 1
    print(f"chaos: all scenarios passed ({', '.join(kinds)})", file=out)
    return 0
