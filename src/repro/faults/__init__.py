"""Deterministic fault injection and the resilience machinery it proves.

The paper's sorts are bulk-synchronous: one dead or slow worker stalls
every barrier.  This package supplies the missing failure story:

- :class:`FaultPlan` -- a seeded, fully deterministic fault schedule
  (rate knobs per named site, scripted schedules for regression tests),
  installed ambiently with :func:`use_fault_plan`;
- instrumented fault *sites* across the runtime: worker crash/hang/
  slowdown in :mod:`repro.native.pool`, shared-memory create/attach
  failures in :mod:`repro.native.shm`, cache corruption and I/O errors
  in :mod:`repro.core.gridcache`, message delay/drop in
  :mod:`repro.sim.resources`;
- the recovery machinery those sites exercise: supervised pool phases
  (timeout, bounded retry, dead-worker replacement, graceful shrink),
  allocation retry, degrade-to-recompute, late retransmit;
- the **chaos harness** (:func:`run_chaos`, exposed as
  ``python -m repro chaos``) -- a seeded fault matrix asserting every
  sort still equals ``np.sort`` with nonzero recovery counters.

Every injected fault and recovery is emitted as a span on the
``PID_FAULTS`` trace track and counted in ``SortResult.faults``.
The site catalogue lives in ``docs/FAULTS.md``.
"""

from .context import current_fault_plan, use_fault_plan
from .plan import (
    CACHE_SITES,
    CHANNEL_SITES,
    POOL_SITES,
    SHM_SITES,
    SITES,
    FaultEvent,
    FaultPlan,
    FaultStats,
    pool_directives,
)

__all__ = [
    "CACHE_SITES",
    "CHANNEL_SITES",
    "POOL_SITES",
    "SHM_SITES",
    "SITES",
    "FaultEvent",
    "FaultPlan",
    "FaultStats",
    "current_fault_plan",
    "pool_directives",
    "run_chaos",
    "use_fault_plan",
]


def __getattr__(name: str):
    # The chaos harness imports the backends; load it lazily to keep the
    # fault-site modules (pool/shm/gridcache/resources) cycle-free.
    if name == "run_chaos":
        from .chaos import run_chaos

        return run_chaos
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
