"""Admission control and backpressure for the job server.

Every submit passes through :meth:`AdmissionController.check` before it
touches the queue.  A rejection is a *structured* answer -- an error code
plus, for backpressure, a ``retry_after_s`` hint derived from the queue
depth and an exponentially-weighted estimate of recent job durations --
so a well-behaved client backs off instead of hammering, and an
overloaded server degrades to bounded latency instead of an unbounded
queue (the paper measures one sort on an idle machine; a service must
decide what happens to sort number seventeen).

Codes (mirrored in docs/SERVE.md):

``busy``       the queue is at ``queue_depth``; retry after the hint
``too-large``  the job's buffers exceed the arena's largest slab
``bad-radix``  the radix digit width would overflow a meta slab
``draining``   the server is completing in-flight work and takes no more
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np


@dataclass
class AdmissionStats:
    accepted: int = 0
    rejected: dict[str, int] = field(default_factory=dict)

    def note_reject(self, code: str) -> None:
        self.rejected[code] = self.rejected.get(code, 0) + 1

    @property
    def total_rejected(self) -> int:
        return sum(self.rejected.values())


@dataclass(frozen=True)
class Rejection:
    code: str
    message: str
    retry_after_s: float | None = None

    def to_header(self) -> dict:
        header = {"ok": False, "error": self.code, "message": self.message}
        if self.retry_after_s is not None:
            header["retry_after_s"] = round(self.retry_after_s, 4)
        return header


class AdmissionController:
    """Accept/reject verdicts plus the duration estimate behind the
    ``retry_after_s`` hint.  Thread-safe: the asyncio loop checks, the
    engine thread reports durations."""

    def __init__(
        self,
        queue_depth: int,
        max_job_bytes: int,
        meta_slab_bytes: int,
        n_workers: int,
        min_retry_after_s: float = 0.05,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth
        self.max_job_bytes = max_job_bytes
        self.meta_slab_bytes = meta_slab_bytes
        self.n_workers = n_workers
        self.min_retry_after_s = min_retry_after_s
        self.stats = AdmissionStats()
        self._lock = threading.Lock()
        self._ewma_job_s: float | None = None

    # ------------------------------------------------------------------
    def note_job_duration(self, seconds: float) -> None:
        with self._lock:
            if self._ewma_job_s is None:
                self._ewma_job_s = seconds
            else:
                self._ewma_job_s = 0.8 * self._ewma_job_s + 0.2 * seconds

    def retry_after_s(self, queue_len: int) -> float:
        """How long a rejected client should wait: roughly the time for
        half the queue ahead of it to drain."""
        with self._lock:
            est = self._ewma_job_s if self._ewma_job_s is not None else 0.05
        return max(self.min_retry_after_s, est * max(1, queue_len) / 2.0)

    # ------------------------------------------------------------------
    def check(
        self,
        n_keys: int,
        dtype: np.dtype,
        radix: int | None,
        queue_len: int,
        draining: bool,
    ) -> Rejection | None:
        """``None`` = admit; otherwise the structured rejection."""
        if draining:
            verdict = Rejection("draining", "server is draining; submit elsewhere")
        elif n_keys * dtype.itemsize > self.max_job_bytes:
            verdict = Rejection(
                "too-large",
                f"{n_keys} x {dtype.str} keys need "
                f"{n_keys * dtype.itemsize} bytes; the arena's data slabs "
                f"hold {self.max_job_bytes}",
            )
        elif (
            radix is not None
            and self.n_workers * (1 << radix) * 8 > self.meta_slab_bytes
        ):
            verdict = Rejection(
                "bad-radix",
                f"radix {radix} needs a {self.n_workers}x{1 << radix} "
                f"histogram, over the {self.meta_slab_bytes}-byte meta slab",
            )
        elif queue_len >= self.queue_depth:
            verdict = Rejection(
                "busy",
                f"queue is at its {self.queue_depth}-job cap",
                retry_after_s=self.retry_after_s(queue_len),
            )
        else:
            self.stats.accepted += 1
            return None
        self.stats.note_reject(verdict.code)
        return verdict
