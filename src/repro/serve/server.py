"""The asyncio sort job server.

Architecture: one asyncio loop handles every connection; accepted jobs
go through :class:`~.admission.AdmissionController` into a queue drained
by a single consumer task, which hands each job to the
:class:`~.engine.SortEngine` on a one-lane thread executor.  Concurrency
lives in the queue (many clients submit and poll at once), parallelism
lives inside a job (the engine's worker pool) -- running jobs serially is
what lets a two-data-slab arena and per-job fault attribution be exact.

Per-job deadlines are enforced at dequeue: a job that waited past its
deadline is expired with a structured ``deadline`` error instead of
burning pool time on an answer nobody is waiting for.  ``drain`` flips
admission to reject-with-``draining``, completes in-flight work, and
resolves once the queue is empty; ``shutdown`` drains and then stops the
server.  ``close`` is exception-safe: the pool is reaped and every arena
slab unlinked even when startup or serving fails midway.

For tests and the CLI, :func:`server_in_thread` runs a server on a
background thread with its own loop and propagates startup errors to the
caller.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from ..faults.plan import FaultPlan
from ..trace import PID_SERVE, TraceRecorder
from .admission import AdmissionController
from .engine import SortEngine
from .protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_keys,
    read_frame,
    write_frame,
)
from .results import TERMINAL, ResultStore

#: Sentinel telling the consumer task to exit.
_STOP = None

ALGORITHMS = ("radix", "sample")


class ServeServer:
    """A sort-as-a-service endpoint over the resilient native pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        n_workers: int | None = None,
        queue_depth: int = 8,
        data_slab_bytes: int = 8 << 20,
        meta_slab_bytes: int = 4 << 20,
        max_results: int = 256,
        default_deadline_s: float | None = 30.0,
        fault_plan: FaultPlan | None = None,
        recorder: TraceRecorder | None = None,
        phase_timeout_s: float | None = 10.0,
        max_frame: int = MAX_FRAME,
    ):
        self.host = host
        self.port = port
        self.queue_depth = queue_depth
        self.data_slab_bytes = data_slab_bytes
        self.meta_slab_bytes = meta_slab_bytes
        self.default_deadline_s = default_deadline_s
        self.max_frame = max_frame
        self._n_workers = n_workers
        self._plan = fault_plan
        self._recorder = recorder
        self._phase_timeout_s = phase_timeout_s
        self.store = ResultStore(max_records=max_results)
        self.engine: SortEngine | None = None
        self.admission: AdmissionController | None = None
        self.draining = False
        self._pending_keys: dict[str, np.ndarray] = {}
        self._inflight: str | None = None
        self._exec = ThreadPoolExecutor(1, thread_name_prefix="serve-engine")
        self._queue: asyncio.Queue = asyncio.Queue()
        self._server: asyncio.AbstractServer | None = None
        self._consumer: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _make_engine(self) -> SortEngine:
        engine = SortEngine(
            self._n_workers,
            data_slab_bytes=self.data_slab_bytes,
            meta_slab_bytes=self.meta_slab_bytes,
            fault_plan=self._plan,
            recorder=self._recorder,
            phase_timeout_s=self._phase_timeout_s,
        )
        engine.warmup()
        return engine

    async def start(self) -> None:
        """Build the engine (pool + arena + warmup) and begin listening."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        # Engine construction and warmup run on the engine thread so every
        # pool interaction for the server's lifetime happens on one thread.
        self.engine = await self._loop.run_in_executor(self._exec, self._make_engine)
        self.admission = AdmissionController(
            queue_depth=self.queue_depth,
            max_job_bytes=self.engine.arena.max_job_bytes(),
            meta_slab_bytes=self.meta_slab_bytes,
            n_workers=self.engine.pool.n_workers,
        )
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._consumer = asyncio.create_task(self._consume())

    async def aclose(self) -> None:
        """Stop listening, finish/stop the consumer, reap pool + arena."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            if self._consumer is not None:
                await self._queue.put(_STOP)
                try:
                    # Generous: a hung phase is bounded by the supervised
                    # pool's own timeout + retries.
                    await asyncio.wait_for(self._consumer, timeout=120.0)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    self._consumer.cancel()
        finally:
            if self.engine is not None:
                await asyncio.get_running_loop().run_in_executor(
                    self._exec, self.engine.close
                )
            self._exec.shutdown(wait=True)

    def request_stop(self) -> None:
        """Thread-safe: ask the serving loop to shut down."""
        loop, ev = self._loop, self._stop_event
        if loop is None or ev is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(ev.set)

    async def serve_until_stopped(self) -> None:
        """``start`` + block until ``request_stop``/shutdown op + close."""
        await self.start()
        try:
            assert self._stop_event is not None
            await self._stop_event.wait()
        finally:
            await self.aclose()

    # ------------------------------------------------------------------
    # Consumer: queue -> engine thread
    # ------------------------------------------------------------------
    def _queue_len(self) -> int:
        return self._queue.qsize() + (1 if self._inflight is not None else 0)

    async def _consume(self) -> None:
        assert self._loop is not None and self.engine is not None
        while True:
            job_id = await self._queue.get()
            if job_id is _STOP:
                return
            rec = self.store.get(job_id)
            keys = self._pending_keys.pop(job_id, None)
            if rec is None or keys is None:  # pragma: no cover - evict race
                continue
            if rec.expired_at(time.perf_counter()):
                self.store.set_expired(job_id)
                continue
            self._inflight = job_id
            self.store.mark_running(job_id)
            try:
                outcome = await self._loop.run_in_executor(
                    self._exec,
                    self.engine.run,
                    job_id,
                    keys,
                    rec.algorithm,
                    rec.radix,
                    rec.queue_wait_s,
                )
            except Exception as err:
                self.store.set_failed(job_id, type(err).__name__, str(err))
            else:
                self.store.set_done(
                    job_id,
                    outcome.sorted_keys.tobytes(),
                    faults=outcome.faults,
                    shm_creates=outcome.shm_creates,
                    shm_attaches=outcome.shm_attaches,
                )
                if self.admission is not None:
                    self.admission.note_job_duration(outcome.wall_s)
            finally:
                self._inflight = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header, payload = await read_frame(reader, self.max_frame)
                except EOFError:
                    break
                except ProtocolError as err:
                    # The stream cannot be trusted past a framing error
                    # (unread body bytes would desynchronize it): answer
                    # with the typed error, then hang up.
                    await write_frame(
                        writer,
                        {
                            "ok": False,
                            "error": _error_code(err),
                            "message": str(err),
                        },
                    )
                    break
                try:
                    reply, out_payload = await self._dispatch(header, payload)
                except ProtocolError as err:
                    reply = {
                        "ok": False,
                        "error": _error_code(err),
                        "message": str(err),
                    }
                    out_payload = b""
                except Exception as err:  # pragma: no cover - defensive
                    reply = {
                        "ok": False,
                        "error": "internal",
                        "message": f"{type(err).__name__}: {err}",
                    }
                    out_payload = b""
                await write_frame(writer, reply, out_payload, self.max_frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(
        self, header: dict[str, Any], payload: bytes
    ) -> tuple[dict[str, Any], bytes]:
        op = header.get("op")
        if op == "ping":
            return {"ok": True, "op": "pong"}, b""
        if op == "submit":
            return self._op_submit(header, payload), b""
        if op == "status":
            return self._op_status(header), b""
        if op == "wait":
            return await self._op_wait(header), b""
        if op == "result":
            return self._op_result(header)
        if op == "stats":
            return {"ok": True, "stats": self.stats()}, b""
        if op == "drain":
            return await self._op_drain(), b""
        if op == "shutdown":
            return await self._op_shutdown(), b""
        return {"ok": False, "error": "bad-op", "message": f"unknown op {op!r}"}, b""

    # ------------------------------------------------------------------
    def _op_submit(self, header: dict[str, Any], payload: bytes) -> dict[str, Any]:
        assert self.admission is not None
        keys = decode_keys(header, payload)
        algorithm = header.get("algorithm", "radix")
        if algorithm not in ALGORITHMS:
            return {
                "ok": False,
                "error": "bad-algorithm",
                "message": f"algorithm must be one of {ALGORITHMS}",
            }
        radix = header.get("radix")
        radix = None if radix is None else int(radix)
        deadline_s = header.get("deadline_s", self.default_deadline_s)
        deadline_s = None if deadline_s is None else float(deadline_s)
        verdict = self.admission.check(
            n_keys=len(keys),
            dtype=keys.dtype,
            radix=radix,
            queue_len=self._queue_len(),
            draining=self.draining,
        )
        if verdict is not None:
            if self._recorder is not None and self._recorder.enabled:
                self._recorder.instant(
                    f"serve.reject.{verdict.code}",
                    cat="serve.reject",
                    ts_us=time.perf_counter() * 1e6,
                    pid=PID_SERVE,
                    args={"n_keys": len(keys), "queue_len": self._queue_len()},
                )
            return verdict.to_header()
        rec = self.store.new_job(
            algorithm=algorithm,
            n_keys=len(keys),
            dtype=keys.dtype.str,
            radix=radix,
            deadline_s=deadline_s,
        )
        self._pending_keys[rec.job_id] = keys
        self._queue.put_nowait(rec.job_id)
        return {"ok": True, "job_id": rec.job_id, "status": "queued"}

    def _op_status(self, header: dict[str, Any]) -> dict[str, Any]:
        rec = self.store.get(str(header.get("job_id")))
        if rec is None:
            return {"ok": False, "error": "unknown-job"}
        return {"ok": True, **rec.public()}

    async def _op_wait(self, header: dict[str, Any]) -> dict[str, Any]:
        job_id = str(header.get("job_id"))
        rec = self.store.get(job_id)
        if rec is None:
            return {"ok": False, "error": "unknown-job"}
        timeout_s = float(header.get("timeout_s", 60.0))
        ev = self.store.event_for(job_id, asyncio.get_running_loop())
        try:
            await asyncio.wait_for(ev.wait(), timeout=timeout_s)
        except asyncio.TimeoutError:
            return {**rec.public(), "ok": False, "error": "wait-timeout"}
        return self._op_status(header)

    def _op_result(self, header: dict[str, Any]) -> tuple[dict[str, Any], bytes]:
        job_id = str(header.get("job_id"))
        rec = self.store.get(job_id)
        if rec is None:
            return {"ok": False, "error": "unknown-job"}, b""
        if rec.status not in TERMINAL:
            return {**rec.public(), "ok": False, "error": "not-ready"}, b""
        if rec.status != "done":
            return {**rec.public(), "ok": False, "error": rec.error or rec.status}, b""
        payload = rec.sorted_bytes
        if payload is None:
            return {**rec.public(), "ok": False, "error": "evicted"}, b""
        self.store.mark_delivered(job_id)
        return {"ok": True, **rec.public()}, payload

    async def _op_drain(self) -> dict[str, Any]:
        self.draining = True
        while self._queue_len() > 0:
            await asyncio.sleep(0.01)
        return {"ok": True, "drained": True, "jobs_run": self.engine.jobs_run}

    async def _op_shutdown(self) -> dict[str, Any]:
        reply = await self._op_drain()
        assert self._stop_event is not None
        # Let the reply frame flush before serve_until_stopped tears down.
        asyncio.get_running_loop().call_later(0.05, self._stop_event.set)
        return {**reply, "stopping": True}

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        assert self.admission is not None
        return {
            "draining": self.draining,
            "queue_len": self._queue_len(),
            "queue_depth": self.queue_depth,
            "engine": None if self.engine is None else self.engine.stats(),
            "store": self.store.stats(),
            "admission": {
                "accepted": self.admission.stats.accepted,
                "rejected": dict(self.admission.stats.rejected),
            },
        }


def _error_code(err: ProtocolError) -> str:
    """``FrameTooLarge`` -> ``frame-too-large`` etc."""
    name = type(err).__name__
    out = [name[0].lower()]
    for ch in name[1:]:
        out.append(f"-{ch.lower()}" if ch.isupper() else ch)
    return "".join(out)


# ----------------------------------------------------------------------
# Thread-hosted server (tests, loadgen --spawn-server, chaos)
# ----------------------------------------------------------------------
@contextmanager
def server_in_thread(**kwargs: Any) -> Iterator[ServeServer]:
    """Run a :class:`ServeServer` on a background thread with its own
    event loop; yields the started server (``.port`` is bound).  Startup
    failures propagate to the caller, and the pool/arena are torn down on
    every exit path."""
    server = ServeServer(**kwargs)
    started = threading.Event()
    errors: list[BaseException] = []

    async def _amain() -> None:
        try:
            await server.start()
        except BaseException as err:
            errors.append(err)
            await server.aclose()
            return
        finally:
            started.set()
        try:
            assert server._stop_event is not None
            await server._stop_event.wait()
        finally:
            await server.aclose()

    def _runner() -> None:
        try:
            asyncio.run(_amain())
        except BaseException as err:  # pragma: no cover - defensive
            errors.append(err)
            started.set()

    thread = threading.Thread(target=_runner, name="serve-loop", daemon=True)
    thread.start()
    if not started.wait(timeout=60.0):
        raise RuntimeError("server failed to start within 60s")
    if errors:
        thread.join(timeout=10.0)
        raise errors[0]
    try:
        yield server
    finally:
        server.request_stop()
        thread.join(timeout=60.0)
        if errors:  # pragma: no cover - defensive
            raise errors[0]
