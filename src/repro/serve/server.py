"""The asyncio sort job server.

Architecture: one asyncio loop handles every connection; accepted jobs
go through :class:`~.admission.AdmissionController` into a queue drained
by a single consumer task, which hands each job to the
:class:`~.engine.SortEngine` on a one-lane thread executor.  Concurrency
lives in the queue (many clients submit and poll at once), parallelism
lives inside a job (the engine's worker pool) -- running jobs serially is
what lets a two-data-slab arena and per-job fault attribution be exact.

Per-job deadlines are enforced at dequeue: a job that waited past its
deadline is expired with a structured ``deadline`` error instead of
burning pool time on an answer nobody is waiting for.  ``drain`` flips
admission to reject-with-``draining``, completes in-flight work, and
resolves once the queue is empty; ``shutdown`` drains and then stops the
server.  ``close`` is exception-safe: the pool is reaped and every arena
slab unlinked even when startup or serving fails midway.

For tests and the CLI, :func:`server_in_thread` runs a server on a
background thread with its own loop and propagates startup errors to the
caller.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from ..faults.plan import FaultPlan
from ..trace import PID_SERVE, TraceRecorder
from .admission import AdmissionController
from .engine import SortEngine
from ..stream.runfile import SUPPORTED_DTYPES, StreamError
from .protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_keys,
    read_frame,
    write_frame,
)
from .results import TERMINAL, ResultStore
from .streamjob import StreamSession

#: Sentinel telling the consumer task to exit.
_STOP = None

ALGORITHMS = ("radix", "sample")


class ServeServer:
    """A sort-as-a-service endpoint over the resilient native pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        n_workers: int | None = None,
        queue_depth: int = 8,
        data_slab_bytes: int = 8 << 20,
        meta_slab_bytes: int = 4 << 20,
        max_results: int = 256,
        default_deadline_s: float | None = 30.0,
        fault_plan: FaultPlan | None = None,
        recorder: TraceRecorder | None = None,
        phase_timeout_s: float | None = 10.0,
        max_frame: int = MAX_FRAME,
        max_streams: int = 2,
    ):
        self.host = host
        self.port = port
        self.queue_depth = queue_depth
        self.data_slab_bytes = data_slab_bytes
        self.meta_slab_bytes = meta_slab_bytes
        self.default_deadline_s = default_deadline_s
        self.max_frame = max_frame
        self._n_workers = n_workers
        self._plan = fault_plan
        self._recorder = recorder
        self._phase_timeout_s = phase_timeout_s
        self.store = ResultStore(max_records=max_results)
        self.engine: SortEngine | None = None
        self.admission: AdmissionController | None = None
        self.draining = False
        self.max_streams = max_streams
        self._pending_keys: dict[str, np.ndarray] = {}
        self._streams: dict[str, StreamSession] = {}
        self._stream_tasks: dict[str, asyncio.Task] = {}
        self._inflight: str | None = None
        self._exec = ThreadPoolExecutor(1, thread_name_prefix="serve-engine")
        self._queue: asyncio.Queue = asyncio.Queue()
        self._server: asyncio.AbstractServer | None = None
        self._consumer: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _make_engine(self) -> SortEngine:
        engine = SortEngine(
            self._n_workers,
            data_slab_bytes=self.data_slab_bytes,
            meta_slab_bytes=self.meta_slab_bytes,
            fault_plan=self._plan,
            recorder=self._recorder,
            phase_timeout_s=self._phase_timeout_s,
        )
        engine.warmup()
        return engine

    async def start(self) -> None:
        """Build the engine (pool + arena + warmup) and begin listening."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        # Engine construction and warmup run on the engine thread so every
        # pool interaction for the server's lifetime happens on one thread.
        self.engine = await self._loop.run_in_executor(self._exec, self._make_engine)
        self.admission = AdmissionController(
            queue_depth=self.queue_depth,
            max_job_bytes=self.engine.arena.max_job_bytes(),
            meta_slab_bytes=self.meta_slab_bytes,
            n_workers=self.engine.pool.n_workers,
        )
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._consumer = asyncio.create_task(self._consume())

    async def aclose(self) -> None:
        """Stop listening, finish/stop the consumer, reap pool + arena."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            for task in list(self._stream_tasks.values()):
                try:
                    await asyncio.wait_for(task, timeout=120.0)
                except (asyncio.TimeoutError, asyncio.CancelledError, Exception):
                    task.cancel()
            for sess in list(self._streams.values()):
                sess.cleanup()
            self._streams.clear()
            if self._consumer is not None:
                await self._queue.put(_STOP)
                try:
                    # Generous: a hung phase is bounded by the supervised
                    # pool's own timeout + retries.
                    await asyncio.wait_for(self._consumer, timeout=120.0)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    self._consumer.cancel()
        finally:
            if self.engine is not None:
                await asyncio.get_running_loop().run_in_executor(
                    self._exec, self.engine.close
                )
            self._exec.shutdown(wait=True)

    def request_stop(self) -> None:
        """Thread-safe: ask the serving loop to shut down."""
        loop, ev = self._loop, self._stop_event
        if loop is None or ev is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(ev.set)

    async def serve_until_stopped(self) -> None:
        """``start`` + block until ``request_stop``/shutdown op + close."""
        await self.start()
        try:
            assert self._stop_event is not None
            await self._stop_event.wait()
        finally:
            await self.aclose()

    # ------------------------------------------------------------------
    # Consumer: queue -> engine thread
    # ------------------------------------------------------------------
    def _queue_len(self) -> int:
        return self._queue.qsize() + (1 if self._inflight is not None else 0)

    async def _consume(self) -> None:
        assert self._loop is not None and self.engine is not None
        while True:
            job_id = await self._queue.get()
            if job_id is _STOP:
                return
            rec = self.store.get(job_id)
            keys = self._pending_keys.pop(job_id, None)
            if rec is None or keys is None:  # pragma: no cover - evict race
                continue
            if rec.expired_at(time.perf_counter()):
                self.store.set_expired(job_id)
                continue
            self._inflight = job_id
            self.store.mark_running(job_id)
            try:
                outcome = await self._loop.run_in_executor(
                    self._exec,
                    self.engine.run,
                    job_id,
                    keys,
                    rec.algorithm,
                    rec.radix,
                    rec.queue_wait_s,
                )
            except Exception as err:
                self.store.set_failed(job_id, type(err).__name__, str(err))
            else:
                self.store.set_done(
                    job_id,
                    outcome.sorted_keys.tobytes(),
                    faults=outcome.faults,
                    shm_creates=outcome.shm_creates,
                    shm_attaches=outcome.shm_attaches,
                )
                if self.admission is not None:
                    self.admission.note_job_duration(outcome.wall_s)
            finally:
                self._inflight = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header, payload = await read_frame(reader, self.max_frame)
                except EOFError:
                    break
                except ProtocolError as err:
                    # The stream cannot be trusted past a framing error
                    # (unread body bytes would desynchronize it): answer
                    # with the typed error, then hang up.
                    await write_frame(writer, _error_reply(err))
                    break
                try:
                    reply, out_payload = await self._dispatch(header, payload)
                except ProtocolError as err:
                    reply = _error_reply(err)
                    out_payload = b""
                except Exception as err:  # pragma: no cover - defensive
                    reply = {
                        "ok": False,
                        "error": "internal",
                        "message": f"{type(err).__name__}: {err}",
                    }
                    out_payload = b""
                await write_frame(writer, reply, out_payload, self.max_frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(
        self, header: dict[str, Any], payload: bytes
    ) -> tuple[dict[str, Any], bytes]:
        op = header.get("op")
        if op == "ping":
            return {"ok": True, "op": "pong"}, b""
        if op == "submit":
            return self._op_submit(header, payload), b""
        if op == "status":
            return self._op_status(header), b""
        if op == "wait":
            return await self._op_wait(header), b""
        if op == "result":
            return self._op_result(header)
        if op == "stats":
            return {"ok": True, "stats": self.stats()}, b""
        if op == "stream-open":
            return self._op_stream_open(header), b""
        if op == "stream-push":
            return await self._op_stream_push(header, payload), b""
        if op == "stream-close":
            return await self._op_stream_close(header), b""
        if op == "stream-status":
            return self._op_stream_status(header), b""
        if op == "stream-fetch":
            return self._op_stream_fetch(header)
        if op == "stream-abort":
            return self._op_stream_abort(header), b""
        if op == "drain":
            return await self._op_drain(), b""
        if op == "shutdown":
            return await self._op_shutdown(), b""
        return {"ok": False, "error": "bad-op", "message": f"unknown op {op!r}"}, b""

    # ------------------------------------------------------------------
    def _op_submit(self, header: dict[str, Any], payload: bytes) -> dict[str, Any]:
        assert self.admission is not None
        keys = decode_keys(header, payload)
        algorithm = header.get("algorithm", "radix")
        if algorithm not in ALGORITHMS:
            return {
                "ok": False,
                "error": "bad-algorithm",
                "message": f"algorithm must be one of {ALGORITHMS}",
            }
        radix = header.get("radix")
        radix = None if radix is None else int(radix)
        deadline_s = header.get("deadline_s", self.default_deadline_s)
        deadline_s = None if deadline_s is None else float(deadline_s)
        verdict = self.admission.check(
            n_keys=len(keys),
            dtype=keys.dtype,
            radix=radix,
            queue_len=self._queue_len(),
            draining=self.draining,
        )
        if verdict is not None:
            if self._recorder is not None and self._recorder.enabled:
                self._recorder.instant(
                    f"serve.reject.{verdict.code}",
                    cat="serve.reject",
                    ts_us=time.perf_counter() * 1e6,
                    pid=PID_SERVE,
                    args={"n_keys": len(keys), "queue_len": self._queue_len()},
                )
            return verdict.to_header()
        rec = self.store.new_job(
            algorithm=algorithm,
            n_keys=len(keys),
            dtype=keys.dtype.str,
            radix=radix,
            deadline_s=deadline_s,
        )
        self._pending_keys[rec.job_id] = keys
        self._queue.put_nowait(rec.job_id)
        return {"ok": True, "job_id": rec.job_id, "status": "queued"}

    def _op_status(self, header: dict[str, Any]) -> dict[str, Any]:
        rec = self.store.get(str(header.get("job_id")))
        if rec is None:
            return {"ok": False, "error": "unknown-job"}
        return {"ok": True, **rec.public()}

    async def _op_wait(self, header: dict[str, Any]) -> dict[str, Any]:
        job_id = str(header.get("job_id"))
        rec = self.store.get(job_id)
        if rec is None:
            return {"ok": False, "error": "unknown-job"}
        timeout_s = float(header.get("timeout_s", 60.0))
        ev = self.store.event_for(job_id, asyncio.get_running_loop())
        try:
            await asyncio.wait_for(ev.wait(), timeout=timeout_s)
        except asyncio.TimeoutError:
            return {**rec.public(), "ok": False, "error": "wait-timeout"}
        return self._op_status(header)

    def _op_result(self, header: dict[str, Any]) -> tuple[dict[str, Any], bytes]:
        job_id = str(header.get("job_id"))
        rec = self.store.get(job_id)
        if rec is None:
            return {"ok": False, "error": "unknown-job"}, b""
        if rec.status not in TERMINAL:
            return {**rec.public(), "ok": False, "error": "not-ready"}, b""
        if rec.status != "done":
            return {**rec.public(), "ok": False, "error": rec.error or rec.status}, b""
        payload = rec.sorted_bytes
        if payload is None:
            return {**rec.public(), "ok": False, "error": "evicted"}, b""
        self.store.mark_delivered(job_id)
        return {"ok": True, **rec.public()}, payload

    # ------------------------------------------------------------------
    # Streaming jobs (external sorts spanning many frames + pool phases)
    # ------------------------------------------------------------------
    def _get_stream(self, header: dict[str, Any]) -> StreamSession | None:
        return self._streams.get(str(header.get("stream_id")))

    def _op_stream_open(self, header: dict[str, Any]) -> dict[str, Any]:
        assert self.engine is not None
        if self.draining:
            return {
                "ok": False,
                "error": "draining",
                "message": "server is draining; no new streams",
            }
        if len(self._streams) >= self.max_streams:
            return {
                "ok": False,
                "error": "busy",
                "message": f"{len(self._streams)} stream(s) already open "
                f"(max {self.max_streams})",
                "retry_after_s": 1.0,
            }
        try:
            dtype = np.dtype(header.get("dtype", "<i8"))
        except TypeError:
            dtype = None
        if dtype is None or dtype.str not in SUPPORTED_DTYPES:
            return {
                "ok": False,
                "error": "bad-dtype",
                "message": f"stream dtype must be one of {SUPPORTED_DTYPES}",
            }
        # The chunk is the only full-width allocation a stream makes on
        # the engine: cap it so a chunk (widened to 8-byte keys for the
        # radix kernels) always fits one arena data slab.
        cap_keys = max(4, self.engine.arena.max_job_bytes() // 8)
        chunk_keys = int(header.get("chunk_keys") or cap_keys)
        chunk_keys = max(4, min(chunk_keys, cap_keys))
        fan_in = max(2, int(header.get("fan_in") or 16))
        sess = StreamSession(self.engine, dtype, chunk_keys, fan_in)
        self._streams[sess.stream_id] = sess
        return {"ok": True, **sess.public()}

    def _fail_stream(self, sess: StreamSession, err: Exception) -> dict[str, Any]:
        sess.phase = "failed"
        sess.error = type(err).__name__
        sess.message = str(err)
        sess.cleanup()
        return {
            "ok": False,
            "error": "stream-failed",
            "message": f"{type(err).__name__}: {err}",
            "stream_id": sess.stream_id,
        }

    async def _op_stream_push(
        self, header: dict[str, Any], payload: bytes
    ) -> dict[str, Any]:
        assert self._loop is not None
        sess = self._get_stream(header)
        if sess is None:
            return {"ok": False, "error": "unknown-stream"}
        if sess.phase != "ingest":
            return {
                "ok": False,
                "error": "bad-phase",
                "message": f"stream is {sess.phase}, not accepting keys",
            }
        keys = decode_keys(header, payload)
        try:
            ready = sess.buffer_keys(keys)
            # Full chunks sort now, on the engine lane; the reply lands
            # only after the spill completes, which is the stream's
            # natural backpressure.
            for chunk in ready:
                await self._loop.run_in_executor(
                    self._exec, sess.form_run_on_engine, chunk
                )
        except Exception as err:
            return self._fail_stream(sess, err)
        return {"ok": True, **sess.public()}

    async def _op_stream_close(self, header: dict[str, Any]) -> dict[str, Any]:
        assert self._loop is not None
        sess = self._get_stream(header)
        if sess is None:
            return {"ok": False, "error": "unknown-stream"}
        if sess.phase != "ingest":
            return {
                "ok": False,
                "error": "bad-phase",
                "message": f"stream is {sess.phase}, already closed",
            }
        try:
            for chunk in sess.drain_buffer():
                await self._loop.run_in_executor(
                    self._exec, sess.form_run_on_engine, chunk
                )
        except Exception as err:
            return self._fail_stream(sess, err)
        sess.phase = "merging"
        task = asyncio.create_task(self._finalize_stream(sess))
        self._stream_tasks[sess.stream_id] = task
        return {"ok": True, **sess.public()}

    async def _finalize_stream(self, sess: StreamSession) -> None:
        assert self._loop is not None
        try:
            await self._loop.run_in_executor(
                self._exec, sess.finalize_on_engine
            )
        except Exception as err:
            sess.phase = "failed"
            sess.error = type(err).__name__
            sess.message = str(err)
            sess.cleanup()
        else:
            sess.phase = "done"
            if sess.stream_id not in self._streams:
                # Aborted while merging: nobody will fetch; drop spills.
                sess.cleanup()
        finally:
            self._stream_tasks.pop(sess.stream_id, None)

    def _op_stream_status(self, header: dict[str, Any]) -> dict[str, Any]:
        sess = self._get_stream(header)
        if sess is None:
            return {"ok": False, "error": "unknown-stream"}
        return {"ok": True, **sess.public()}

    def _op_stream_fetch(
        self, header: dict[str, Any]
    ) -> tuple[dict[str, Any], bytes]:
        sess = self._get_stream(header)
        if sess is None:
            return {"ok": False, "error": "unknown-stream"}, b""
        if sess.phase == "failed":
            return {
                "ok": False,
                "error": "stream-failed",
                "message": f"{sess.error}: {sess.message}",
            }, b""
        if sess.phase != "done":
            return {
                **sess.public(),
                "ok": False,
                "error": "not-ready",
            }, b""
        # Frame budget: the reply header is tiny, but leave slack so the
        # fetch frame itself can never trip the cap we enforce on it.
        cap_keys = max(1, (self.max_frame - 65536) // sess.dtype.itemsize)
        req = header.get("max_keys")
        max_keys = min(cap_keys, int(req)) if req else cap_keys
        try:
            block, seq = sess.fetch_block(max_keys)
        except StreamError as err:
            return self._fail_stream(sess, err), b""
        base = {"ok": True, "stream_id": sess.stream_id, "seq": seq,
                "dtype": sess.dtype.str}
        if block is None:
            self._streams.pop(sess.stream_id, None)
            return {**base, "eof": True, "n_keys": 0}, b""
        return (
            {**base, "eof": False, "n_keys": int(len(block))},
            np.ascontiguousarray(block).tobytes(),
        )

    def _op_stream_abort(self, header: dict[str, Any]) -> dict[str, Any]:
        sess = self._get_stream(header)
        if sess is None:
            return {"ok": False, "error": "unknown-stream"}
        self._streams.pop(sess.stream_id, None)
        if sess.stream_id not in self._stream_tasks:
            # Not merging: safe to drop spills now (a merging session is
            # cleaned by _finalize_stream when its engine work returns).
            sess.cleanup()
        return {"ok": True, "stream_id": sess.stream_id, "aborted": True}

    async def _op_drain(self) -> dict[str, Any]:
        self.draining = True
        while self._queue_len() > 0:
            await asyncio.sleep(0.01)
        return {"ok": True, "drained": True, "jobs_run": self.engine.jobs_run}

    async def _op_shutdown(self) -> dict[str, Any]:
        reply = await self._op_drain()
        assert self._stop_event is not None
        # Let the reply frame flush before serve_until_stopped tears down.
        asyncio.get_running_loop().call_later(0.05, self._stop_event.set)
        return {**reply, "stopping": True}

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        assert self.admission is not None
        return {
            "draining": self.draining,
            "queue_len": self._queue_len(),
            "queue_depth": self.queue_depth,
            "max_frame": self.max_frame,
            "streams": {
                "open": len(self._streams),
                "max": self.max_streams,
                "merging": len(self._stream_tasks),
            },
            "engine": None if self.engine is None else self.engine.stats(),
            "store": self.store.stats(),
            "admission": {
                "accepted": self.admission.stats.accepted,
                "rejected": dict(self.admission.stats.rejected),
            },
        }


def _error_code(err: ProtocolError) -> str:
    """``FrameTooLarge`` -> ``frame-too-large`` etc."""
    name = type(err).__name__
    out = [name[0].lower()]
    for ch in name[1:]:
        out.append(f"-{ch.lower()}" if ch.isupper() else ch)
    return "".join(out)


def _error_reply(err: ProtocolError) -> dict[str, Any]:
    """Structured error header; a ``FrameTooLarge`` carries the
    configured cap so clients can tell the limit from corruption."""
    reply = {"ok": False, "error": _error_code(err), "message": str(err)}
    cap = getattr(err, "cap", None)
    if cap is not None:
        reply["cap"] = int(cap)
    return reply


# ----------------------------------------------------------------------
# Thread-hosted server (tests, loadgen --spawn-server, chaos)
# ----------------------------------------------------------------------
@contextmanager
def server_in_thread(**kwargs: Any) -> Iterator[ServeServer]:
    """Run a :class:`ServeServer` on a background thread with its own
    event loop; yields the started server (``.port`` is bound).  Startup
    failures propagate to the caller, and the pool/arena are torn down on
    every exit path."""
    server = ServeServer(**kwargs)
    started = threading.Event()
    errors: list[BaseException] = []

    async def _amain() -> None:
        try:
            await server.start()
        except BaseException as err:
            errors.append(err)
            await server.aclose()
            return
        finally:
            started.set()
        try:
            assert server._stop_event is not None
            await server._stop_event.wait()
        finally:
            await server.aclose()

    def _runner() -> None:
        try:
            asyncio.run(_amain())
        except BaseException as err:  # pragma: no cover - defensive
            errors.append(err)
            started.set()

    thread = threading.Thread(target=_runner, name="serve-loop", daemon=True)
    thread.start()
    if not started.wait(timeout=60.0):
        raise RuntimeError("server failed to start within 60s")
    if errors:
        thread.join(timeout=10.0)
        raise errors[0]
    try:
        yield server
    finally:
        server.request_stop()
        thread.join(timeout=60.0)
        if errors:  # pragma: no cover - defensive
            raise errors[0]
