"""Load/latency harness for the job server.

Spins up N client threads, each with its own connection and its own
seeded RNG, submitting sort jobs of random sizes and algorithms for a
fixed duration.  Every completed result is verified against ``np.sort``
of the submitted keys -- the harness is a correctness check that happens
to measure latency, not the other way round.  Backpressure rejections
are first-class: a ``busy`` reply makes the client sleep the server's
``retry_after_s`` hint and resubmit, and the rejection is counted, not
treated as an error.

Output mirrors the benchmark files the repo already diffs: a
``BENCH_2.json``-style document (via :func:`repro.report.emit.
write_results_json`) holding jobs/sec, p50/p99 latency (submit-to-result
wall time seen by the client), the rejection tally, and the server's
steady-state shared-memory counters -- the pair of numbers that must be
zero for the arena to be doing its job.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .client import ServeClient, ServeError, ServeRejected

#: Job sizes drawn by the generator (kept under the default 8 MiB data
#: slab: 1M int64 keys = 8 MB exactly, so the ceiling is 768k).
SIZE_CHOICES = (1_000, 10_000, 50_000, 200_000, 768_000)


@dataclass
class ClientTally:
    """One worker thread's counters and latency samples."""

    completed: int = 0
    incorrect: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)
    latencies_s: list[float] = field(default_factory=list)

    def merge(self, other: "ClientTally") -> None:
        self.completed += other.completed
        self.incorrect += other.incorrect
        for code, n in other.rejected.items():
            self.rejected[code] = self.rejected.get(code, 0) + n
        self.errors.extend(other.errors)
        self.latencies_s.extend(other.latencies_s)


@dataclass
class LoadgenResult:
    """Duck-types ExperimentResult for the JSON emitter."""

    exp_id: str
    description: str
    data: dict[str, Any]
    paper_reference: str | None = None


def _client_loop(
    host: str,
    port: int,
    seed: int,
    duration_s: float,
    tally: ClientTally,
    stop: threading.Event,
) -> None:
    rng = np.random.default_rng(seed)
    deadline = time.perf_counter() + duration_s
    try:
        with ServeClient(host, port) as client:
            while time.perf_counter() < deadline and not stop.is_set():
                n = int(rng.choice(SIZE_CHOICES))
                algorithm = "radix" if rng.random() < 0.5 else "sample"
                keys = rng.integers(0, 1 << 48, size=n, dtype=np.int64)
                t0 = time.perf_counter()
                try:
                    out = client.sort(keys, algorithm)
                except ServeRejected as rej:
                    tally.rejected[rej.code] = tally.rejected.get(rej.code, 0) + 1
                    time.sleep(min(rej.retry_after_s or 0.05, 1.0))
                    continue
                except ServeError as err:
                    tally.errors.append(f"{algorithm}/{n}: {err}")
                    continue
                tally.latencies_s.append(time.perf_counter() - t0)
                tally.completed += 1
                if not np.array_equal(out, np.sort(keys)):
                    tally.incorrect += 1
                    tally.errors.append(
                        f"{algorithm}/{n}: result differs from np.sort"
                    )
    except Exception as err:  # connection-level failure kills the thread
        tally.errors.append(f"client died: {type(err).__name__}: {err}")


def run_loadgen(
    host: str,
    port: int,
    *,
    clients: int = 4,
    duration_s: float = 10.0,
    seed: int = 0,
) -> dict[str, Any]:
    """Drive the server; returns the metrics dict (see module docstring)."""
    if clients < 1:
        raise ValueError("need at least one client")
    tallies = [ClientTally() for _ in range(clients)]
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(host, port, seed * 10_000 + i, duration_s, tallies[i], stop),
            name=f"loadgen-{i}",
        )
        for i in range(clients)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=duration_s + 120.0)
    stop.set()
    wall_s = time.perf_counter() - t_start

    total = ClientTally()
    for t in tallies:
        total.merge(t)
    lat = np.asarray(total.latencies_s, dtype=np.float64)
    percentile = (
        (lambda q: float(np.percentile(lat, q))) if lat.size else (lambda q: None)
    )
    server_stats: dict[str, Any] | None = None
    try:
        with ServeClient(host, port) as client:
            server_stats = client.stats()
    except OSError:
        pass
    steady = (server_stats or {}).get("engine") or {}
    return {
        "config": {
            "clients": clients,
            "duration_s": duration_s,
            "seed": seed,
            "size_choices": list(SIZE_CHOICES),
        },
        "jobs": {
            "completed": total.completed,
            "incorrect": total.incorrect,
            "rejected": dict(sorted(total.rejected.items())),
            "errors": len(total.errors),
            "error_samples": total.errors[:10],
        },
        "throughput": {
            "wall_s": wall_s,
            "jobs_per_s": total.completed / wall_s if wall_s > 0 else 0.0,
        },
        "latency": {
            "p50_s": percentile(50),
            "p99_s": percentile(99),
            "mean_s": float(lat.mean()) if lat.size else None,
            "max_s": float(lat.max()) if lat.size else None,
            "samples": int(lat.size),
        },
        "steady_state": {
            "shm_creates": steady.get("steady_shm_creates"),
            "shm_attaches": steady.get("steady_shm_attaches"),
            "warmup_rounds": steady.get("warmup_rounds"),
            "phase_failures": steady.get("phase_failures"),
        },
        "server": server_stats,
    }


def loadgen_results(metrics: dict[str, Any]) -> list[LoadgenResult]:
    """Wrap the metrics for :func:`~repro.report.emit.write_results_json`
    (the BENCH_2.json document body)."""
    return [
        LoadgenResult(
            exp_id="serve_loadgen",
            description=(
                "Concurrent sort jobs against repro.serve: throughput, "
                "client-observed latency, and steady-state shared-memory "
                "counters (must be zero: the arena removes per-job "
                "create/attach traffic)"
            ),
            data=metrics,
            paper_reference=(
                "Service-style extension; the paper benchmarks single sorts "
                "on a dedicated machine (Figs. 5-7)"
            ),
        )
    ]


def loadgen_ok(metrics: dict[str, Any]) -> bool:
    """The pass/fail gate the CLI and CI use."""
    jobs = metrics["jobs"]
    steady = metrics["steady_state"]
    return (
        jobs["completed"] > 0
        and jobs["incorrect"] == 0
        and jobs["errors"] == 0
        and steady["shm_creates"] == 0
        and steady["shm_attaches"] == 0
    )
