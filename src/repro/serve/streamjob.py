"""The streaming job class: external sorts that span many pool phases.

A regular serve job is one frame in, one frame out, bounded by the frame
cap and the arena.  A *stream* is a long-lived server-side session that
lifts both limits: the client pushes key frames (each under the cap),
the server forms sorted spill runs on the shared engine as chunks fill,
``stream-close`` kicks off the k-way merge as a background task on the
engine lane, the client polls ``stream-status`` for progress, and
``stream-fetch`` drains the merged output in sequential capped frames.

The heavy work (chunk sorts, merge passes) runs on the server's
single-lane engine executor, interleaved with regular jobs -- a stream
is many short engine occupancies, never one long lock-out.  Spill state
lives in a per-session ``repro_stream_*`` tempdir of ``repro_run_*``
files (the same checksummed run format as :mod:`repro.stream`), removed
when the fetch cursor hits EOF, on abort, and on server close.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import uuid
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any

import numpy as np

from ..faults.context import use_fault_plan
from ..stream.external import _sort_chunk
from ..stream.merge import merge_iter_over, reduce_runs
from ..stream.runfile import (
    RunReader,
    StreamError,
    run_total_keys,
    write_run,
)
from ..trace import PID_STREAM, current_recorder, use_recorder

if TYPE_CHECKING:  # pragma: no cover
    from .engine import SortEngine

#: Keys per spilled run frame inside serve streams (256 Ki keys = 2 MiB
#: of int64 per read-ahead buffer).
STREAM_FRAME_KEYS = 256 * 1024

#: Session phases, in lifecycle order.
PHASES = ("ingest", "merging", "done", "failed")


class StreamSession:
    """One server-side external sort in flight.

    Methods suffixed ``_on_engine`` are the heavy bodies: the server
    always invokes them through its single-lane executor so every pool
    interaction stays on the engine thread (same rule as regular jobs).
    """

    def __init__(
        self,
        engine: "SortEngine",
        dtype: np.dtype,
        chunk_keys: int,
        fan_in: int,
        workdir_root: str | None = None,
    ):
        self.stream_id = uuid.uuid4().hex[:12]
        self.engine = engine
        self.dtype = dtype
        self.chunk_keys = int(chunk_keys)
        self.fan_in = int(fan_in)
        self.phase = "ingest"
        self.error: str | None = None
        self.message = ""
        self.created_at = time.perf_counter()
        self.keys_ingested = 0
        self.keys_merged = 0
        self.runs = 0
        self.merge_passes = 0
        self.bytes_spilled = 0
        self.workdir = tempfile.mkdtemp(
            prefix="repro_stream_", dir=workdir_root
        )
        self._run_paths: list[str] = []
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        self._out_path = os.path.join(self.workdir, "repro_run_out.run")
        self._fetch_reader: RunReader | None = None
        self._fetch_seq = 0
        self._fetch_leftover: np.ndarray | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Ingest (buffering happens on the loop thread; sorts on the engine)
    # ------------------------------------------------------------------
    def buffer_keys(self, keys: np.ndarray) -> list[np.ndarray]:
        """Append pushed keys; returns the full chunks now ready to
        sort (each exactly ``chunk_keys`` long)."""
        if self.phase != "ingest":
            raise StreamError(f"stream is {self.phase}, not accepting keys")
        keys = np.ascontiguousarray(keys, dtype=self.dtype)
        self.keys_ingested += len(keys)
        if len(keys):
            self._buffer.append(keys)
            self._buffered += len(keys)
        ready: list[np.ndarray] = []
        while self._buffered >= self.chunk_keys:
            pool = (
                np.concatenate(self._buffer)
                if len(self._buffer) > 1
                else self._buffer[0]
            )
            ready.append(pool[: self.chunk_keys])
            rest = pool[self.chunk_keys :]
            self._buffer = [rest] if len(rest) else []
            self._buffered = len(rest)
        return ready

    def drain_buffer(self) -> list[np.ndarray]:
        """The final (partial) chunk at close time, if any."""
        if not self._buffered:
            return []
        pool = (
            np.concatenate(self._buffer)
            if len(self._buffer) > 1
            else self._buffer[0]
        )
        self._buffer, self._buffered = [], 0
        return [pool]

    def _engine_ctx(self):
        plan = self.engine._plan
        return (
            use_recorder(self.engine._recorder),
            use_fault_plan(plan) if plan is not None else nullcontext(),
        )

    def form_run_on_engine(self, chunk: np.ndarray) -> None:
        """Sort one chunk on the shared pool and spill it as a run."""
        rec_ctx, plan_ctx = self._engine_ctx()
        t0 = time.perf_counter()
        with rec_ctx, plan_ctx:
            bufs = self.engine.arena.buffers()
            sorted_chunk = _sort_chunk(chunk, self.engine.pool, 11, None)
            bufs.release_all()
            path = os.path.join(
                self.workdir, f"repro_run_{self.runs:04d}.run"
            )
            spilled = write_run(path, sorted_chunk, frame_keys=STREAM_FRAME_KEYS)
            self._run_paths.append(path)
            self.runs += 1
            self.bytes_spilled += spilled
            rec = current_recorder()
            if rec.enabled:
                rec.complete(
                    "stream.run",
                    cat="stream.run",
                    ts_us=t0 * 1e6,
                    dur_us=(time.perf_counter() - t0) * 1e6,
                    pid=PID_STREAM,
                    args={
                        "stream_id": self.stream_id,
                        "keys": int(len(sorted_chunk)),
                        "bytes_spilled": spilled,
                    },
                )

    # ------------------------------------------------------------------
    # Merge (background task body, on the engine thread)
    # ------------------------------------------------------------------
    def finalize_on_engine(self) -> None:
        """Merge every run into the output run; verify conservation."""
        rec_ctx, plan_ctx = self._engine_ctx()
        with rec_ctx, plan_ctx:
            in_runs = sum(run_total_keys(p) for p in self._run_paths)
            paths, passes, _read, _written = reduce_runs(
                self._run_paths,
                fan_in=self.fan_in,
                workdir=self.workdir,
                frame_keys=STREAM_FRAME_KEYS,
                dtype=self.dtype,
                pool=self.engine.pool,
            )
            self.merge_passes = passes
            merged = 0
            if paths:
                readers = [RunReader(p) for p in paths]
                try:
                    from ..stream.runfile import RunWriter

                    writer = RunWriter(
                        self._out_path, self.dtype, STREAM_FRAME_KEYS
                    )
                    try:
                        prev_last = None
                        for block in merge_iter_over(readers):
                            if len(block) and (
                                np.any(block[1:] < block[:-1])
                                or (
                                    prev_last is not None
                                    and block[0] < prev_last
                                )
                            ):
                                raise StreamError(
                                    "merge emitted an out-of-order block"
                                )
                            if len(block):
                                prev_last = block[-1]
                            merged += len(block)
                            writer.write(block)
                        writer.close()
                    except BaseException:
                        writer.abort()
                        raise
                finally:
                    for r in readers:
                        r.close()
            else:
                from ..stream.runfile import RunWriter

                with RunWriter(
                    self._out_path, self.dtype, STREAM_FRAME_KEYS
                ):
                    pass
            self.keys_merged = merged
            if not self.keys_ingested == in_runs == merged:
                raise StreamError(
                    f"stream key conservation violated: "
                    f"{self.keys_ingested} ingested, {in_runs} in runs, "
                    f"{merged} merged"
                )

    # ------------------------------------------------------------------
    # Fetch (loop thread: sequential frame-sized reads of the output)
    # ------------------------------------------------------------------
    def fetch_block(self, max_keys: int) -> tuple[np.ndarray | None, int]:
        """The next output block of at most ``max_keys`` keys, with its
        sequence number; ``(None, seq)`` at EOF (session cleaned up)."""
        if self.phase != "done":
            raise StreamError(f"stream is {self.phase}, output not ready")
        if self._fetch_reader is None:
            if self._closed:
                return None, self._fetch_seq
            self._fetch_reader = RunReader(self._out_path)
        parts: list[np.ndarray] = []
        got = 0
        if self._fetch_leftover is not None and len(self._fetch_leftover):
            take = min(max_keys, len(self._fetch_leftover))
            parts.append(self._fetch_leftover[:take])
            self._fetch_leftover = (
                self._fetch_leftover[take:]
                if take < len(self._fetch_leftover)
                else None
            )
            got += take
        while got < max_keys:
            frame = self._fetch_reader.next_frame()
            if frame is None:
                break
            take = min(max_keys - got, len(frame))
            parts.append(frame[:take])
            if take < len(frame):
                self._fetch_leftover = frame[take:]
            got += take
        seq = self._fetch_seq
        if not parts:
            self.cleanup()
            return None, seq
        self._fetch_seq += 1
        block = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return block, seq

    # ------------------------------------------------------------------
    def cleanup(self) -> None:
        """Drop spill state; idempotent, runs on every exit path."""
        if self._closed:
            return
        self._closed = True
        if self._fetch_reader is not None:
            self._fetch_reader.close()
            self._fetch_reader = None
        shutil.rmtree(self.workdir, ignore_errors=True)

    def public(self) -> dict[str, Any]:
        out = {
            "stream_id": self.stream_id,
            "phase": self.phase,
            "dtype": self.dtype.str,
            "chunk_keys": self.chunk_keys,
            "fan_in": self.fan_in,
            "keys_ingested": self.keys_ingested,
            "runs": self.runs,
            "merge_passes": self.merge_passes,
            "bytes_spilled": self.bytes_spilled,
        }
        if self.phase == "done":
            out["keys_merged"] = self.keys_merged
        if self.error is not None:
            out["error"] = self.error
            out["message"] = self.message
        return out

