"""Reusable shared-memory arena for the job server.

The native sorts normally create four or five named shared-memory blocks
per sort and unlink them afterwards; at service rates that is thousands
of ``shm_open``/``shm_unlink`` round trips per second, each a kernel
call plus a page-cache dance.  The arena removes them from the
steady-state path: the server creates a small fixed set of *slabs* once
(two data slabs sized for the largest admissible job, a few smaller meta
slabs for histograms/splitters), and every job's buffers are ndarray
views into leased slabs.  Slab names are stable for the server's
lifetime, so pool workers -- whose attach cache
(:func:`repro.native.shm.enable_attach_cache`) memoizes by name -- map
each slab exactly once and every later job runs with zero creates and
zero attaches, which the per-job trace spans assert.

Slabs carry a recognizable ``repro_slab_*`` name (instead of CPython's
anonymous ``psm_*``) so a leaked segment in ``/dev/shm`` is attributable;
the test suite's leak audit covers both prefixes.
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass

import numpy as np

from ..native.shm import SharedArray, SortBuffers, allocate

#: Name prefix for arena slabs in /dev/shm (leak-audit greps for it).
SLAB_PREFIX = "repro_slab"


class ArenaError(RuntimeError):
    """Base class for arena failures."""


class ArenaExhausted(ArenaError):
    """No free slab can satisfy a lease (arena too small or a leak)."""


class JobTooLarge(ArenaError):
    """A requested buffer exceeds every slab's capacity."""


@dataclass
class _Slab:
    sa: SharedArray
    nbytes: int
    in_use: bool = False

    @property
    def name(self) -> str:
        return self.sa.name


class SlabView:
    """One job-lifetime buffer: an ndarray view into a leased slab.

    Duck-types what the sorts need from a :class:`SharedArray` --
    ``.name`` (workers attach the *slab* and build the same view over its
    prefix) and ``.array`` -- without owning the underlying block.
    """

    def __init__(self, slab: _Slab, shape: tuple[int, ...], dtype: np.dtype):
        self._slab = slab
        self.shape = shape
        self.dtype = dtype
        self.array: np.ndarray = np.ndarray(shape, dtype=dtype, buffer=slab.sa.array)

    @property
    def name(self) -> str:
        return self._slab.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SlabView {self.name} {self.shape} {self.dtype}>"


class Arena:
    """A fixed set of preallocated slabs with lease/release bookkeeping.

    ``data_bytes``/``n_data`` size the large slabs (a sort needs two: the
    double-buffered src/dst pair), ``meta_bytes``/``n_meta`` the small
    ones (radix: histogram + offsets; sample: counts + placement +
    splitters -- hence the default of three).  Creation is the only time
    the arena touches the shared-memory system; ``close`` unlinks
    everything, including on the server's exception path.
    """

    def __init__(
        self,
        data_bytes: int = 8 << 20,
        n_data: int = 2,
        meta_bytes: int = 4 << 20,
        n_meta: int = 3,
    ):
        if data_bytes < 1 or meta_bytes < 1:
            raise ValueError("slab sizes must be positive")
        if n_data < 2:
            raise ValueError("a sort double-buffers: need >= 2 data slabs")
        if n_meta < 3:
            raise ValueError("sample sort needs >= 3 meta slabs")
        self.data_bytes = int(data_bytes)
        self.meta_bytes = int(meta_bytes)
        self._lock = threading.Lock()
        self._slabs: list[_Slab] = []
        self._closed = False
        token = secrets.token_hex(4)
        try:
            for i in range(n_data):
                self._add_slab(self.data_bytes, f"{SLAB_PREFIX}_{os.getpid()}_{token}_d{i}")
            for i in range(n_meta):
                self._add_slab(self.meta_bytes, f"{SLAB_PREFIX}_{os.getpid()}_{token}_m{i}")
        except BaseException:
            self.close()
            raise
        self.leases = 0
        self.peak_in_use = 0

    def _add_slab(self, nbytes: int, name: str) -> None:
        sa = allocate((nbytes,), np.uint8, name=name)
        self._slabs.append(_Slab(sa, nbytes))

    # ------------------------------------------------------------------
    @property
    def slab_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self._slabs)

    @property
    def slab_sizes(self) -> tuple[int, ...]:
        return tuple(s.nbytes for s in self._slabs)

    def max_job_bytes(self) -> int:
        """Largest per-buffer payload a job may need (one data slab)."""
        return self.data_bytes

    def in_use(self) -> int:
        with self._lock:
            return sum(1 for s in self._slabs if s.in_use)

    # ------------------------------------------------------------------
    def lease(self, nbytes: int) -> _Slab:
        """Smallest free slab with capacity >= ``nbytes``."""
        if self._closed:
            raise ArenaError("arena is closed")
        with self._lock:
            best: _Slab | None = None
            for slab in self._slabs:
                if slab.in_use or slab.nbytes < nbytes:
                    continue
                if best is None or slab.nbytes < best.nbytes:
                    best = slab
            if best is None:
                if any(s.nbytes >= nbytes for s in self._slabs):
                    raise ArenaExhausted(
                        f"no free slab for a {nbytes}-byte lease "
                        f"({self.in_use_unlocked()} of {len(self._slabs)} in use)"
                    )
                raise JobTooLarge(
                    f"{nbytes}-byte buffer exceeds the largest "
                    f"{max(self.slab_sizes)}-byte slab"
                )
            best.in_use = True
            self.leases += 1
            self.peak_in_use = max(
                self.peak_in_use, sum(1 for s in self._slabs if s.in_use)
            )
            return best

    def in_use_unlocked(self) -> int:
        return sum(1 for s in self._slabs if s.in_use)

    def release(self, slab: _Slab) -> None:
        with self._lock:
            slab.in_use = False

    def buffers(self) -> "ArenaBuffers":
        """A per-sort buffer provider drawing from this arena."""
        return ArenaBuffers(self)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every slab; safe to call twice and mid-construction."""
        self._closed = True
        slabs, self._slabs = self._slabs, []
        for slab in slabs:
            try:
                slab.sa.close()
            except OSError:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "Arena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        return {
            "slabs": len(self._slabs),
            "data_bytes": self.data_bytes,
            "meta_bytes": self.meta_bytes,
            "leases": self.leases,
            "in_use": self.in_use(),
            "peak_in_use": self.peak_in_use,
        }


class ArenaBuffers(SortBuffers):
    """The arena-backed :class:`~repro.native.shm.SortBuffers`: ``empty``
    and ``from_array`` lease slab views instead of creating blocks, and
    ``release_all`` returns the leases (nothing is unlinked)."""

    def __init__(self, arena: Arena):
        self._arena = arena
        self._leased: list[_Slab] = []

    def empty(
        self, shape: tuple[int, ...] | int, dtype: np.dtype | type = np.int64
    ) -> SlabView:
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        slab = self._arena.lease(nbytes)
        self._leased.append(slab)
        return SlabView(slab, shape, dtype)

    def from_array(self, source: np.ndarray) -> SlabView:
        view = self.empty(source.shape, source.dtype)
        view.array[...] = source
        return view

    def release_all(self) -> None:
        leased, self._leased = self._leased, []
        for slab in reversed(leased):
            self._arena.release(slab)
