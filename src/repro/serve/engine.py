"""The sort engine: a persistent supervised pool + arena behind a queue.

One engine owns the process-heavy state the server amortizes across
jobs: a supervised :class:`~repro.native.pool.WorkerPool` whose workers
run :func:`repro.native.shm.enable_attach_cache` at start (and after
every supervised rebuild -- the pool's built-in worker init also warms
the active sort kernel, so a numba JIT compile never lands inside a
job), and a shared-memory :class:`~.arena.Arena` whose slab names those
caches memoize.  Jobs execute one at a time on a
dedicated thread (the server's single-lane executor): within-job
parallelism comes from the pool, between-job concurrency from the
queue, and the serial lane is what makes the arena's two-data-slab
budget and the fault plan's per-job attribution exact.

``warmup`` runs attach-touch phases until every worker slot has executed
at least one touch task *and* a full round completes with zero fresh
attaches -- i.e. until every worker demonstrably holds every slab in its
cache -- so "steady state" is established by measurement, not hope.  After that,
each job's trace span (``serve.job`` on the ``PID_SERVE`` track) carries
the job's shared-memory create/attach counts, which are zero on the
steady-state path and nonzero exactly when a supervised rebuild replaced
workers (whose fresh caches must re-attach).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..faults.context import use_fault_plan
from ..faults.plan import FaultPlan
from ..native import shm
from ..native.pool import WorkerPool, default_workers
from ..native.radix import parallel_radix_sort
from ..native.sample import parallel_sample_sort
from ..trace import PID_SERVE, TraceRecorder, current_recorder, use_recorder
from .arena import Arena

#: Warmup gives up after this many touch rounds (a worker that never
#: gets scheduled a task in any of them is pathological).
MAX_WARMUP_ROUNDS = 20

#: Pause between warmup rounds while some worker has yet to run a touch
#: task: a freshly forked worker needs a moment to reach the task queue,
#: and without the pause a fast sibling can drain every round before the
#: slow one boots.
_WARMUP_ROUND_PAUSE_S = 0.1


def _touch_task(args: tuple[tuple[str, int], ...]) -> int:
    """Attach every named slab (populating this worker's cache)."""
    touched = 0
    for name, nbytes in args:
        sa = shm.SharedArray.attach(name, (nbytes,), np.uint8)
        touched += 1
        sa.close()  # cached: drops the view, keeps the mapping
    # Hold the slot briefly so one fast worker cannot drain the whole
    # round before its siblings pull their first task.
    time.sleep(0.01)
    return touched


@dataclass(frozen=True)
class EngineOutcome:
    """One executed job, as the engine saw it."""

    sorted_keys: np.ndarray
    wall_s: float
    shm_creates: int
    shm_attaches: int
    phase_failures: int
    faults: dict[str, Any] | None


class SortEngine:
    """Runs sort jobs on the persistent pool with arena buffers."""

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        arena: Arena | None = None,
        data_slab_bytes: int = 8 << 20,
        meta_slab_bytes: int = 4 << 20,
        fault_plan: FaultPlan | None = None,
        recorder: TraceRecorder | None = None,
        phase_timeout_s: float | None = 10.0,
    ):
        self.n_workers = n_workers if n_workers is not None else default_workers()
        self.arena = arena if arena is not None else Arena(
            data_bytes=data_slab_bytes, meta_bytes=meta_slab_bytes
        )
        self._own_arena = arena is None
        self._plan = fault_plan
        self._recorder = recorder
        self._inline = self.n_workers == 1
        self.pool = WorkerPool(
            self.n_workers,
            collect_timings=True,
            supervise=True,
            phase_timeout_s=phase_timeout_s,
            initializer=shm.enable_attach_cache,
        )
        self.warmup_rounds = 0
        self.jobs_run = 0
        self.steady_shm_creates = 0
        self.steady_shm_attaches = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _drain_timing_attaches(self) -> int:
        """Sum and clear the pool's accumulated per-phase attach counts
        (the pool is long-lived; unbounded timing growth would leak)."""
        total = sum(sum(t.attaches) for t in self.pool.timings)
        self.pool.timings.clear()
        return total

    def warmup(self) -> int:
        """Prime every worker's attach cache; returns rounds needed.

        A round of touch tasks proves nothing about workers that did not
        run one -- a slow-booting worker can sit out a round its fast
        sibling drains -- so warmth requires *both* a zero-fresh-attach
        round and that every worker slot has executed at least one touch
        task across the rounds so far.
        """
        touch = tuple((name, 1) for name in self.arena.slab_names)
        self.pool.timings.clear()
        slots_seen: set[int] = set()
        for round_i in range(MAX_WARMUP_ROUNDS):
            self.pool.run_phase(
                _touch_task,
                [touch] * max(2, self.pool.n_workers * 2),
                name="serve.warmup",
            )
            self.warmup_rounds = round_i + 1
            for timing in self.pool.timings:
                slots_seen.update(timing.slots)
            attaches = self._drain_timing_attaches()
            covered = len(slots_seen) >= self.pool.n_workers
            if covered and attaches == 0:
                break
            if not covered:
                time.sleep(_WARMUP_ROUND_PAUSE_S)
        return self.warmup_rounds

    # ------------------------------------------------------------------
    def run(
        self,
        job_id: str,
        keys: np.ndarray,
        algorithm: str,
        radix: int | None = None,
        queue_wait_s: float | None = None,
    ) -> EngineOutcome:
        """Execute one job with arena buffers; never creates segments on
        the steady-state path (asserted by the emitted trace span)."""
        if self._closed:
            raise RuntimeError("engine is closed")
        plan_ctx = (
            use_fault_plan(self._plan) if self._plan is not None else nullcontext()
        )
        creates_before = shm.create_count()
        stats_before = self._plan.stats() if self._plan is not None else None
        failures_before = self.pool.phase_failures
        bufs = self.arena.buffers()
        t0 = time.perf_counter()
        with use_recorder(self._recorder), plan_ctx:
            try:
                if algorithm == "radix":
                    kwargs = {} if radix is None else {"radix": radix}
                    out = parallel_radix_sort(
                        keys, pool=self.pool, buffers=bufs, **kwargs
                    )
                elif algorithm == "sample":
                    out = parallel_sample_sort(keys, pool=self.pool, buffers=bufs)
                else:
                    raise ValueError(f"unknown algorithm {algorithm!r}")
            finally:
                bufs.release_all()  # idempotent: the sorts release too
            t1 = time.perf_counter()
            attaches = self._drain_timing_attaches()
            creates = shm.create_count() - creates_before
            rec = current_recorder()
            if rec.enabled:
                rec.complete(
                    "serve.job",
                    cat="serve.job",
                    ts_us=t0 * 1e6,
                    dur_us=(t1 - t0) * 1e6,
                    pid=PID_SERVE,
                    tid=0,
                    args={
                        "job_id": job_id,
                        "algorithm": algorithm,
                        "n_keys": int(len(keys)),
                        "shm_creates": creates,
                        "shm_attaches": attaches,
                        "queue_wait_ms": (
                            None if queue_wait_s is None else queue_wait_s * 1e3
                        ),
                    },
                )
        self.jobs_run += 1
        self.steady_shm_creates += creates
        self.steady_shm_attaches += attaches
        faults = None
        if self._plan is not None and stats_before is not None:
            delta = self._plan.stats().since(stats_before)
            faults = {
                "injected": dict(delta.injected),
                "recovered": dict(delta.recovered),
            }
        return EngineOutcome(
            sorted_keys=out,
            wall_s=t1 - t0,
            shm_creates=creates,
            shm_attaches=attaches,
            phase_failures=self.pool.phase_failures - failures_before,
            faults=faults,
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        from ..native.kernels import resolve as resolve_kernel

        return {
            "n_workers": self.pool.n_workers,
            "kernel": resolve_kernel().name,
            "jobs_run": self.jobs_run,
            "warmup_rounds": self.warmup_rounds,
            "steady_shm_creates": self.steady_shm_creates,
            "steady_shm_attaches": self.steady_shm_attaches,
            "phase_failures": self.pool.phase_failures,
            "arena": self.arena.stats(),
        }

    def close(self, force: bool = False) -> None:
        """Reap workers and unlink every slab; safe to call twice."""
        if self._closed:
            return
        self._closed = True
        try:
            self.pool.close(force=force)
        finally:
            if self._own_arena:
                self.arena.close()
            if self._inline:
                # The inline "pool" enabled the attach cache in *this*
                # process; drop the cached mappings so tests and
                # long-lived parents do not accumulate dead segments.
                shm.enable_attach_cache(False)
                shm.detach_cached()

    def __enter__(self) -> "SortEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(force=exc_type is not None)
