"""Wire protocol for the sort job server.

One frame = an 8-byte header (magic ``RPSV`` + big-endian uint32 body
length) followed by the body: a uint32 JSON-header length, the JSON
header, and an optional raw binary payload (key bytes).  Keys travel as
``ndarray.tobytes()`` with ``dtype``/``shape`` named in the JSON header,
so a submit or result frame costs one copy and no base64 inflation.

Framing errors are typed: :class:`FrameTooLarge` (a body beyond
``max_frame`` is refused before it is read, so a hostile or buggy client
cannot balloon server memory), :class:`FrameTruncated` (the stream ended
mid-frame) and :class:`BadMagic` (not this protocol).  Both sync
(``socket``) and async (``asyncio`` streams) transports share the same
pack/unpack core, so the client, server and tests cannot drift apart.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

import numpy as np

MAGIC = b"RPSV"
_HEADER = struct.Struct(">4sI")
_JLEN = struct.Struct(">I")

#: Default per-frame byte ceiling (header + payload).  64 MiB fits an
#: 8M-key int64 submit; servers and clients can lower it independently.
MAX_FRAME = 64 << 20


class ProtocolError(RuntimeError):
    """Base class for framing failures."""


class BadMagic(ProtocolError):
    """The stream does not speak this protocol."""


class FrameTooLarge(ProtocolError):
    """A frame exceeded the transport's ``max_frame`` ceiling.

    ``cap`` carries the configured ceiling so a structured rejection can
    tell the peer *which* limit it hit (a client that knows the cap can
    re-chunk and retry; one that only sees "too large" cannot tell a cap
    from corruption).
    """

    def __init__(self, message: str, cap: int | None = None):
        super().__init__(message)
        self.cap = cap


class FrameTruncated(ProtocolError):
    """The stream ended mid-frame (peer died or sent a short write)."""


# ----------------------------------------------------------------------
# Pack / unpack (transport-independent)
# ----------------------------------------------------------------------
def pack_frame(
    header: dict[str, Any], payload: bytes = b"", max_frame: int = MAX_FRAME
) -> bytes:
    """Serialize one frame; raises :class:`FrameTooLarge` over the cap."""
    jbytes = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
    body_len = _JLEN.size + len(jbytes) + len(payload)
    if body_len > max_frame:
        raise FrameTooLarge(
            f"frame body of {body_len} bytes exceeds the {max_frame}-byte cap",
            cap=max_frame,
        )
    return b"".join(
        (_HEADER.pack(MAGIC, body_len), _JLEN.pack(len(jbytes)), jbytes, payload)
    )


def unpack_body(body: bytes) -> tuple[dict[str, Any], bytes]:
    """Split a frame body into (JSON header, raw payload)."""
    if len(body) < _JLEN.size:
        raise FrameTruncated("frame body shorter than its header-length field")
    (jlen,) = _JLEN.unpack_from(body)
    if _JLEN.size + jlen > len(body):
        raise FrameTruncated("frame body shorter than its declared JSON header")
    header = json.loads(body[_JLEN.size : _JLEN.size + jlen].decode())
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return header, body[_JLEN.size + jlen :]


def parse_header(raw: bytes, max_frame: int = MAX_FRAME) -> int:
    """Validate the 8 fixed bytes; returns the body length to read."""
    magic, body_len = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise BadMagic(f"expected magic {MAGIC!r}, got {magic!r}")
    if body_len > max_frame:
        raise FrameTooLarge(
            f"peer announced a {body_len}-byte frame, over the "
            f"{max_frame}-byte cap",
            cap=max_frame,
        )
    return body_len


# ----------------------------------------------------------------------
# Key codecs
# ----------------------------------------------------------------------
def encode_keys(keys: np.ndarray) -> tuple[dict[str, Any], bytes]:
    """(header fields, payload bytes) describing a 1-D key array."""
    keys = np.ascontiguousarray(keys)
    return {"dtype": keys.dtype.str, "n_keys": int(keys.shape[0])}, keys.tobytes()


def decode_keys(header: dict[str, Any], payload: bytes) -> np.ndarray:
    """Rebuild the key array a peer sent; validates length consistency."""
    try:
        dtype = np.dtype(header["dtype"])
        n = int(header["n_keys"])
    except (KeyError, TypeError, ValueError) as err:
        raise ProtocolError(f"malformed key description: {err}") from None
    if n < 0 or n * dtype.itemsize != len(payload):
        raise ProtocolError(
            f"key payload is {len(payload)} bytes but header declares "
            f"{n} x {dtype.str}"
        )
    return np.frombuffer(payload, dtype=dtype).copy()


# ----------------------------------------------------------------------
# Sync transport (the thin client)
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise FrameTruncated(f"stream closed with {n} bytes outstanding")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(
    sock: socket.socket, max_frame: int = MAX_FRAME
) -> tuple[dict[str, Any], bytes]:
    body_len = parse_header(_recv_exact(sock, _HEADER.size), max_frame)
    return unpack_body(_recv_exact(sock, body_len))


def write_frame_sync(
    sock: socket.socket,
    header: dict[str, Any],
    payload: bytes = b"",
    max_frame: int = MAX_FRAME,
) -> None:
    sock.sendall(pack_frame(header, payload, max_frame))


# ----------------------------------------------------------------------
# Async transport (the server)
# ----------------------------------------------------------------------
async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> tuple[dict[str, Any], bytes]:
    """Read one frame; raises ``asyncio.IncompleteReadError`` wrapped as
    :class:`FrameTruncated` when the peer hangs up mid-frame."""
    try:
        raw = await reader.readexactly(_HEADER.size)
        body = await reader.readexactly(parse_header(raw, max_frame))
    except asyncio.IncompleteReadError as err:
        if not err.partial and err.expected == _HEADER.size:
            raise EOFError("peer closed between frames") from None
        raise FrameTruncated(
            f"stream closed mid-frame ({len(err.partial)}/{err.expected} bytes)"
        ) from None
    return unpack_body(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    header: dict[str, Any],
    payload: bytes = b"",
    max_frame: int = MAX_FRAME,
) -> None:
    writer.write(pack_frame(header, payload, max_frame))
    await writer.drain()
