"""Sort-as-a-service: a job server over the resilient native pool.

The package turns the repo's one-shot parallel sorts into a long-lived
service (``python -m repro serve``) with a thin blocking client and a
load/latency harness (``python -m repro loadgen``).  See docs/SERVE.md
for the protocol, admission codes and operational model.

Layering::

    protocol   framing + key codecs (sync and asyncio transports)
    arena      preallocated shared-memory slabs; zero create/attach jobs
    admission  backpressure verdicts with retry_after_s hints
    results    bounded job-record store with completion events
    engine     persistent WorkerPool + Arena; one job at a time
    server     asyncio endpoint, queue, deadlines, drain/shutdown
    streamjob  streaming job sessions (external sorts over frames)
    client     blocking request/response client
    loadgen    N-client correctness-checking load generator
"""

from .admission import AdmissionController, Rejection
from .arena import Arena, ArenaBuffers, ArenaExhausted, JobTooLarge, SlabView
from .client import ServeClient, ServeError, ServeRejected
from .engine import EngineOutcome, SortEngine
from .loadgen import loadgen_ok, loadgen_results, run_loadgen
from .protocol import (
    MAX_FRAME,
    BadMagic,
    FrameTooLarge,
    FrameTruncated,
    ProtocolError,
    decode_keys,
    encode_keys,
    pack_frame,
    unpack_body,
)
from .results import JobRecord, ResultStore
from .server import ServeServer, server_in_thread
from .streamjob import StreamSession

__all__ = [
    "AdmissionController",
    "Arena",
    "ArenaBuffers",
    "ArenaExhausted",
    "BadMagic",
    "EngineOutcome",
    "FrameTooLarge",
    "FrameTruncated",
    "JobRecord",
    "JobTooLarge",
    "MAX_FRAME",
    "ProtocolError",
    "Rejection",
    "ResultStore",
    "ServeClient",
    "ServeError",
    "ServeRejected",
    "ServeServer",
    "SlabView",
    "SortEngine",
    "StreamSession",
    "decode_keys",
    "encode_keys",
    "loadgen_ok",
    "loadgen_results",
    "pack_frame",
    "run_loadgen",
    "server_in_thread",
    "unpack_body",
]
