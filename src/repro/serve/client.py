"""Thin synchronous client for the sort job server.

One :class:`ServeClient` wraps one TCP connection; every call is a
request/response frame pair (the protocol is strictly alternating per
connection, so a client is single-threaded by construction -- the load
generator opens one client per worker thread).  Server-side rejections
surface as :class:`ServeRejected` carrying the structured code and the
``retry_after_s`` backpressure hint; other structured errors raise
:class:`ServeError` with the code in ``.code``.
"""

from __future__ import annotations

import socket
from typing import Any

import numpy as np

from .protocol import (
    MAX_FRAME,
    encode_keys,
    read_frame_sync,
    write_frame_sync,
)

#: Rejection codes raised as ServeRejected (admission, not job failure).
REJECTION_CODES = ("busy", "too-large", "bad-radix", "draining")


class ServeError(RuntimeError):
    """A structured error reply from the server."""

    def __init__(self, code: str, message: str = "", reply: dict | None = None):
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code
        self.reply = reply or {}


class ServeRejected(ServeError):
    """Admission refused the job; honor ``retry_after_s`` if present."""

    def __init__(self, code: str, message: str, retry_after_s: float | None):
        super().__init__(code, message)
        self.retry_after_s = retry_after_s


class ServeClient:
    """Blocking client; use as a context manager or call :meth:`close`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout_s: float = 120.0,
        max_frame: int = MAX_FRAME,
    ):
        self.max_frame = max_frame
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # ------------------------------------------------------------------
    def _call(
        self, header: dict[str, Any], payload: bytes = b""
    ) -> tuple[dict[str, Any], bytes]:
        write_frame_sync(self._sock, header, payload, self.max_frame)
        reply, out_payload = read_frame_sync(self._sock, self.max_frame)
        if not reply.get("ok", False):
            code = reply.get("error", "unknown")
            message = reply.get("message", "")
            if code in REJECTION_CODES:
                raise ServeRejected(code, message, reply.get("retry_after_s"))
            raise ServeError(code, message, reply)
        return reply, out_payload

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        reply, _ = self._call({"op": "ping"})
        return reply.get("op") == "pong"

    def submit(
        self,
        keys: np.ndarray,
        algorithm: str = "radix",
        *,
        radix: int | None = None,
        deadline_s: float | None = None,
    ) -> str:
        """Submit a job; returns its id (raises :class:`ServeRejected`)."""
        fields, payload = encode_keys(keys)
        header: dict[str, Any] = {"op": "submit", "algorithm": algorithm, **fields}
        if radix is not None:
            header["radix"] = radix
        if deadline_s is not None:
            header["deadline_s"] = deadline_s
        reply, _ = self._call(header, payload)
        return reply["job_id"]

    def status(self, job_id: str) -> dict[str, Any]:
        reply, _ = self._call({"op": "status", "job_id": job_id})
        return reply

    def wait(self, job_id: str, timeout_s: float = 60.0) -> dict[str, Any]:
        """Block server-side until the job is terminal; returns status."""
        reply, _ = self._call(
            {"op": "wait", "job_id": job_id, "timeout_s": timeout_s}
        )
        return reply

    def result(self, job_id: str) -> np.ndarray:
        """Fetch a finished job's sorted keys."""
        reply, payload = self._call({"op": "result", "job_id": job_id})
        return np.frombuffer(payload, dtype=np.dtype(reply["dtype"])).copy()

    def sort(
        self,
        keys: np.ndarray,
        algorithm: str = "radix",
        *,
        radix: int | None = None,
        deadline_s: float | None = None,
        timeout_s: float = 60.0,
    ) -> np.ndarray:
        """Submit + wait + fetch in one call (the simple-path API)."""
        job_id = self.submit(
            keys, algorithm, radix=radix, deadline_s=deadline_s
        )
        status = self.wait(job_id, timeout_s=timeout_s)
        if status.get("status") != "done":
            raise ServeError(
                status.get("error") or status.get("status", "unknown"),
                status.get("message", ""),
                status,
            )
        return self.result(job_id)

    # ------------------------------------------------------------------
    # Streaming jobs: external sorts spanning many frames
    # ------------------------------------------------------------------
    def stream_open(
        self,
        dtype: str | np.dtype = "<i8",
        *,
        chunk_keys: int | None = None,
        fan_in: int | None = None,
    ) -> str:
        """Open a streaming sort session; returns its stream id."""
        header: dict[str, Any] = {
            "op": "stream-open",
            "dtype": np.dtype(dtype).str,
        }
        if chunk_keys is not None:
            header["chunk_keys"] = int(chunk_keys)
        if fan_in is not None:
            header["fan_in"] = int(fan_in)
        reply, _ = self._call(header)
        return reply["stream_id"]

    def _push_frame_keys(self, itemsize: int) -> int:
        """How many keys fit one push frame under the cap (with slack
        for the JSON header)."""
        return max(1, (self.max_frame - 65536) // itemsize)

    def stream_push(self, stream_id: str, keys: np.ndarray) -> dict[str, Any]:
        """Push keys into a stream, slicing into frames under the cap;
        returns the final push reply (ingest progress)."""
        keys = np.ascontiguousarray(keys)
        per_frame = self._push_frame_keys(keys.dtype.itemsize)
        reply: dict[str, Any] = {}
        for lo in range(0, len(keys), per_frame):
            part = keys[lo : lo + per_frame]
            fields, payload = encode_keys(part)
            reply, _ = self._call(
                {"op": "stream-push", "stream_id": stream_id, **fields},
                payload,
            )
        if not len(keys):
            fields, payload = encode_keys(keys)
            reply, _ = self._call(
                {"op": "stream-push", "stream_id": stream_id, **fields},
                payload,
            )
        return reply

    def stream_close(self, stream_id: str) -> dict[str, Any]:
        """Finish ingest; the server merges in the background."""
        reply, _ = self._call({"op": "stream-close", "stream_id": stream_id})
        return reply

    def stream_status(self, stream_id: str) -> dict[str, Any]:
        reply, _ = self._call({"op": "stream-status", "stream_id": stream_id})
        return reply

    def stream_wait(
        self, stream_id: str, timeout_s: float = 120.0, poll_s: float = 0.05
    ) -> dict[str, Any]:
        """Poll until the stream is done/failed; returns final status."""
        import time as _time

        deadline = _time.perf_counter() + timeout_s
        while True:
            status = self.stream_status(stream_id)
            if status.get("phase") in ("done", "failed"):
                return status
            if _time.perf_counter() >= deadline:
                raise ServeError(
                    "stream-timeout",
                    f"stream {stream_id} still {status.get('phase')!r} "
                    f"after {timeout_s}s",
                    status,
                )
            _time.sleep(poll_s)

    def stream_fetch(
        self, stream_id: str, max_keys: int | None = None
    ) -> np.ndarray | None:
        """The next sorted output block, or ``None`` at EOF."""
        header: dict[str, Any] = {"op": "stream-fetch", "stream_id": stream_id}
        if max_keys is not None:
            header["max_keys"] = int(max_keys)
        reply, payload = self._call(header)
        if reply.get("eof"):
            return None
        return np.frombuffer(payload, dtype=np.dtype(reply["dtype"])).copy()

    def stream_abort(self, stream_id: str) -> dict[str, Any]:
        reply, _ = self._call({"op": "stream-abort", "stream_id": stream_id})
        return reply

    def stream_sort(
        self,
        keys: np.ndarray,
        *,
        chunk_keys: int | None = None,
        fan_in: int | None = None,
        timeout_s: float = 300.0,
    ) -> np.ndarray:
        """Externally sort ``keys`` through a streaming session: open,
        push in capped frames, close, poll, and drain the output."""
        stream_id = self.stream_open(
            keys.dtype, chunk_keys=chunk_keys, fan_in=fan_in
        )
        try:
            self.stream_push(stream_id, keys)
            self.stream_close(stream_id)
            status = self.stream_wait(stream_id, timeout_s=timeout_s)
            if status.get("phase") != "done":
                raise ServeError(
                    status.get("error", "stream-failed"),
                    status.get("message", ""),
                    status,
                )
            blocks: list[np.ndarray] = []
            while True:
                block = self.stream_fetch(stream_id)
                if block is None:
                    break
                blocks.append(block)
        except BaseException:
            try:
                self.stream_abort(stream_id)
            except Exception:
                pass
            raise
        if not blocks:
            return np.empty(0, dtype=keys.dtype)
        return np.concatenate(blocks)

    def stats(self) -> dict[str, Any]:
        reply, _ = self._call({"op": "stats"})
        return reply["stats"]

    def drain(self) -> dict[str, Any]:
        reply, _ = self._call({"op": "drain"})
        return reply

    def shutdown(self) -> dict[str, Any]:
        reply, _ = self._call({"op": "shutdown"})
        return reply

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
