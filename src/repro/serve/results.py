"""Bounded results store with per-job lifecycle and completion events.

One :class:`JobRecord` tracks a job from submit to pickup:
``queued -> running -> done | failed | expired`` (plus ``evicted`` once
the bounded store reclaims its bytes).  The store is written by the
asyncio loop and the engine thread and read by every connection handler,
so mutation is lock-guarded; completion flips an ``asyncio.Event`` the
server's blocking ``wait`` op awaits (created lazily on the loop so the
store itself stays loop-agnostic for tests).

Capacity is bounded two ways -- record count and stored result bytes --
and eviction prefers delivered results, then the oldest finished ones;
queued/running records are never evicted (they are the server's ground
truth for in-flight work).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

#: Terminal statuses (the done-event is set when one is reached).
TERMINAL = ("done", "failed", "expired")


@dataclass
class JobRecord:
    job_id: str
    algorithm: str
    n_keys: int
    dtype: str
    radix: int | None
    deadline_s: float | None
    submitted_s: float = field(default_factory=time.perf_counter)
    status: str = "queued"
    started_s: float | None = None
    finished_s: float | None = None
    error: str | None = None
    message: str | None = None
    sorted_bytes: bytes | None = None
    faults: dict[str, Any] | None = None
    shm_creates: int = 0
    shm_attaches: int = 0
    delivered: bool = False

    @property
    def queue_wait_s(self) -> float | None:
        if self.started_s is None:
            return None
        return self.started_s - self.submitted_s

    @property
    def wall_s(self) -> float | None:
        if self.finished_s is None or self.started_s is None:
            return None
        return self.finished_s - self.started_s

    def expired_at(self, now: float) -> bool:
        return (
            self.deadline_s is not None
            and now - self.submitted_s > self.deadline_s
        )

    def public(self) -> dict[str, Any]:
        """The status dict shipped to clients (no payload bytes)."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "algorithm": self.algorithm,
            "n_keys": self.n_keys,
            "dtype": self.dtype,
            "error": self.error,
            "message": self.message,
            "queue_wait_s": self.queue_wait_s,
            "wall_s": self.wall_s,
            "faults": self.faults,
            "shm_creates": self.shm_creates,
            "shm_attaches": self.shm_attaches,
        }


class ResultStore:
    """Bounded job-record store (see module docstring)."""

    def __init__(self, max_records: int = 256, max_result_bytes: int = 256 << 20):
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.max_records = max_records
        self.max_result_bytes = max_result_bytes
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}  # insertion-ordered
        self._events: dict[str, Any] = {}
        self._seq = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    def new_job(self, **fields) -> JobRecord:
        with self._lock:
            self._seq += 1
            rec = JobRecord(job_id=f"j{self._seq:06d}", **fields)
            self._records[rec.job_id] = rec
            self._evict_locked()
            return rec

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    def event_for(self, job_id: str, loop) -> Any:
        """The job's completion event, created lazily on ``loop``."""
        import asyncio

        with self._lock:
            ev = self._events.get(job_id)
            if ev is None:
                ev = asyncio.Event()
                rec = self._records.get(job_id)
                if rec is not None and rec.status in TERMINAL:
                    ev.set()
                self._events[job_id] = ev
            return ev

    def _finish_locked(self, rec: JobRecord, status: str) -> None:
        rec.status = status
        rec.finished_s = time.perf_counter()
        ev = self._events.get(rec.job_id)
        if ev is not None:
            ev.set()

    def mark_running(self, job_id: str) -> JobRecord | None:
        with self._lock:
            rec = self._records.get(job_id)
            if rec is not None:
                rec.status = "running"
                rec.started_s = time.perf_counter()
            return rec

    def set_done(
        self,
        job_id: str,
        sorted_bytes: bytes,
        *,
        faults: dict | None = None,
        shm_creates: int = 0,
        shm_attaches: int = 0,
    ) -> None:
        with self._lock:
            rec = self._records[job_id]
            rec.sorted_bytes = sorted_bytes
            rec.faults = faults
            rec.shm_creates = shm_creates
            rec.shm_attaches = shm_attaches
            self._finish_locked(rec, "done")
            self._evict_locked()

    def set_failed(self, job_id: str, error: str, message: str) -> None:
        with self._lock:
            rec = self._records[job_id]
            rec.error = error
            rec.message = message
            self._finish_locked(rec, "failed")

    def set_expired(self, job_id: str) -> None:
        with self._lock:
            rec = self._records[job_id]
            rec.error = "deadline"
            rec.message = (
                f"job exceeded its {rec.deadline_s:g}s deadline before a "
                "worker picked it up"
            )
            self._finish_locked(rec, "expired")

    def mark_delivered(self, job_id: str) -> None:
        with self._lock:
            rec = self._records.get(job_id)
            if rec is not None:
                rec.delivered = True

    # ------------------------------------------------------------------
    def _evict_locked(self) -> None:
        """Reclaim delivered-first, oldest-first among finished records."""

        def evictable(prefer_delivered: bool):
            for job_id, rec in self._records.items():
                if rec.status in TERMINAL and (rec.delivered or not prefer_delivered):
                    yield job_id

        def over_budget() -> bool:
            stored = sum(
                len(r.sorted_bytes or b"") for r in self._records.values()
            )
            return len(self._records) > self.max_records or (
                stored > self.max_result_bytes
            )

        for prefer_delivered in (True, False):
            while over_budget():
                victim = next(iter(evictable(prefer_delivered)), None)
                if victim is None:
                    break
                rec = self._records.pop(victim)
                self._events.pop(victim, None)
                rec.sorted_bytes = None
                self.evicted += 1

    def stats(self) -> dict[str, Any]:
        with self._lock:
            by_status: dict[str, int] = {}
            for rec in self._records.values():
                by_status[rec.status] = by_status.get(rec.status, 0) + 1
            return {
                "records": len(self._records),
                "evicted": self.evicted,
                "by_status": by_status,
                "stored_bytes": sum(
                    len(r.sorted_bytes or b"") for r in self._records.values()
                ),
            }
