"""Shared machinery for the parallel sorts.

The functional side (actually sorting NumPy arrays) and the performance
side (per-pass histograms, traffic and chunk matrices for the phase
executor) are computed together, pass by pass.

Scale extrapolation
-------------------
Experiments run the *functional* arrays at ``1/scale`` of the labeled data
set size (sorting 256M keys per grid point would be pointless work), but
the performance model must see labeled-size quantities.  Byte counts scale
exactly (multiply by ``scale``); chunk counts do not, because a digit cell
that is empty in the sample may be occupied at full size.  We therefore
estimate, per (source, destination) block, the *support* -- how many digit
cells the distribution can actually occupy -- from the observed occupancy
via the uniform-occupancy inversion ``D = S * (1 - exp(-m/S))``, then
re-evaluate occupancy at the labeled key count.  The estimator is exact in
the two regimes that matter: structurally empty cells (the ``half``
distribution's odd digits) stay empty, and undersampled uniform blocks
extrapolate to their true occupancy.  ``tests/sorts/test_common.py``
validates it against full-size measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..params import (  # re-exported
    ELEM_BYTES,
    KEY_BITS,
    SAMPLES_PER_PROC,
    elem_bytes_for,
)
from ..verify.context import current_sanitizer


def n_passes(radix: int, key_bits: int = KEY_BITS) -> int:
    """Number of radix-sort passes (the paper's 32/r, with 31-bit keys)."""
    if radix <= 0:
        raise ValueError("radix must be positive")
    return math.ceil(key_bits / radix)


def digits_for_pass(keys: np.ndarray, pass_idx: int, radix: int) -> np.ndarray:
    """The pass's radix digit of every key."""
    if pass_idx < 0:
        raise ValueError("pass index must be non-negative")
    shift = pass_idx * radix
    mask = (1 << radix) - 1
    return (keys >> shift) & mask


def proc_histograms(digits: np.ndarray, p: int, radix: int) -> np.ndarray:
    """(p, 2**radix) per-process digit histogram; processes own equal
    contiguous slices."""
    n = len(digits)
    if p <= 0 or n % p != 0:
        raise ValueError(f"n={n} must be a positive multiple of p={p}")
    nb = 1 << radix
    per = n // p
    # bincount per slice, vectorized across processes via offset trick:
    # digit + proc * nb is unique per (proc, digit) cell.
    owner = np.repeat(np.arange(p, dtype=np.int64), per)
    flat = np.bincount(owner * nb + digits.astype(np.int64), minlength=p * nb)
    return flat.reshape(p, nb)


def measure_locality(digits: np.ndarray, p: int) -> float:
    """Fraction of keys whose digit equals their predecessor's within the
    same partition -- the proxy for destination-stream locality that feeds
    the cache/TLB models (high for the paper's 'remote'/'local'
    distributions, ~2**-r for random ones)."""
    n = len(digits)
    if n < 2:
        return 0.0
    same = digits[1:] == digits[:-1]
    # Knock out comparisons across partition boundaries.
    per = n // p
    if per > 0:
        boundaries = np.arange(1, p) * per - 1
        boundaries = boundaries[boundaries < len(same)]
        same = same.copy()
        same[boundaries] = False
    return float(same.mean())


def apply_radix_pass(keys: np.ndarray, digits: np.ndarray) -> np.ndarray:
    """One stable radix pass: reorder keys by the given digits (NumPy's
    stable sort on small integers is a counting/radix sort, O(n))."""
    order = np.argsort(digits, kind="stable")
    return keys[order]


# ----------------------------------------------------------------------
# Communication matrices
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommMatrices:
    """Labeled-size traffic of one all-to-all permutation."""

    bytes_matrix: np.ndarray  # (p, p) payload bytes i -> j
    chunks_matrix: np.ndarray  # (p, p) contiguous chunk count i -> j

    @property
    def total_bytes(self) -> float:
        return float(self.bytes_matrix.sum())

    @property
    def remote_fraction(self) -> float:
        total = self.bytes_matrix.sum()
        if total == 0:
            return 0.0
        return float(1.0 - np.trace(self.bytes_matrix) / total)


def estimate_support(observed_distinct: float, observed_keys: float, cap: float) -> float:
    """Invert ``D = S * (1 - exp(-m/S))`` for S given observed distinct
    cell count D and key count m, capped at the block's cell count."""
    d = float(observed_distinct)
    m = float(observed_keys)
    if d <= 0 or m <= 0:
        return 0.0
    if d >= cap:
        return cap
    if m <= d + 1e-9:
        # Every key hit a distinct cell: no collision evidence, assume the
        # support is as large as it can be.
        return cap
    # Newton iteration on f(S) = S(1 - exp(-m/S)) - d, monotone in S.
    s = max(d, 1.0)
    for _ in range(40):
        e = math.exp(-m / s)
        f = s * (1.0 - e) - d
        df = 1.0 - e - (m / s) * e
        if abs(df) < 1e-12:
            break
        step = f / df
        s -= step
        if s < d:
            s = d
        if s > cap:
            return cap
        if abs(step) < 1e-9 * max(1.0, s):
            break
    return min(max(s, d), cap)


def radix_comm_matrices(
    hist: np.ndarray,
    n_per_actual: int,
    scale: int = 1,
    elem_bytes: int = ELEM_BYTES,
) -> CommMatrices:
    """Traffic and chunk matrices of one radix permutation pass.

    ``hist`` is the measured (p, 2**r) per-process digit histogram at the
    *actual* (sample) size; ``scale`` extrapolates to the labeled size.
    The stable permutation sends process i's keys with digit d to one
    contiguous global segment; a segment intersecting a destination
    partition contributes one chunk there.
    """
    p, nb = hist.shape
    if n_per_actual <= 0 or scale <= 0:
        raise ValueError("sizes must be positive")
    h = hist.astype(np.float64) * scale
    n_per = float(n_per_actual * scale)

    digit_totals = h.sum(axis=0)  # (nb,)
    digit_base = np.concatenate(([0.0], np.cumsum(digit_totals)[:-1]))
    within = np.cumsum(h, axis=0) - h  # exclusive prefix across processes
    seg_start = digit_base[None, :] + within  # (p, nb)
    seg_len = h

    bytes_m = np.zeros((p, p))
    chunks_raw = np.zeros((p, p))
    # Candidate cell count per (i, j): digits whose global range touches j.
    candidates = np.zeros((p, p))
    digit_lo = digit_base
    digit_hi = digit_base + np.maximum(digit_totals, 1e-9)
    part_lo = np.arange(p) * n_per
    part_hi = part_lo + n_per
    # digit d's global segment intersects partition j?
    d_touches_j = (digit_lo[None, :] < part_hi[:, None]) & (
        digit_hi[None, :] > part_lo[:, None]
    )  # (p_dest, nb)
    cand_per_j = d_touches_j.sum(axis=1).astype(np.float64)  # (p,)

    for i in range(p):
        starts = seg_start[i]
        lens = seg_len[i]
        nz = lens > 0
        if not nz.any():
            continue
        s = starts[nz]
        ln = lens[nz]
        e = s + ln
        j0 = np.minimum((s / n_per).astype(np.int64), p - 1)
        j1 = np.minimum(((e - 1e-9) / n_per).astype(np.int64), p - 1)
        same = j0 == j1
        # Common case: segment inside one partition.
        np.add.at(bytes_m[i], j0[same], ln[same] * elem_bytes)
        np.add.at(chunks_raw[i], j0[same], 1.0)
        # Spanning segments (rare: at most p-1 per source).
        for k in np.nonzero(~same)[0]:
            a, b = float(s[k]), float(e[k])
            for j in range(int(j0[k]), int(j1[k]) + 1):
                lo = max(a, j * n_per)
                hi = min(b, (j + 1) * n_per)
                if hi > lo:
                    bytes_m[i, j] += (hi - lo) * elem_bytes
                    chunks_raw[i, j] += 1.0
        candidates[i, :] = cand_per_j

    if scale == 1:
        chunks = chunks_raw
    else:
        chunks = np.zeros((p, p))
        for i in range(p):
            for j in range(p):
                d_obs = chunks_raw[i, j]
                if d_obs == 0:
                    continue
                m_obs = bytes_m[i, j] / elem_bytes / scale  # sample keys
                cap = max(candidates[i, j], d_obs)
                support = estimate_support(d_obs, m_obs, cap)
                m_labeled = m_obs * scale
                if support <= 0:
                    continue
                chunks[i, j] = max(
                    d_obs, support * (1.0 - math.exp(-m_labeled / support))
                )
    san = current_sanitizer()
    if san is not None:
        # Key/byte conservation: every source ships exactly its partition
        # and the stable permutation fills every destination exactly.
        san.on_comm(
            bytes_m,
            chunks,
            row_bytes=h.sum(axis=1) * elem_bytes,
            col_bytes=n_per * elem_bytes,
            where="radix.comm",
        )
    return CommMatrices(bytes_m, chunks)


# ----------------------------------------------------------------------
# Sample sort helpers
# ----------------------------------------------------------------------


def select_samples(
    sorted_parts: list[np.ndarray], samples_per_proc: int = SAMPLES_PER_PROC
) -> np.ndarray:
    """Evenly spaced sample keys from each locally sorted partition."""
    picks = []
    for part in sorted_parts:
        if len(part) == 0:
            continue
        k = min(samples_per_proc, len(part))
        idx = (np.arange(k) * len(part)) // k
        picks.append(part[idx])
    if not picks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(picks)


def choose_splitters(samples: np.ndarray, p: int) -> np.ndarray:
    """p-1 splitters: every (len/p)-th key of the sorted sample."""
    if p <= 0:
        raise ValueError("p must be positive")
    if p == 1 or len(samples) == 0:
        return np.empty(0, dtype=np.int64)
    s = np.sort(samples)
    idx = (np.arange(1, p) * len(s)) // p
    return s[idx]


def partition_counts(
    sorted_parts: list[np.ndarray], splitters: np.ndarray
) -> np.ndarray:
    """(p, p) key counts: how many of process i's keys belong to each
    destination's splitter range (computed by binary search, since the
    local partitions are already sorted).

    Duplicate splitters get special handling: when heavy key duplication
    (e.g. the ``zero`` distribution's 10% zeros) makes several consecutive
    splitters equal, the keys equal to that value are spread evenly over
    the destinations sharing it instead of all landing on the last one --
    without this, one process would sort the entire duplicated mass.
    """
    p = len(sorted_parts)
    counts = np.zeros((p, p), dtype=np.int64)
    for i, part in enumerate(sorted_parts):
        # searchsorted boundaries: dest j gets keys in (split[j-1], split[j]]
        edges = np.searchsorted(part, splitters, side="right")
        bounds = np.concatenate(([0], edges, [len(part)]))
        row = np.diff(bounds)
        counts[i] = row
    if len(splitters) == 0:
        return counts
    # Rebalance runs of equal splitters.
    j = 0
    while j < len(splitters):
        k = j
        while k + 1 < len(splitters) and splitters[k + 1] == splitters[j]:
            k += 1
        if k > j:
            value = splitters[j]
            dests = list(range(j, k + 2))  # destinations that may hold value
            for i, part in enumerate(sorted_parts):
                lo = int(np.searchsorted(part, value, side="left"))
                hi = int(np.searchsorted(part, value, side="right"))
                dup = hi - lo
                if dup == 0:
                    continue
                # With side="right", every key == value was counted at
                # destination j (the first splitter equal to it); spread
                # them evenly instead.  Result stays globally sorted:
                # each destination's slice remains contiguous.
                counts[i, j] -= dup
                share, rem = divmod(dup, len(dests))
                for idx, d in enumerate(dests):
                    counts[i, d] += share + (1 if idx < rem else 0)
        j = k + 1
    if (counts < 0).any():
        raise AssertionError("duplicate-splitter rebalancing went negative")
    return counts
