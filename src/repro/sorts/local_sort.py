"""Local radix-sort phase emission shared by the parallel sorts.

Sample sort runs two complete local radix sorts (phases 1 and 5); parallel
radix sort's histogram/permutation passes reuse the same access-pattern
shapes.  This module simulates the local passes functionally (per
partition) while emitting one compute phase per pass with per-processor
busy time and cache/TLB access patterns.

Residency matters here: when a processor's partition fits in its L2 cache,
passes after the first run out of cache -- this is precisely the
capacity-induced superlinear speedup the paper highlights for data sets of
16M keys and up (Section 4.2).
"""

from __future__ import annotations

import numpy as np

from ..data.distributions import KEY_BITS
from ..machine.access import BucketedAppend, SequentialScan
from ..smp.phases import uniform_compute
from ..smp.team import Team
from ..machine.placement import partition_home
from .common import (
    ELEM_BYTES,
    digits_for_pass,
    elem_bytes_for,
    measure_locality,
    n_passes,
)


def local_pass_stats(part: np.ndarray, k: int, radix: int) -> tuple[int, float]:
    """Measured (active write streams, destination locality) of one local
    radix pass over ``part`` -- the workload statistics that drive the
    pass's cache/TLB cost."""
    nb = 1 << radix
    digits = digits_for_pass(part, k, radix)
    locality = measure_locality(digits, 1)
    # Only the digit values that actually occur form write streams
    # (the 'half' distribution activates half the buckets).
    active = int(
        np.count_nonzero(np.bincount(digits.astype(np.int64), minlength=nb))
    ) or 1
    return active, locality


def local_sort_pass_phase(
    team: Team,
    name: str,
    k: int,
    labeled_counts: np.ndarray,
    actives: np.ndarray,
    localities: np.ndarray,
    received_cached: bool = False,
    elem_bytes: int = ELEM_BYTES,
) -> None:
    """Emit one local radix-sort pass as a compute phase.

    ``labeled_counts[i]`` is processor ``i``'s labeled key count,
    ``actives[i]``/``localities[i]`` its measured (or analytically
    derived) write-stream count and destination locality for this pass.
    Shared by :func:`local_radix_sort_phases` and the analytic predictor
    (:mod:`repro.predict`) so both charge identical costs.
    """
    p = team.n_procs
    costs = team.costs
    l2_bytes = team.machine.l2.size_bytes
    per_key = costs.hist_busy_ns_per_key + costs.permute_busy_ns_per_key
    busy = np.zeros(p)
    patterns: list[list] = [[] for _ in range(p)]
    for i in range(p):
        n_i = float(labeled_counts[i])
        if n_i <= 0:
            continue
        busy[i] = per_key * n_i
        fits = n_i * elem_bytes <= l2_bytes
        hist_resident = fits and (k > 0 or received_cached)
        n_int = int(round(n_i))
        span = n_int * elem_bytes
        patterns[i] = [
            # Histogram pass reads the partition...
            (SequentialScan(n_int, elem_bytes, resident=hist_resident), None),
            # ...the permutation reads it again (now warm if it fits)...
            (SequentialScan(n_int, elem_bytes, resident=fits), None),
            # ...and appends into the radix buckets of the local output.
            (
                BucketedAppend(
                    n_int, int(actives[i]), elem_bytes, span,
                    locality=float(localities[i]),
                ),
                None,
            ),
        ]
    home = partition_home(team.machine)
    patterns = [
        [(pat, h or home) for pat, h in plist] for plist in patterns
    ]
    team.compute(uniform_compute(f"{name}.pass{k}", busy, patterns))


def local_radix_sort_phases(
    team: Team,
    name: str,
    parts: list[np.ndarray],
    labeled_counts: np.ndarray,
    radix: int,
    received_cached: bool = False,
    key_bits: int = KEY_BITS,
) -> list[np.ndarray]:
    """Emit the cost phases of per-processor local radix sorts and return
    the functionally sorted partitions.

    ``parts[i]`` is processor ``i``'s actual (sample-size) data;
    ``labeled_counts[i]`` its labeled key count for the cost model.
    ``received_cached`` marks the input as cache-resident at the start
    (true after a SHMEM ``get``, which deposits data in the cache).
    """
    p = team.n_procs
    if len(parts) != p or len(labeled_counts) != p:
        raise ValueError("parts and labeled_counts must match team size")
    passes = n_passes(radix, key_bits)
    elem_bytes = elem_bytes_for(key_bits)

    cur = [np.asarray(part) for part in parts]
    for k in range(passes):
        actives = np.ones(p)
        localities = np.zeros(p)
        for i in range(p):
            if float(labeled_counts[i]) <= 0:
                continue
            actives[i], localities[i] = local_pass_stats(cur[i], k, radix)
        local_sort_pass_phase(
            team, name, k, np.asarray(labeled_counts, dtype=np.float64),
            actives, localities, received_cached=received_cached,
            elem_bytes=elem_bytes,
        )
        # Functional pass, partition-local and stable.
        for i in range(p):
            if len(cur[i]):
                digits = digits_for_pass(cur[i], k, radix)
                cur[i] = cur[i][np.argsort(digits, kind="stable")]
    return cur


