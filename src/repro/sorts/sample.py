"""Parallel sample sort under any programming model (Section 3.2).

Five phases: (1) each process radix-sorts its own keys; (2) each selects
128 sample keys; (3) splitters are chosen from the collected samples
(group leaders under CC-SAS, Allgather + redundant local computation under
MPI/SHMEM); (4) keys are distributed in one all-to-all with exactly one
contiguous chunk per process pair; (5) each process sorts what it
received.  Sample sort thus does almost double the sorting work of radix
sort but its communication is far better behaved -- no scattered writes,
no per-chunk messages.
"""

from __future__ import annotations

import numpy as np

from ..data.distributions import KEY_BITS
from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..models import ProgrammingModel, get_model
from ..smp.phases import Transport, uniform_compute
from ..smp.team import Team
from ..verify.context import current_sanitizer
from .common import (
    ELEM_BYTES,
    SAMPLES_PER_PROC,
    CommMatrices,
    choose_splitters,
    elem_bytes_for,
    n_passes,
    partition_counts,
    select_samples,
)
from .local_sort import local_radix_sort_phases
from .radix import SortOutcome, _resolve_scale, default_machine


class ParallelSampleSort:
    """Sample sort on the simulated machine under one programming model.

    ``radix`` is the radix of the *local* radix sorts; the paper finds 11
    optimal for sample sort (Figure 10) vs. 8 for parallel radix sort,
    because reducing local passes matters more when communication is cheap.
    """

    algorithm = "sample"

    def __init__(self, model: ProgrammingModel | str, radix: int = 11):
        self.model = get_model(model) if isinstance(model, str) else model
        if not 1 <= radix <= 16:
            raise ValueError("radix must be in [1, 16]")
        self.radix = radix

    # ------------------------------------------------------------------
    def run(
        self,
        keys: np.ndarray,
        n_procs: int | None = None,
        machine: MachineConfig | None = None,
        costs: CostModel = DEFAULT_COSTS,
        n_labeled: int | None = None,
        key_bits: int = KEY_BITS,
        keep_comm: bool = False,
    ) -> SortOutcome:
        keys = np.ascontiguousarray(keys)
        if machine is None:
            machine = default_machine(n_procs or 64)
        p = n_procs if n_procs is not None else machine.n_processors
        n, scale = _resolve_scale(len(keys), n_labeled, p)
        team = Team(machine, p, costs, label=f"sample/{self.model.name}")
        n_actual_per = len(keys) // p
        n_per = n // p
        elem_bytes = elem_bytes_for(key_bits)
        c = costs

        # Phase 1: local radix sort of the initial partitions.
        parts = [keys[i * n_actual_per : (i + 1) * n_actual_per] for i in range(p)]
        sorted_parts = local_radix_sort_phases(
            team,
            "localsort1",
            parts,
            np.full(p, n_per, dtype=np.int64),
            self.radix,
            key_bits=key_bits,
        )

        # Phase 2: sample selection (cheap, local: 128 strided reads).
        pick_busy = SAMPLES_PER_PROC * c.splitter_busy_ns_per_key
        team.compute(
            uniform_compute("sample-select", np.full(p, pick_busy))
        )
        samples = select_samples(sorted_parts)

        # Phase 3: splitter selection under the model's collection scheme.
        self.model.gather_samples(
            team, float(SAMPLES_PER_PROC * elem_bytes), "splitters"
        )
        splitters = choose_splitters(samples, p)

        # Phase 4: decide destinations (binary search on sorted data) and
        # distribute -- one contiguous chunk per process pair.
        counts = partition_counts(sorted_parts, splitters)
        decide_busy = np.full(p, np.log2(max(2, n_per)) * (p - 1) * 30.0)
        team.compute(uniform_compute("decide", decide_busy))
        comm = CommMatrices(
            bytes_matrix=counts.astype(np.float64) * elem_bytes * scale,
            chunks_matrix=(counts > 0).astype(np.float64),
        )
        san = current_sanitizer()
        if san is not None:
            # Conservation: every process distributes exactly its whole
            # partition (receive sides are splitter-dependent).
            san.on_comm(
                comm.bytes_matrix,
                comm.chunks_matrix,
                row_bytes=float(n_per * elem_bytes),
                col_bytes=None,
                where="sample.distribute",
            )
        self.model.exchange_for_sample(team, "distribute", comm, locality=1.0)

        # Phase 5: local sort of the received keys (imbalance shows up as
        # barrier SYNC, exactly as on the real machine).
        received = [
            np.concatenate(
                [sorted_parts[src][_range(counts, src, dst)] for src in range(p)]
            )
            if counts[:, dst].sum()
            else np.empty(0, dtype=keys.dtype)
            for dst in range(p)
        ]
        labeled_recv = counts.sum(axis=0).astype(np.int64) * scale
        sample_tp = self.model.sample_transport or self.model.exchange_transport
        got_cached = sample_tp in (Transport.SHMEM_GET, Transport.CCSAS_READ)
        sorted_received = local_radix_sort_phases(
            team,
            "localsort2",
            received,
            labeled_recv,
            self.radix,
            received_cached=got_cached,
            key_bits=key_bits,
        )
        team.barrier("final")

        result = (
            np.concatenate(sorted_received)
            if sorted_received
            else np.empty(0, dtype=keys.dtype)
        )
        return SortOutcome(
            sorted_keys=result,
            report=team.report(),
            algorithm=self.algorithm,
            model_name=self.model.name,
            radix=self.radix,
            n_labeled=n,
            n_procs=p,
            passes=n_passes(self.radix, key_bits),
            comm=(comm,) if keep_comm else (),
        )


def _range(counts: np.ndarray, src: int, dst: int) -> slice:
    """Slice of src's sorted partition destined for dst."""
    start = int(counts[src, :dst].sum())
    return slice(start, start + int(counts[src, dst]))
