"""The sorting algorithms: sequential baseline, parallel radix, sample."""

from .common import (
    CommMatrices,
    ELEM_BYTES,
    SAMPLES_PER_PROC,
    apply_radix_pass,
    choose_splitters,
    digits_for_pass,
    estimate_support,
    measure_locality,
    n_passes,
    partition_counts,
    proc_histograms,
    radix_comm_matrices,
    select_samples,
)
from .local_sort import local_radix_sort_phases
from .radix import ParallelRadixSort, SortOutcome, default_machine
from .sample import ParallelSampleSort
from .sequential import (
    SequentialResult,
    default_sequential_machine,
    sequential_radix_sort,
)

ALGORITHMS = {
    "radix": ParallelRadixSort,
    "sample": ParallelSampleSort,
}

__all__ = [
    "ALGORITHMS",
    "CommMatrices",
    "ELEM_BYTES",
    "ParallelRadixSort",
    "ParallelSampleSort",
    "SAMPLES_PER_PROC",
    "SequentialResult",
    "SortOutcome",
    "apply_radix_pass",
    "choose_splitters",
    "default_machine",
    "default_sequential_machine",
    "digits_for_pass",
    "estimate_support",
    "local_radix_sort_phases",
    "measure_locality",
    "n_passes",
    "partition_counts",
    "proc_histograms",
    "radix_comm_matrices",
    "select_samples",
    "sequential_radix_sort",
]
