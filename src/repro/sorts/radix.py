"""Parallel radix sort under any programming model (Section 3.1).

Per pass (one per radix digit): every process histograms its keys, local
histograms are accumulated globally (prefix tree under CC-SAS, Allgather
under MPI/SHMEM), and keys are permuted into the output array -- an
all-to-all personalized communication whose orchestration is the whole
difference between the models:

- CC-SAS writes each key straight to its (mostly remote) destination;
- CC-SAS-NEW / MPI / SHMEM first permute into local per-chunk buffers,
  then move contiguous chunks (separate messages per chunk for MPI, the
  variant the paper found faster; receiver-initiated gets for SHMEM).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.distributions import KEY_BITS
from ..machine.access import BucketedAppend, SequentialScan
from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..machine.memory import HomeLocation
from ..machine.placement import partition_home
from ..models import ProgrammingModel, get_model
from ..smp.perf import PerfReport
from ..smp.phases import Transport, uniform_compute
from ..smp.team import Team
from .common import (
    ELEM_BYTES,
    CommMatrices,
    apply_radix_pass,
    digits_for_pass,
    elem_bytes_for,
    measure_locality,
    n_passes,
    proc_histograms,
    radix_comm_matrices,
)


@dataclass(frozen=True)
class SortOutcome:
    """Sorted keys plus the simulated performance of producing them."""

    sorted_keys: np.ndarray
    report: PerfReport
    algorithm: str
    model_name: str
    radix: int
    n_labeled: int
    n_procs: int
    passes: int
    comm: tuple[CommMatrices, ...] = field(default=())

    @property
    def time_ns(self) -> float:
        return self.report.total_time_ns

    @property
    def time_us(self) -> float:
        return self.report.total_time_us

    def speedup_vs(self, sequential_ns: float) -> float:
        return self.report.speedup_vs(sequential_ns)


def default_machine(n_procs: int = 64, page_bytes: int = 64 * 1024) -> MachineConfig:
    """The paper's machine at full capacity scale, with the tuned page size
    (64 KB for 1M-64M keys; pass 256 KB for 256M, per Section 4)."""
    return MachineConfig.origin2000(
        n_processors=n_procs, scale=1, page_bytes=page_bytes
    )


def _resolve_scale(n_actual: int, n_labeled: int | None, p: int) -> tuple[int, int]:
    if n_actual <= 0 or n_actual % p != 0:
        raise ValueError(f"key count {n_actual} must be a positive multiple of p={p}")
    n = n_labeled if n_labeled is not None else n_actual
    if n % n_actual != 0:
        raise ValueError(
            f"n_labeled={n} must be a multiple of the actual key count {n_actual}"
        )
    return n, n // n_actual


def radix_histogram_phase(
    team: Team, tag: str, n_per: int, resident: bool,
    elem_bytes: int = ELEM_BYTES,
) -> None:
    """Emit one pass's histogram phase: every processor scans its
    partition once.  Shared by the simulated sorter and the analytic
    predictor (:mod:`repro.predict`) so both charge identical costs."""
    p = team.n_procs
    busy = np.full(p, team.costs.hist_busy_ns_per_key * n_per)
    home = partition_home(team.machine)
    pattern = [
        (SequentialScan(n_per, elem_bytes, resident=resident), home)
    ]
    team.compute(uniform_compute(f"{tag}.histogram", busy, [list(pattern)] * p))


def radix_permute_phase(
    team: Team,
    model: ProgrammingModel,
    tag: str,
    n_per: int,
    n: int,
    active_buckets: int,
    locality: float,
    comm: CommMatrices,
    fits: bool,
    elem_bytes: int = ELEM_BYTES,
) -> None:
    """Emit one pass's permutation compute phase plus the model's
    all-to-all exchange.  Shared by the simulated sorter and the analytic
    predictor."""
    p = team.n_procs
    c = team.costs
    nb = active_buckets
    busy = np.full(p, c.permute_busy_ns_per_key * n_per)
    home = partition_home(team.machine)
    read = (SequentialScan(n_per, elem_bytes, resident=fits), home)

    if model.buffers_locally:
        # Permute into local contiguous chunk buffers, then exchange.
        write = (
            BucketedAppend(n_per, nb, elem_bytes, n_per * elem_bytes, locality),
            home,
        )
        team.compute(
            uniform_compute(f"{tag}.permute-local", busy, [[read, write]] * p)
        )
        model.exchange(
            team,
            f"{tag}.exchange",
            comm,
            locality=1.0,  # chunks are contiguous once buffered
        )
    else:
        # Original CC-SAS: keys go straight into the shared output
        # array.  Locally destined keys behave like a bucketed append
        # into the local partition; remote ones are the exchange.
        patterns = []
        buckets_local = max(1, nb // p)
        for i in range(p):
            diag_keys = int(comm.bytes_matrix[i, i] / elem_bytes)
            plist = [read]
            if diag_keys > 0:
                plist.append(
                    (
                        BucketedAppend(
                            diag_keys,
                            buckets_local,
                            elem_bytes,
                            n_per * elem_bytes,
                            locality,
                        ),
                        home,
                    )
                )
            patterns.append(plist)
        team.compute(uniform_compute(f"{tag}.permute-scattered", busy, patterns))
        model.exchange(
            team,
            f"{tag}.exchange",
            comm,
            locality=locality,
            writer_buckets=nb,
            span_bytes=float(n * elem_bytes),
        )


class ParallelRadixSort:
    """Radix sort on the simulated machine under one programming model."""

    algorithm = "radix"

    def __init__(self, model: ProgrammingModel | str, radix: int = 8):
        self.model = get_model(model) if isinstance(model, str) else model
        if not 1 <= radix <= 16:
            raise ValueError("radix must be in [1, 16]")
        self.radix = radix

    # ------------------------------------------------------------------
    def run(
        self,
        keys: np.ndarray,
        n_procs: int | None = None,
        machine: MachineConfig | None = None,
        costs: CostModel = DEFAULT_COSTS,
        n_labeled: int | None = None,
        key_bits: int = KEY_BITS,
        keep_comm: bool = False,
    ) -> SortOutcome:
        keys = np.ascontiguousarray(keys)
        if machine is None:
            machine = default_machine(n_procs or 64)
        p = n_procs if n_procs is not None else machine.n_processors
        n, scale = _resolve_scale(len(keys), n_labeled, p)
        team = Team(machine, p, costs, label=f"radix/{self.model.name}")
        n_per = n // p
        n_actual_per = len(keys) // p
        nb = 1 << self.radix
        passes = n_passes(self.radix, key_bits)
        elem_bytes = elem_bytes_for(key_bits)
        l2 = machine.l2.size_bytes
        c = costs

        cur = keys
        comm_record: list[CommMatrices] = []
        shmem_cached = self.model.exchange_transport is Transport.SHMEM_GET
        for k in range(passes):
            tag = f"pass{k}"
            digits = digits_for_pass(cur, k, self.radix)
            hist = proc_histograms(digits, p, self.radix)
            locality = measure_locality(digits, p)
            active_buckets = int(np.count_nonzero(hist.sum(axis=0))) or 1
            comm = radix_comm_matrices(
                hist, n_actual_per, scale, elem_bytes=elem_bytes
            )
            if keep_comm:
                comm_record.append(comm)

            fits = n_per * elem_bytes <= l2
            # Data written by the previous pass is warm only if the
            # transport deposited it in the cache (SHMEM get) or it was
            # produced locally and fits.
            warm_in = fits and k > 0 and shmem_cached
            self._histogram_phase(team, tag, n_per, warm_in, elem_bytes)
            self.model.accumulate_histograms(team, nb, tag)
            self._permute_phase(
                team, tag, n_per, n, active_buckets, locality, comm, fits,
                elem_bytes,
            )
            team.barrier(f"{tag}.barrier")
            cur = apply_radix_pass(cur, digits)

        return SortOutcome(
            sorted_keys=cur,
            report=team.report(),
            algorithm=self.algorithm,
            model_name=self.model.name,
            radix=self.radix,
            n_labeled=n,
            n_procs=p,
            passes=passes,
            comm=tuple(comm_record),
        )

    # ------------------------------------------------------------------
    def _histogram_phase(
        self, team: Team, tag: str, n_per: int, resident: bool,
        elem_bytes: int = ELEM_BYTES,
    ) -> None:
        radix_histogram_phase(team, tag, n_per, resident, elem_bytes)

    def _permute_phase(
        self,
        team: Team,
        tag: str,
        n_per: int,
        n: int,
        nb: int,
        locality: float,
        comm: CommMatrices,
        fits: bool,
        elem_bytes: int = ELEM_BYTES,
    ) -> None:
        radix_permute_phase(
            team, self.model, tag, n_per, n, nb, locality, comm, fits,
            elem_bytes,
        )
