"""The sequential radix sort -- the paper's common speedup baseline.

"We first examine speedups ... measuring them with respect to the same
sequential radix sorting program for both algorithms and all models"
(Section 4).  Table 1 lists its times for Gauss keys from 1M to 256M.

The cost model sorts at the *labeled* size against the unscaled machine;
the functional pass runs on whatever array is given.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.distributions import KEY_BITS
from ..machine.access import BucketedAppend, SequentialScan
from ..machine.config import MachineConfig
from ..machine.costs import CostModel, DEFAULT_COSTS
from ..machine.memory import MemorySystem
from .common import (
    ELEM_BYTES,
    apply_radix_pass,
    digits_for_pass,
    measure_locality,
    n_passes,
)


@dataclass(frozen=True)
class SequentialResult:
    sorted_keys: np.ndarray
    time_ns: float
    per_pass_ns: tuple[float, ...]
    busy_ns: float
    mem_ns: float
    radix: int
    n_labeled: int

    @property
    def time_us(self) -> float:
        return self.time_ns / 1000.0

    @property
    def ns_per_key(self) -> float:
        return self.time_ns / self.n_labeled


def default_sequential_machine(page_bytes: int = 16 * 1024) -> MachineConfig:
    """One Origin2000 processor at the machine's default 16 KB page size.

    Table 1's uniprocessor baseline reflects default pages; the paper's
    64 KB / 256 KB page-size tuning quote concerns the parallel runs.
    Larger pages would hide the TLB pressure that makes the baseline grow
    superlinearly with n -- the very effect behind the paper's superlinear
    parallel speedups.
    """
    return MachineConfig.origin2000(n_processors=2, scale=1, page_bytes=page_bytes)


def sequential_pass_ns(
    memsys: MemorySystem,
    costs: CostModel,
    n: int,
    radix: int,
    locality: float,
) -> float:
    """Modeled uniprocessor cost of one LSD pass over ``n`` labeled keys:
    per-key busy work plus the three memory streams (histogram read,
    permutation read, bucketed scatter at the given destination
    locality).  Shared by :func:`sequential_radix_sort` (measured
    locality) and the analytic baseline in :mod:`repro.predict`
    (closed-form locality)."""
    nb = 1 << radix
    busy = (costs.hist_busy_ns_per_key + costs.permute_busy_ns_per_key) * n
    mem = (
        # histogram pass reads the input once...
        memsys.pattern_time(SequentialScan(n, ELEM_BYTES)).total_ns
        # ...the permutation reads it again...
        + memsys.pattern_time(SequentialScan(n, ELEM_BYTES)).total_ns
        # ...and scatters writes across the radix buckets of the output.
        + memsys.pattern_time(
            BucketedAppend(n, nb, ELEM_BYTES, n * ELEM_BYTES, locality=locality)
        ).total_ns
    )
    return busy + mem


def sequential_radix_sort(
    keys: np.ndarray,
    radix: int = 8,
    n_labeled: int | None = None,
    machine: MachineConfig | None = None,
    costs: CostModel = DEFAULT_COSTS,
    key_bits: int = KEY_BITS,
) -> SequentialResult:
    """Sort ``keys`` by LSD radix sort while modeling uniprocessor time.

    ``n_labeled`` sizes the cost model (defaults to ``len(keys)``); the
    functional sort always runs on the actual array.
    """
    keys = np.ascontiguousarray(keys)
    n_actual = len(keys)
    n = n_labeled if n_labeled is not None else n_actual
    if n_actual == 0:
        return SequentialResult(keys, 0.0, (), 0.0, 0.0, radix, max(n, 0))
    if n < n_actual or (n_labeled is not None and n % n_actual != 0):
        raise ValueError("n_labeled must be a multiple of len(keys)")
    machine = machine or default_sequential_machine()
    memsys = MemorySystem(machine, costs)

    passes = n_passes(radix, key_bits)
    cur = keys
    per_pass: list[float] = []
    busy_total = 0.0
    mem_total = 0.0
    for k in range(passes):
        digits = digits_for_pass(cur, k, radix)
        locality = measure_locality(digits, 1)
        busy = (costs.hist_busy_ns_per_key + costs.permute_busy_ns_per_key) * n
        mem = sequential_pass_ns(memsys, costs, n, radix, locality) - busy
        per_pass.append(busy + mem)
        busy_total += busy
        mem_total += mem
        cur = apply_radix_pass(cur, digits)

    return SequentialResult(
        sorted_keys=cur,
        time_ns=busy_total + mem_total,
        per_pass_ns=tuple(per_pass),
        busy_ns=busy_total,
        mem_ns=mem_total,
        radix=radix,
        n_labeled=n,
    )
