"""Legacy setup shim.

This environment is offline and lacks the ``wheel`` package, so the PEP 517
editable-install path (which needs ``bdist_wheel``) is unavailable.  Keeping
an explicit ``setup.py`` and omitting ``[build-system]`` from pyproject.toml
lets ``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Parallel Sorting on Cache-coherent DSM "
        "Multiprocessors' (Shan & Singh, SC 1999)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.predict": ["calibration_default.json"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
