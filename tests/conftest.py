"""Suite-wide fixtures: opt-in runtime sanitization.

``pytest --sanitize`` installs a :class:`repro.verify.Sanitizer` around
every test, so the whole suite doubles as a stress workload for the
invariant checker (CI runs one job this way).  Individual tests can opt
in with ``@pytest.mark.sanitize`` or out with ``@pytest.mark.no_sanitize``
(for tests that deliberately corrupt state the sanitizer would catch
before the assertion under test).

The sanitizer is installed via ``pytest_runtest_setup``/``teardown``
hooks rather than an autouse function-scoped fixture so Hypothesis
``@given`` tests are not flagged by its function-scoped-fixture health
check: one sanitizer then spans all examples of a test, which is exactly
the semantics we want.

An explicit ``sanitizer`` fixture is also provided for tests that want to
inspect the check counters afterwards.
"""

from __future__ import annotations

import gc
import tempfile
from pathlib import Path

import pytest

from repro.verify import Sanitizer, use_sanitizer

_ACTIVE: dict[str, object] = {}

_SHM_DIR = Path("/dev/shm")

_TMP_DIR = Path(tempfile.gettempdir())


def _shm_segments() -> set[str]:
    """POSIX shared-memory segments currently backing this host
    (``psm_*`` is CPython's ``multiprocessing.shared_memory`` prefix;
    ``repro_*`` covers the job server's named arena slabs)."""
    if not _SHM_DIR.is_dir():
        return set()
    return {
        p.name
        for pattern in ("psm_*", "repro_*")
        for p in _SHM_DIR.glob(pattern)
    }


@pytest.fixture(scope="session", autouse=True)
def _shm_leak_audit():
    """Fail the suite if any test leaks a shared-memory segment.

    ``SharedArray`` owners must unlink their block exactly once; a
    crashed worker or an exception path that skips ``close()`` leaves a
    ``psm_*`` file -- or, for the job server's arena, a ``repro_slab_*``
    file -- in ``/dev/shm`` that outlives the process (the attach
    paths deliberately bypass the resource tracker, see
    ``repro.native.shm``).  Auditing the directory at session end turns
    any such leak into a hard suite failure instead of silent host-memory
    growth -- exactly what the fault-injection tests must prove cannot
    happen.
    """
    before = _shm_segments()
    yield
    gc.collect()  # drop forgotten SharedArray views before inspecting
    leaked = sorted(_shm_segments() - before)
    if leaked:
        raise RuntimeError(
            f"test suite leaked {len(leaked)} shared-memory segment(s) "
            f"in {_SHM_DIR}: {leaked}"
        )


def _spill_orphans() -> set[str]:
    """Out-of-core spill state in the system temp dir: per-sort
    ``repro_stream_*`` workdirs and any stray ``repro_run_*`` run file
    (or its ``.tmp`` partial) written outside one."""
    return {
        p.name
        for pattern in ("repro_stream_*", "repro_run_*")
        for p in _TMP_DIR.glob(pattern)
    }


@pytest.fixture(scope="session", autouse=True)
def _spill_leak_audit():
    """Fail the suite if any test leaks external-sort spill state.

    ``external_sort`` and serve's :class:`StreamSession` must remove
    their ``repro_stream_*`` workdir on every path -- including
    mid-merge exceptions, injected ``spill.*`` faults, and aborted
    serve streams.  An orphaned run file is silent disk growth, so the
    audit turns it into a hard suite failure (the tmpdir counterpart of
    the ``/dev/shm`` audit above).
    """
    before = _spill_orphans()
    yield
    gc.collect()
    leaked = sorted(_spill_orphans() - before)
    if leaked:
        raise RuntimeError(
            f"test suite leaked {len(leaked)} spill file(s)/dir(s) "
            f"in {_TMP_DIR}: {leaked}"
        )


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point the persistent grid cache at a per-session temp directory so
    tests never read from or write to the user's real ~/.cache/repro."""
    import os

    path = tmp_path_factory.mktemp("repro-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run every test under the repro.verify runtime sanitizer",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "sanitize: run this test under the runtime sanitizer"
    )
    config.addinivalue_line(
        "markers",
        "no_sanitize: never sanitize this test (it corrupts state on "
        "purpose)",
    )
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection / resilience test (CI also runs the "
        "'-m chaos' subset as its own job)",
    )


def _wants_sanitizer(item) -> bool:
    if item.get_closest_marker("no_sanitize") is not None:
        return False
    if item.get_closest_marker("sanitize") is not None:
        return True
    return bool(item.config.getoption("--sanitize"))


def pytest_runtest_setup(item):
    if not _wants_sanitizer(item):
        return
    cm = use_sanitizer(Sanitizer())
    cm.__enter__()
    _ACTIVE[item.nodeid] = cm


def pytest_runtest_teardown(item, nextitem):
    cm = _ACTIVE.pop(item.nodeid, None)
    if cm is not None:
        cm.__exit__(None, None, None)


@pytest.fixture
def sanitizer():
    """A fresh sanitizer installed for the duration of the test; yields
    the :class:`~repro.verify.Sanitizer` so the test can assert on its
    ``checks`` counters and recorded ``violations``."""
    san = Sanitizer()
    with use_sanitizer(san):
        yield san
