"""FaultPlan determinism, caps, scripting and directive drawing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    SITES,
    FaultPlan,
    FaultStats,
    current_fault_plan,
    pool_directives,
    use_fault_plan,
)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(42, {"pool.worker.crash": 0.3, "shm.attach": 0.2})
        b = FaultPlan(42, {"pool.worker.crash": 0.3, "shm.attach": 0.2})
        draws_a = [a.should("pool.worker.crash") for _ in range(200)]
        draws_b = [b.should("pool.worker.crash") for _ in range(200)]
        assert draws_a == draws_b
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = FaultPlan(0, {"shm.attach": 0.5})
        b = FaultPlan(1, {"shm.attach": 0.5})
        assert [a.should("shm.attach") for _ in range(64)] != [
            b.should("shm.attach") for _ in range(64)
        ]

    def test_sites_independent_streams(self):
        """Probing one site never perturbs another's schedule."""
        a = FaultPlan(7, {"cache.corrupt": 0.4, "cache.enospc": 0.4})
        b = FaultPlan(7, {"cache.corrupt": 0.4, "cache.enospc": 0.4})
        seq_a = [a.should("cache.corrupt") for _ in range(50)]
        for _ in range(33):  # interleave probes of an unrelated site
            b.should("cache.enospc")
        seq_b = [b.should("cache.corrupt") for _ in range(50)]
        assert seq_a == seq_b

    @given(
        seed=st.integers(0, 2**31 - 1),
        site=st.sampled_from(sorted(SITES)),
        rate=st.floats(0.0, 1.0, allow_nan=False),
        n=st.integers(1, 128),
    )
    @settings(max_examples=60, deadline=None)
    def test_replay_property(self, seed, site, rate, n):
        """Any (seed, rate) plan replays the identical schedule twice."""
        a = FaultPlan(seed, {site: rate})
        b = FaultPlan(seed, {site: rate})
        assert [a.should(site) for _ in range(n)] == [
            b.should(site) for _ in range(n)
        ]
        assert a.events == b.events
        assert a.stats().injected == b.stats().injected


class TestKnobs:
    def test_zero_rate_never_fires(self):
        plan = FaultPlan(0, {})
        assert not any(plan.should("pool.worker.crash") for _ in range(100))
        assert plan.stats().total_injected == 0

    def test_rate_one_always_fires(self):
        plan = FaultPlan(0, {"cache.corrupt": 1.0})
        assert all(plan.should("cache.corrupt") for _ in range(20))

    def test_cap_bounds_injections(self):
        plan = FaultPlan(0, {"cache.corrupt": 1.0}, max_per_site=3)
        fired = sum(plan.should("cache.corrupt") for _ in range(50))
        assert fired == 3
        assert plan.probes("cache.corrupt") == 50

    def test_per_site_cap_mapping(self):
        plan = FaultPlan(
            0,
            {"cache.corrupt": 1.0, "cache.enospc": 1.0},
            max_per_site={"cache.corrupt": 1},
        )
        assert sum(plan.should("cache.corrupt") for _ in range(10)) == 1
        assert sum(plan.should("cache.enospc") for _ in range(10)) == 10

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(0, {"nope.bad": 0.5})
        plan = FaultPlan(0)
        with pytest.raises(ValueError, match="unknown fault site"):
            plan.should("nope.bad")

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan(0, {"shm.attach": 1.5})


class TestScripted:
    def test_fires_exactly_at_indices(self):
        plan = FaultPlan.scripted({"shm.create": [1, 3]})
        assert [plan.should("shm.create") for _ in range(5)] == [
            False, True, False, True, False,
        ]
        assert [(e.site, e.index) for e in plan.events] == [
            ("shm.create", 1), ("shm.create", 3),
        ]

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.scripted({"bogus": [0]})


class TestStats:
    def test_since_delta(self):
        plan = FaultPlan.scripted({"cache.corrupt": [0, 1]})
        plan.should("cache.corrupt")
        plan.note_recovered("cache.corrupt")
        before = plan.stats()
        plan.should("cache.corrupt")
        delta = plan.stats().since(before)
        assert delta.injected == {"cache.corrupt": 1}
        assert delta.recovered == {}

    def test_all_recovered(self):
        assert FaultStats({"a": 2}, {"a": 2}).all_recovered
        assert not FaultStats({"a": 2}, {"a": 1}).all_recovered
        assert FaultStats().all_recovered  # vacuously

    def test_kinds_only_fired(self):
        s = FaultStats({"a": 2, "b": 0}, {})
        assert s.kinds == ("a",)


class TestAmbientContext:
    def test_install_and_restore(self):
        assert current_fault_plan() is None
        plan = FaultPlan(0)
        with use_fault_plan(plan):
            assert current_fault_plan() is plan
            with use_fault_plan(None):
                assert current_fault_plan() is None
            assert current_fault_plan() is plan
        assert current_fault_plan() is None


class TestPoolDirectives:
    def test_no_plan_no_directives(self):
        directives, issued = pool_directives(
            None, 4, allow_process_faults=True
        )
        assert directives == [None] * 4
        assert issued == []

    def test_process_faults_gated(self):
        plan = FaultPlan(0, {"pool.worker.crash": 1.0})
        directives, issued = pool_directives(
            plan, 4, allow_process_faults=False
        )
        assert directives == [None] * 4
        assert issued == []
        assert plan.probes("pool.worker.crash") == 0  # never even probed

    def test_crash_directive_issued(self):
        plan = FaultPlan(0, {"pool.worker.crash": 1.0}, max_per_site=1)
        directives, issued = pool_directives(
            plan, 3, allow_process_faults=True
        )
        assert directives[0] == ("crash", None)
        assert directives[1:] == [None, None]
        assert issued == ["pool.worker.crash"]

    def test_attach_fault_allowed_without_process_faults(self):
        plan = FaultPlan.scripted({"shm.attach": [0]})
        directives, issued = pool_directives(
            plan, 2, allow_process_faults=False
        )
        assert directives[0] == ("attach-fail", None)
        assert issued == ["shm.attach"]

    def test_slow_carries_duration(self):
        plan = FaultPlan.scripted(
            {"pool.worker.slow": [0]}, slow_s=0.123
        )
        directives, _ = pool_directives(plan, 1, allow_process_faults=True)
        assert directives[0] == ("slow", 0.123)
