"""Negative tests for the supervised pool: every pool fault path must
recover (or fail cleanly) with output identical to ``np.sort``."""

from pathlib import Path

import numpy as np
import pytest

from repro.faults import FaultPlan, use_fault_plan
from repro.native.pool import PhaseError, WorkerPool
from repro.native.radix import parallel_radix_sort
from repro.native.sample import parallel_sample_sort

pytestmark = pytest.mark.chaos


def _keys(seed, n=20_000):
    return np.random.default_rng(seed).integers(
        0, 1 << 24, size=n, dtype=np.int64
    )


def _boom(_task):
    raise ZeroDivisionError("always fails")


class TestCrashRecovery:
    def test_sigkill_mid_phase_retried(self):
        """A worker SIGKILLed at task start is replaced and the phase
        re-run; the sorted output still equals np.sort."""
        keys = _keys(0)
        plan = FaultPlan.scripted({"pool.worker.crash": [0]})
        with use_fault_plan(plan):
            with WorkerPool(4, supervise=True, phase_timeout_s=10.0) as pool:
                out = parallel_radix_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))
        assert plan.injected["pool.worker.crash"] == 1
        assert plan.recovered["pool.worker.crash"] == 1
        assert pool.phase_failures == 1
        assert pool.fault_log[0]["action"] == "retry"

    def test_crash_during_sample_sort(self):
        """Sample sort's phases are double-buffered, so re-running one
        after a mid-phase kill is idempotent."""
        keys = _keys(1)
        plan = FaultPlan.scripted({"pool.worker.crash": [2]})
        with use_fault_plan(plan):
            with WorkerPool(4, supervise=True, phase_timeout_s=10.0) as pool:
                out = parallel_sample_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))
        assert plan.stats().all_recovered


class TestTimeoutAndShrink:
    def test_hang_hits_timeout_and_completes(self):
        keys = _keys(2)
        plan = FaultPlan.scripted({"pool.worker.hang": [0]}, hang_s=30.0)
        with use_fault_plan(plan):
            with WorkerPool(4, supervise=True, phase_timeout_s=0.5) as pool:
                out = parallel_radix_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))
        assert plan.recovered["pool.worker.hang"] == 1
        assert any("Timeout" in r["reason"] for r in pool.fault_log)

    def test_repeated_failures_shrink_pool(self):
        """Graceful degradation: after shrink_after failures the pool is
        rebuilt with half the workers and still finishes the sort."""
        keys = _keys(3)
        plan = FaultPlan.scripted({"pool.worker.hang": [0]}, hang_s=30.0)
        with use_fault_plan(plan):
            with WorkerPool(
                4,
                supervise=True,
                phase_timeout_s=0.5,
                shrink_after=1,
            ) as pool:
                out = parallel_radix_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))
        assert pool.n_workers == 2  # halved from 4
        assert any(r["action"] == "shrink" for r in pool.fault_log)

    def test_shrink_respects_min_workers(self):
        plan = FaultPlan.scripted(
            {"pool.worker.crash": [0, 4]}  # one crash on each of 2 attempts
        )
        keys = _keys(4)
        with use_fault_plan(plan):
            with WorkerPool(
                4,
                supervise=True,
                phase_timeout_s=10.0,
                shrink_after=1,
                min_workers=2,
            ) as pool:
                out = parallel_radix_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))
        assert pool.n_workers >= 2


class TestAttachFailure:
    def test_unsupervised_attach_failure_is_clean(self):
        """Without supervision an injected attach failure propagates as
        a plain OSError -- and leaks no shared-memory segment."""
        shm_dir = Path("/dev/shm")
        before = {p.name for p in shm_dir.glob("psm_*")}
        keys = _keys(5)
        plan = FaultPlan.scripted({"shm.attach": [0]})
        with use_fault_plan(plan):
            with WorkerPool(2) as pool:
                with pytest.raises(OSError, match="injected shm.attach"):
                    parallel_radix_sort(keys, pool=pool)
        after = {p.name for p in shm_dir.glob("psm_*")}
        assert after - before == set()

    def test_supervised_attach_failure_recovers(self):
        keys = _keys(6)
        plan = FaultPlan.scripted({"shm.attach": [1]})
        with use_fault_plan(plan):
            with WorkerPool(4, supervise=True, phase_timeout_s=10.0) as pool:
                out = parallel_sample_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))
        assert plan.recovered["shm.attach"] == 1


class TestStraggler:
    def test_slow_worker_absorbed_without_retry(self):
        """A slowdown is not a failure: the phase barrier simply waits."""
        keys = _keys(7)
        plan = FaultPlan.scripted({"pool.worker.slow": [0]}, slow_s=0.05)
        with use_fault_plan(plan):
            with WorkerPool(4, supervise=True, phase_timeout_s=10.0) as pool:
                out = parallel_radix_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))
        assert pool.phase_failures == 0
        assert plan.recovered["pool.worker.slow"] == 1


class TestSupervisionSemantics:
    def test_supervised_pool_without_plan_is_transparent(self):
        with WorkerPool(2, supervise=True, phase_timeout_s=5.0) as pool:
            assert pool.run_phase(abs, [-1, -2, -3]) == [1, 2, 3]
        assert pool.phase_failures == 0

    def test_persistent_failure_raises_phase_error(self):
        """A genuinely broken task exhausts the retries and surfaces as
        PhaseError carrying the original cause."""
        with WorkerPool(2, supervise=True, max_phase_retries=1) as pool:
            with pytest.raises(PhaseError) as info:
                pool.run_phase(_boom, [1, 2], name="doomed")
        assert info.value.phase == "doomed"
        assert info.value.attempts == 2
        assert isinstance(info.value.cause, ZeroDivisionError)

    def test_unsupervised_exception_propagates_unchanged(self):
        """Regression guard: the pre-existing error contract (the raw
        exception, not PhaseError) must survive the supervision rework."""
        with WorkerPool(2) as pool:
            with pytest.raises(ZeroDivisionError):
                pool.run_phase(_boom, [1])

    def test_final_attempt_never_draws_faults(self):
        """Convergence guarantee: with retries exhausted, the last
        attempt suppresses new fault directives, so even a rate-1.0
        crash plan cannot starve a supervised phase forever."""
        keys = _keys(8)
        plan = FaultPlan(0, {"pool.worker.crash": 1.0})  # no cap!
        with use_fault_plan(plan):
            with WorkerPool(
                2, supervise=True, phase_timeout_s=10.0, max_phase_retries=2
            ) as pool:
                out = parallel_radix_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))

    def test_inline_pool_never_crashes_parent(self):
        """A serial (inline) pool must never execute crash directives --
        they would SIGKILL the test process itself."""
        keys = _keys(9, n=64)
        plan = FaultPlan(0, {"pool.worker.crash": 1.0})
        with use_fault_plan(plan):
            with WorkerPool(1, supervise=True) as pool:
                out = parallel_radix_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))
        assert plan.injected.get("pool.worker.crash", 0) == 0
