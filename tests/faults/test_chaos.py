"""End-to-end chaos harness tests (`python -m repro chaos`)."""

import io
import re

import pytest

from repro.faults import FaultPlan
from repro.faults.chaos import MIN_FAULT_KINDS, SCENARIOS, run_chaos

pytestmark = pytest.mark.chaos


def _run(seed=0, **kwargs):
    out = io.StringIO()
    code = run_chaos(seed=seed, small=True, stream=out, **kwargs)
    return code, out.getvalue()


class TestChaosMatrix:
    def test_small_matrix_passes(self):
        code, text = _run()
        assert code == 0, text
        assert "all scenarios passed" in text
        # The acceptance bar: >= MIN_FAULT_KINDS distinct kinds injected
        # and a nonzero recovery count.
        m = re.search(
            r"(\d+) fault\(s\) across (\d+) kind\(s\) injected, (\d+) recovered",
            text,
        )
        assert m, text
        injected, kinds, recovered = map(int, m.groups())
        assert kinds >= MIN_FAULT_KINDS
        assert injected > 0
        assert recovered == injected

    def test_same_seed_replays_identical_totals(self):
        """The whole matrix is deterministic per seed: identical fault
        schedules, hence identical injection totals."""
        _, a = _run(seed=3)
        _, b = _run(seed=3)
        pat = r"\d+ fault\(s\) across \d+ kind\(s\) injected, \d+ recovered"
        assert re.search(pat, a).group() == re.search(pat, b).group()

    def test_scripted_scenarios_guarantee_core_kinds(self):
        """Coverage holds for ANY seed because the scripted scenarios pin
        one fault of each core kind; spot-check an arbitrary seed."""
        code, text = _run(seed=991)
        assert code == 0, text

    def test_soak_repeats_rounds(self):
        code, text = _run(soak=2)
        assert code == 0, text
        assert "soak round 1/2" in text
        assert "soak round 2/2" in text

    def test_bad_soak_rejected(self):
        with pytest.raises(ValueError):
            run_chaos(soak=0, stream=io.StringIO())

    def test_scenario_registry_is_nonempty(self):
        assert len(SCENARIOS) >= 6


class TestChaosCli:
    def test_module_dispatch(self, capsys):
        from repro.__main__ import main

        # argparse-level smoke only: --help exits 0 without running.
        with pytest.raises(SystemExit) as e:
            main(["chaos", "--help"])
        assert e.value.code == 0
        assert "fault" in capsys.readouterr().out.lower()


class TestPlanReplayEndToEnd:
    def test_plan_replay_identical_schedule_twice(self):
        """Satellite requirement: FaultPlan(seed) replays the identical
        schedule across two full probe sequences mimicking a sort."""
        def schedule(plan):
            fired = []
            for phase in range(6):
                for task in range(4):
                    for site in (
                        "pool.worker.crash",
                        "pool.worker.slow",
                        "shm.attach",
                    ):
                        if plan.should(site):
                            fired.append((phase, task, site))
            return fired

        rates = {
            "pool.worker.crash": 0.2,
            "pool.worker.slow": 0.3,
            "shm.attach": 0.1,
        }
        assert schedule(FaultPlan(17, rates)) == schedule(FaultPlan(17, rates))
