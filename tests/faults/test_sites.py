"""Per-site fault tests outside the pool: shared-memory allocation, the
grid cache's degrade paths, simulated channels, and the backend seam."""

import numpy as np
import pytest

from repro.faults import FaultPlan, use_fault_plan
from repro.native import shm
from repro.sim.engine import Simulator
from repro.sim.resources import Channel

pytestmark = pytest.mark.chaos


class TestShmAllocation:
    def test_create_failure_retried(self):
        plan = FaultPlan.scripted({"shm.create": [0]})
        with use_fault_plan(plan):
            sa = shm.allocate(128, retries=2, backoff_s=0.001)
            try:
                sa.array[:] = 1
            finally:
                sa.close()
        assert plan.injected["shm.create"] == 1
        assert plan.recovered["shm.create"] == 1

    def test_exhausted_retries_raise(self):
        plan = FaultPlan.scripted({"shm.create": [0, 1, 2]})
        with use_fault_plan(plan):
            with pytest.raises(OSError, match="injected shm.create"):
                shm.allocate(128, retries=2, backoff_s=0.001)
        assert plan.recovered.get("shm.create", 0) == 0

    def test_allocate_from_copies_through_retry(self):
        src = np.arange(64, dtype=np.int64)
        plan = FaultPlan.scripted({"shm.create": [0]})
        with use_fault_plan(plan):
            sa = shm.allocate_from(src, retries=1, backoff_s=0.001)
            try:
                assert np.array_equal(sa.array, src)
            finally:
                sa.close()

    def test_injected_attach_failure_consumed_once(self):
        src = np.arange(32, dtype=np.int64)
        with shm.SharedArray.from_array(src) as sa:
            shm.fail_next_attach()
            with pytest.raises(OSError, match="injected shm.attach"):
                shm.SharedArray.attach(sa.name, (32,), np.int64)
            # The armed failure is spent; the next attach succeeds.
            view = shm.SharedArray.attach(sa.name, (32,), np.int64)
            try:
                assert np.array_equal(view.array, src)
            finally:
                view.close()


class TestCacheDegrade:
    def _cache(self, tmp_path):
        from repro.core.gridcache import GridCache

        return GridCache(tmp_path / "cache")

    def test_injected_corruption_degrades_to_miss(self, tmp_path):
        cache = self._cache(tmp_path)
        key = {"cell": 1}
        assert cache.put("run", key, "payload")
        plan = FaultPlan.scripted({"cache.corrupt": [0]})
        with use_fault_plan(plan):
            assert cache.get("run", key) is None  # degraded, no raise
            # The on-disk entry was genuinely fine and must survive.
            assert cache.get("run", key) == "payload"
        assert cache.stats.errors == 1
        assert plan.recovered["cache.corrupt"] == 1

    def test_real_corruption_still_recomputes(self, tmp_path):
        """The degrade path the injection reuses: an actually-corrupt
        file is a miss (and removed), never an exception."""
        cache = self._cache(tmp_path)
        key = {"cell": 2}
        assert cache.put("run", key, "payload")
        path = cache.path_for("run", cache.key_digest("run", key))
        path.write_bytes(b"garbage" * 10)
        assert cache.get("run", key) is None
        assert not path.exists()  # truly-bad entries are reaped

    def test_injected_store_errors_drop_store(self, tmp_path):
        cache = self._cache(tmp_path)
        plan = FaultPlan.scripted(
            {"cache.enospc": [0], "cache.eacces": [0]}
        )
        with use_fault_plan(plan):
            assert not cache.put("run", {"cell": 3}, "x")  # ENOSPC
            assert not cache.put("run", {"cell": 3}, "x")  # EACCES
            assert cache.put("run", {"cell": 3}, "x")  # past the script
        assert cache.stats.errors == 2
        assert plan.stats().all_recovered


class TestChannelFaults:
    def _deliver_one(self, plan):
        """One put/get pair through a faulted channel; returns the
        (virtual arrival time, item) the consumer observed."""
        got = []
        with use_fault_plan(plan):
            sim = Simulator()
            ch = Channel(sim, capacity=4, name="c")

            def consumer():
                item = yield ch.get()
                got.append((sim.now, item))

            sim.process(consumer())
            ch.put("msg")
            sim.run()
        assert sim.idle
        return got[0]

    def test_delay_defers_delivery(self):
        plan = FaultPlan.scripted(
            {"channel.delay": [0]}, channel_delay_ns=500.0
        )
        at, item = self._deliver_one(plan)
        assert item == "msg"
        assert at == pytest.approx(500.0)
        assert plan.recovered["channel.delay"] == 1

    def test_drop_pays_retransmit_latency(self):
        plan = FaultPlan.scripted(
            {"channel.drop": [0]}, drop_retransmit_ns=2_000.0
        )
        at, item = self._deliver_one(plan)
        assert item == "msg"
        assert at == pytest.approx(2_000.0)
        assert plan.recovered["channel.drop"] == 1

    def test_no_fault_is_immediate(self):
        at, item = self._deliver_one(FaultPlan(0))
        assert (at, item) == (0.0, "msg")

    def test_sanitizer_counts_recoverable(self):
        from repro.verify import Sanitizer, use_sanitizer

        plan = FaultPlan.scripted({"channel.delay": [0]})
        san = Sanitizer()
        with use_sanitizer(san):
            self._deliver_one(plan)
        assert san.recoverable["channel.delay"] == 1
        assert not san.violations


class TestBackendFaultStats:
    def test_sim_result_carries_fault_delta(self):
        from repro.backend import get_backend
        from repro.backend.base import SortJob

        keys = np.random.default_rng(0).integers(
            0, 1 << 16, size=1024, dtype=np.int64
        )
        plan = FaultPlan.scripted({"channel.drop": [0]})
        with use_fault_plan(plan):
            res = get_backend("sim").run(
                SortJob(keys, algorithm="radix", model="mpi", n_procs=4)
            )
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.faults is not None
        assert res.faults.injected == {"channel.drop": 1}
        assert res.faults.all_recovered

    def test_no_plan_no_fault_stats(self):
        from repro.backend import get_backend
        from repro.backend.base import SortJob

        keys = np.arange(512, dtype=np.int64)[::-1].copy()
        res = get_backend("sim").run(SortJob(keys, n_procs=4))
        assert res.faults is None

    def test_native_backend_arms_supervision(self):
        from repro.backend import get_backend
        from repro.backend.base import SortJob

        keys = np.random.default_rng(1).integers(
            0, 1 << 20, size=20_000, dtype=np.int64
        )
        plan = FaultPlan.scripted({"pool.worker.crash": [0]})
        with use_fault_plan(plan):
            res = get_backend("native").run(
                SortJob(keys, algorithm="radix", n_procs=4)
            )
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.faults is not None
        assert res.faults.injected == {"pool.worker.crash": 1}
        assert res.faults.all_recovered


class TestFaultTrace:
    def test_faults_emit_on_fault_track(self):
        from repro.native.pool import WorkerPool
        from repro.native.radix import parallel_radix_sort
        from repro.trace import MemoryRecorder, PID_FAULTS, use_recorder

        keys = np.random.default_rng(2).integers(
            0, 1 << 20, size=20_000, dtype=np.int64
        )
        plan = FaultPlan.scripted({"pool.worker.crash": [0]})
        rec = MemoryRecorder()
        with use_recorder(rec), use_fault_plan(plan):
            with WorkerPool(4, supervise=True, phase_timeout_s=10.0) as pool:
                parallel_radix_sort(keys, pool=pool)
        fault_events = [e for e in rec.events if e.pid == PID_FAULTS]
        cats = {e.cat for e in fault_events}
        assert "fault.pool" in cats  # the retry instant
        assert "fault.recovery" in cats  # the recovery span
