"""End-to-end server tests over real sockets: correctness, job lifecycle,
deadlines, backpressure, drain semantics, and the steady-state
zero-create/zero-attach contract asserted from the trace spans."""

from __future__ import annotations

import socket
import struct

import numpy as np
import pytest

from repro.serve import (
    ServeClient,
    ServeError,
    ServeRejected,
    server_in_thread,
)
from repro.serve.protocol import read_frame_sync


def _keys(seed: int, n: int = 50_000) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 1 << 40, size=n, dtype=np.int64
    )


class TestSorting:
    @pytest.mark.parametrize("algorithm", ["radix", "sample"])
    def test_sort_matches_numpy(self, client, algorithm):
        keys = _keys(1)
        out = client.sort(keys, algorithm)
        assert np.array_equal(out, np.sort(keys))

    def test_interleaved_jobs_keep_their_identities(self, client):
        batches = [_keys(seed, 5_000 + 1_000 * seed) for seed in range(5)]
        job_ids = [client.submit(k, "radix") for k in batches]
        assert len(set(job_ids)) == len(job_ids)
        for job_id, keys in zip(job_ids, batches):
            status = client.wait(job_id, timeout_s=60.0)
            assert status["status"] == "done"
            assert status["n_keys"] == len(keys)
            assert np.array_equal(client.result(job_id), np.sort(keys))

    def test_ping_and_stats(self, client):
        assert client.ping()
        stats = client.stats()
        assert stats["engine"]["n_workers"] == 2
        assert stats["queue_depth"] == 64


class TestLifecycle:
    def test_status_polling_reaches_done(self, client):
        job_id = client.submit(_keys(7), "radix")
        status = client.status(job_id)
        assert status["status"] in ("queued", "running", "done")
        final = client.wait(job_id, timeout_s=60.0)
        assert final["status"] == "done"
        assert final["wall_s"] is not None and final["wall_s"] > 0
        assert final["queue_wait_s"] is not None

    def test_unknown_job_is_structured(self, client):
        with pytest.raises(ServeError) as exc:
            client.status("j999999")
        assert exc.value.code == "unknown-job"

    def test_result_before_done_is_not_ready(self, client):
        job_id = client.submit(_keys(8, 200_000), "sample")
        try:
            client.result(job_id)
        except ServeError as err:
            assert err.code in ("not-ready",)
        finally:
            client.wait(job_id, timeout_s=60.0)

    def test_bad_algorithm_is_structured(self, client):
        with pytest.raises(ServeError) as exc:
            client.submit(_keys(9, 100), "bogosort")
        assert exc.value.code == "bad-algorithm"


class TestDeadline:
    def test_expired_at_dequeue_is_structured(self):
        with server_in_thread(n_workers=2, queue_depth=8) as server:
            with ServeClient(port=server.port) as client:
                # Occupy the engine so the deadline job waits in queue.
                blocker = client.submit(_keys(10, 700_000), "sample")
                job_id = client.submit(
                    _keys(11, 1_000), "radix", deadline_s=0.0
                )
                status = client.wait(job_id, timeout_s=60.0)
                assert status["status"] == "expired"
                assert status["error"] == "deadline"
                assert "deadline" in (status["message"] or "")
                with pytest.raises(ServeError) as exc:
                    client.result(job_id)
                assert exc.value.code == "deadline"
                # The blocking job itself is unharmed.
                assert client.wait(blocker, 60.0)["status"] == "done"


class TestBackpressure:
    def test_burst_gets_busy_with_retry_hint(self):
        with server_in_thread(n_workers=2, queue_depth=1) as server:
            with ServeClient(port=server.port) as client:
                rejected = None
                accepted = []
                for seed in range(6):
                    try:
                        accepted.append(
                            client.submit(_keys(seed, 300_000), "radix")
                        )
                    except ServeRejected as rej:
                        rejected = rej
                assert rejected is not None and rejected.code == "busy"
                assert rejected.retry_after_s is not None
                for job_id in accepted:
                    assert client.wait(job_id, 60.0)["status"] == "done"

    def test_too_large_job_is_refused(self):
        with server_in_thread(
            n_workers=2, queue_depth=4, data_slab_bytes=1 << 16
        ) as server:
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServeRejected) as exc:
                    client.submit(_keys(1, 100_000), "radix")
                assert exc.value.code == "too-large"
                # A job that fits still sorts.
                keys = _keys(2, 1_000)
                assert np.array_equal(
                    client.sort(keys, "radix"), np.sort(keys)
                )

    def test_oversized_radix_is_refused(self, client):
        with pytest.raises(ServeRejected) as exc:
            client.submit(_keys(3, 1_000), "radix", radix=24)
        assert exc.value.code == "bad-radix"


class TestDrain:
    def test_drain_completes_inflight_and_refuses_new(self):
        with server_in_thread(n_workers=2, queue_depth=8) as server:
            with ServeClient(port=server.port) as client:
                inflight = client.submit(_keys(20, 500_000), "sample")
                with ServeClient(port=server.port) as control:
                    reply = control.drain()
                    assert reply["drained"] is True
                # Drain returned only after the in-flight job finished.
                status = client.status(inflight)
                assert status["status"] == "done"
                assert np.array_equal(
                    client.result(inflight),
                    np.sort(_keys(20, 500_000)),
                )
                with pytest.raises(ServeRejected) as exc:
                    client.submit(_keys(21, 100), "radix")
                assert exc.value.code == "draining"


class TestSteadyState:
    def test_jobs_run_with_zero_creates_and_attaches(self, served, client):
        server, recorder = served
        before = len(recorder.by_cat("serve.job"))
        for seed in range(4):
            keys = _keys(seed + 30, 20_000)
            assert np.array_equal(client.sort(keys, "radix"), np.sort(keys))
            keys = _keys(seed + 60, 20_000)
            assert np.array_equal(client.sort(keys, "sample"), np.sort(keys))
        spans = recorder.by_cat("serve.job")[before:]
        assert len(spans) == 8
        for span in spans:
            assert span.args["shm_creates"] == 0, span.args
            assert span.args["shm_attaches"] == 0, span.args
            assert span.args["job_id"].startswith("j")
        stats = client.stats()["engine"]
        assert stats["steady_shm_creates"] == 0
        assert stats["steady_shm_attaches"] == 0

    def test_per_job_counters_reported_to_clients(self, client):
        job_id = client.submit(_keys(42, 10_000), "radix")
        status = client.wait(job_id, 60.0)
        assert status["shm_creates"] == 0
        assert status["shm_attaches"] == 0


class TestWireErrors:
    def test_bad_magic_gets_structured_reply_then_close(self, served):
        server, _ = served
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b"HTTP/1.1 GET /\r\n" + b"\x00" * 16)
            header, _ = read_frame_sync(sock)
            assert header["ok"] is False
            assert header["error"] == "bad-magic"
            assert sock.recv(1) == b""  # server hung up

    def test_announced_oversized_frame_is_refused(self, served):
        server, _ = served
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(struct.pack(">4sI", b"RPSV", (1 << 30)))
            header, _ = read_frame_sync(sock)
            assert header["ok"] is False
            assert header["error"] == "frame-too-large"
            assert sock.recv(1) == b""
