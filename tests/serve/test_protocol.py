"""Framing and codec unit tests: round trips plus every typed failure."""

from __future__ import annotations

import asyncio
import socket

import numpy as np
import pytest

from repro.serve.protocol import (
    _HEADER,
    MAGIC,
    MAX_FRAME,
    BadMagic,
    FrameTooLarge,
    FrameTruncated,
    ProtocolError,
    decode_keys,
    encode_keys,
    pack_frame,
    parse_header,
    read_frame,
    read_frame_sync,
    unpack_body,
    write_frame_sync,
)


def _unpack_frame(frame: bytes):
    body_len = parse_header(frame[: _HEADER.size])
    assert body_len == len(frame) - _HEADER.size
    return unpack_body(frame[_HEADER.size :])


class TestRoundTrip:
    def test_header_and_payload_survive(self):
        header = {"op": "submit", "n_keys": 3, "nested": {"a": [1, 2]}}
        payload = b"\x00\x01\x02payload"
        got_header, got_payload = _unpack_frame(pack_frame(header, payload))
        assert got_header == header
        assert got_payload == payload

    def test_empty_payload(self):
        got_header, got_payload = _unpack_frame(pack_frame({"op": "ping"}))
        assert got_header == {"op": "ping"}
        assert got_payload == b""

    def test_keys_codec_round_trip(self):
        keys = np.array([5, -3, 1 << 40, 0], dtype=np.int64)
        fields, payload = encode_keys(keys)
        assert fields["n_keys"] == 4
        back = decode_keys(fields, payload)
        assert back.dtype == keys.dtype
        assert np.array_equal(back, keys)

    def test_decoded_keys_are_writable(self):
        keys = np.arange(8, dtype=np.int64)
        fields, payload = encode_keys(keys)
        back = decode_keys(fields, payload)
        back.sort()  # frombuffer alone would be read-only

    def test_sync_socket_round_trip(self):
        a, b = socket.socketpair()
        try:
            keys = np.arange(100, dtype=np.int64)
            fields, payload = encode_keys(keys)
            write_frame_sync(a, {"op": "submit", **fields}, payload)
            header, got = read_frame_sync(b)
            assert header["op"] == "submit"
            assert np.array_equal(decode_keys(header, got), keys)
        finally:
            a.close()
            b.close()


class TestOversized:
    def test_pack_refuses_over_cap(self):
        with pytest.raises(FrameTooLarge):
            pack_frame({"op": "submit"}, b"x" * 128, max_frame=64)

    def test_parse_header_refuses_announced_giant(self):
        raw = _HEADER.pack(MAGIC, MAX_FRAME + 1)
        with pytest.raises(FrameTooLarge):
            parse_header(raw)

    def test_cap_is_per_transport(self):
        frame = pack_frame({"op": "x"}, b"y" * 100)
        with pytest.raises(FrameTooLarge):
            parse_header(frame[: _HEADER.size], max_frame=32)


class TestTruncatedAndBadMagic:
    def test_bad_magic(self):
        raw = _HEADER.pack(b"HTTP", 10)
        with pytest.raises(BadMagic):
            parse_header(raw)

    def test_body_shorter_than_jlen(self):
        with pytest.raises(FrameTruncated):
            unpack_body(b"\x00")

    def test_body_shorter_than_declared_json(self):
        frame = pack_frame({"op": "ping"})
        body = frame[_HEADER.size :]
        with pytest.raises(FrameTruncated):
            unpack_body(body[:-3])

    def test_sync_read_of_closed_stream_mid_frame(self):
        a, b = socket.socketpair()
        frame = pack_frame({"op": "ping"})
        a.sendall(frame[: len(frame) - 2])
        a.close()
        try:
            with pytest.raises(FrameTruncated):
                read_frame_sync(b)
        finally:
            b.close()

    def test_non_object_header_rejected(self):
        import json
        import struct

        jbytes = json.dumps([1, 2]).encode()
        body = struct.pack(">I", len(jbytes)) + jbytes
        with pytest.raises(ProtocolError):
            unpack_body(body)

    def test_key_length_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            decode_keys({"dtype": "<i8", "n_keys": 4}, b"\x00" * 31)


class TestAsyncTransport:
    def _drain(self, coro):
        return asyncio.run(coro)

    def test_async_round_trip(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(pack_frame({"op": "status", "job_id": "j1"}))
            reader.feed_eof()
            return await read_frame(reader)

        header, payload = self._drain(go())
        assert header == {"op": "status", "job_id": "j1"}
        assert payload == b""

    def test_clean_close_between_frames_is_eof(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(EOFError):
            self._drain(go())

    def test_close_mid_frame_is_truncated(self):
        async def go():
            reader = asyncio.StreamReader()
            frame = pack_frame({"op": "ping"})
            reader.feed_data(frame[: len(frame) - 1])
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(FrameTruncated):
            self._drain(go())
