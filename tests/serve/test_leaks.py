"""Shared-memory hygiene: the server must leave /dev/shm exactly as it
found it on every exit path -- clean shutdown, client-visible failures,
and exceptions raised straight through ``server_in_thread``.  (The
session-wide ``_shm_leak_audit`` fixture also covers the ``repro_*``
arena prefix; these tests pin the contract per-path and fail close to
the cause.)"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.serve import ServeClient, ServeError, server_in_thread

_SHM_DIR = Path("/dev/shm")


def _segments() -> set[str]:
    if not _SHM_DIR.is_dir():
        return set()
    return {
        p.name
        for pattern in ("psm_*", "repro_*")
        for p in _SHM_DIR.glob(pattern)
    }


def test_clean_shutdown_leaves_no_segments():
    before = _segments()
    with server_in_thread(n_workers=2, queue_depth=4) as server:
        with ServeClient(port=server.port) as client:
            keys = np.random.default_rng(0).integers(
                0, 1 << 30, size=20_000, dtype=np.int64
            )
            assert np.array_equal(client.sort(keys, "radix"), np.sort(keys))
        # Slabs exist while the server lives.
        assert any(n.startswith("repro_slab") for n in _segments() - before)
    assert _segments() == before


def test_exception_through_context_still_unlinks():
    before = _segments()
    with pytest.raises(RuntimeError, match="boom"):
        with server_in_thread(n_workers=2, queue_depth=4) as server:
            with ServeClient(port=server.port) as client:
                client.ping()
            raise RuntimeError("boom")
    assert _segments() == before


def test_failed_jobs_do_not_leak():
    before = _segments()
    with server_in_thread(n_workers=2, queue_depth=4) as server:
        with ServeClient(port=server.port) as client:
            rng = np.random.default_rng(1)
            for _ in range(3):
                with pytest.raises(ServeError):
                    client.submit(
                        rng.integers(0, 10, size=100, dtype=np.int64),
                        "bogosort",
                    )
            keys = rng.integers(0, 1 << 30, size=5_000, dtype=np.int64)
            assert np.array_equal(client.sort(keys, "sample"), np.sort(keys))
    assert _segments() == before
