"""In-process regressions for the serve chaos scenario and per-job fault
attribution (the full scenario also runs via ``python -m repro chaos``)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.faults.chaos import run_chaos
from repro.serve import ServeClient, server_in_thread


@pytest.mark.chaos
def test_chaos_scenario_serve_traffic_passes():
    stream = io.StringIO()
    code = run_chaos(seed=0, small=True, scenario="serve-traffic", stream=stream)
    assert code == 0, stream.getvalue()
    out = stream.getvalue()
    assert "serve-traffic" in out
    assert "busy rejection" in out


@pytest.mark.chaos
def test_chaos_unknown_scenario_is_reported():
    stream = io.StringIO()
    assert run_chaos(scenario="no-such-thing", stream=stream) == 2
    assert "serve-traffic" in stream.getvalue()  # listed among choices


@pytest.mark.chaos
def test_faults_attributed_to_the_job_that_hit_them():
    """A scripted slowdown fires during the first job only; its FaultStats
    delta must land on that job's record and not leak onto the second."""
    plan = FaultPlan.scripted({"pool.worker.slow": [0]}, seed=3, slow_s=0.01)
    rng = np.random.default_rng(5)
    with server_in_thread(
        n_workers=2, queue_depth=8, fault_plan=plan
    ) as server:
        with ServeClient(port=server.port) as client:
            keys_a = rng.integers(0, 1 << 24, size=30_000, dtype=np.int64)
            keys_b = rng.integers(0, 1 << 24, size=30_000, dtype=np.int64)
            job_a = client.submit(keys_a, "radix")
            status_a = client.wait(job_a, timeout_s=60.0)
            job_b = client.submit(keys_b, "radix")
            status_b = client.wait(job_b, timeout_s=60.0)
            assert np.array_equal(client.result(job_a), np.sort(keys_a))
            assert np.array_equal(client.result(job_b), np.sort(keys_b))
    assert status_a["status"] == status_b["status"] == "done"
    assert status_a["faults"]["injected"].get("pool.worker.slow") == 1
    assert status_b["faults"]["injected"] == {}
    assert plan.stats().all_recovered


@pytest.mark.chaos
def test_server_survives_scripted_worker_crash():
    """A pinned crash mid-job: the job still completes correctly and the
    per-job record shows the crash was absorbed (attaches > 0 is expected
    -- the replacement worker's cache is cold)."""
    plan = FaultPlan.scripted({"pool.worker.crash": [1]}, seed=7)
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 1 << 24, size=50_000, dtype=np.int64)
    with server_in_thread(
        n_workers=2, queue_depth=4, fault_plan=plan, phase_timeout_s=10.0
    ) as server:
        with ServeClient(port=server.port) as client:
            out = client.sort(keys, "sample", timeout_s=60.0)
            assert np.array_equal(out, np.sort(keys))
            follow_up = rng.integers(0, 1 << 24, size=10_000, dtype=np.int64)
            assert np.array_equal(
                client.sort(follow_up, "radix"), np.sort(follow_up)
            )
    assert plan.stats().injected.get("pool.worker.crash") == 1
    assert plan.stats().all_recovered
