"""The serve streaming job class: sessions whose lifetime spans many
frames and pool phases -- open/push/close/status/fetch/abort, the frame
cap on pushes and fetches, admission limits, and the structured
``FrameTooLarge`` cap report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    ServeClient,
    ServeError,
    server_in_thread,
)


def _keys(seed: int, n: int = 120_000) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 1 << 40, size=n, dtype=np.int64
    )


class TestLifecycle:
    def test_stream_sort_matches_numpy(self, client):
        keys = _keys(1)
        out = client.stream_sort(keys, chunk_keys=20_000, fan_in=3)
        assert np.array_equal(out, np.sort(keys))

    def test_explicit_lifecycle_with_progress(self, client):
        keys = _keys(2, 90_000)
        stream_id = client.stream_open("<i8", chunk_keys=20_000, fan_in=2)
        client.stream_push(stream_id, keys[:50_000])
        status = client.stream_status(stream_id)
        assert status["phase"] == "ingest"
        assert status["keys_ingested"] == 50_000
        assert status["runs"] >= 2  # full chunks already spilled
        client.stream_push(stream_id, keys[50_000:])
        client.stream_close(stream_id)
        final = client.stream_wait(stream_id, timeout_s=120.0)
        assert final["phase"] == "done"
        assert final["keys_ingested"] == len(keys)
        assert final["keys_merged"] == len(keys)
        assert final["runs"] == 5  # 4 full chunks + the close-time drain
        assert final["merge_passes"] >= 1
        assert final["bytes_spilled"] > 0
        blocks = []
        while True:
            block = client.stream_fetch(stream_id, max_keys=30_000)
            if block is None:
                break
            assert len(block) <= 30_000
            blocks.append(block)
        assert np.array_equal(np.concatenate(blocks), np.sort(keys))
        # EOF popped the session server-side.
        with pytest.raises(ServeError, match="unknown-stream"):
            client.stream_status(stream_id)

    def test_uint32_stream(self, client):
        keys = np.random.default_rng(3).integers(
            0, 1 << 32, size=60_000, dtype=np.uint32
        )
        out = client.stream_sort(keys, chunk_keys=16_000)
        assert out.dtype == np.dtype("<u4")
        assert np.array_equal(out, np.sort(keys))

    def test_empty_stream(self, client):
        out = client.stream_sort(np.empty(0, dtype=np.int64))
        assert len(out) == 0

    def test_regular_jobs_interleave_with_streams(self, client):
        keys = _keys(4, 60_000)
        stream_id = client.stream_open("<i8", chunk_keys=16_000)
        client.stream_push(stream_id, keys)
        small = _keys(5, 10_000)
        assert np.array_equal(client.sort(small, "radix"), np.sort(small))
        client.stream_close(stream_id)
        assert client.stream_wait(stream_id)["phase"] == "done"
        blocks = []
        while (block := client.stream_fetch(stream_id)) is not None:
            blocks.append(block)
        assert np.array_equal(np.concatenate(blocks), np.sort(keys))


class TestFrameCap:
    def test_push_is_sliced_under_a_small_cap(self):
        """A client with a tiny frame budget must still stream any size
        through, and the server must reassemble the exact key set."""
        with server_in_thread(
            n_workers=2, queue_depth=8, max_frame=1 << 20
        ) as server:
            with ServeClient(port=server.port, max_frame=1 << 20) as client:
                keys = _keys(6, 500_000)  # 4 MB >> the 1 MiB cap
                assert client._push_frame_keys(8) < len(keys)
                out = client.stream_sort(keys, chunk_keys=120_000)
                assert np.array_equal(out, np.sort(keys))

    def test_fetch_blocks_respect_the_cap(self):
        with server_in_thread(
            n_workers=2, queue_depth=8, max_frame=1 << 20
        ) as server:
            with ServeClient(port=server.port, max_frame=1 << 20) as client:
                keys = _keys(7, 400_000)
                stream_id = client.stream_open("<i8", chunk_keys=100_000)
                client.stream_push(stream_id, keys)
                client.stream_close(stream_id)
                client.stream_wait(stream_id)
                blocks = []
                while (block := client.stream_fetch(stream_id)) is not None:
                    assert block.nbytes < (1 << 20)
                    blocks.append(block)
                assert np.array_equal(
                    np.concatenate(blocks), np.sort(keys)
                )

    def test_frame_too_large_reports_the_cap(self):
        """Satellite fix: an oversized frame is rejected with the
        configured cap in the structured payload, so the client can tell
        the limit from corruption."""
        cap = 1 << 20
        with server_in_thread(
            n_workers=2, queue_depth=8, max_frame=cap
        ) as server:
            # The client believes in a bigger cap, so the server rejects.
            with ServeClient(port=server.port, max_frame=64 << 20) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.sort(_keys(8, 300_000), "radix")
                assert excinfo.value.code == "frame-too-large"
                assert excinfo.value.reply.get("cap") == cap

    def test_configured_cap_is_reported_in_stats(self):
        with server_in_thread(
            n_workers=2, queue_depth=8, max_frame=2 << 20
        ) as server:
            with ServeClient(port=server.port) as client:
                stats = client.stats()
                assert stats["max_frame"] == 2 << 20
                assert stats["streams"]["max"] >= 1


class TestAdmission:
    def test_max_streams_limit(self):
        with server_in_thread(
            n_workers=2, queue_depth=8, max_streams=1
        ) as server:
            with ServeClient(port=server.port) as client:
                first = client.stream_open("<i8")
                from repro.serve import ServeRejected

                with pytest.raises(ServeRejected) as excinfo:
                    client.stream_open("<i8")
                assert excinfo.value.code == "busy"
                assert excinfo.value.retry_after_s is not None
                client.stream_abort(first)
                # The slot frees up once the first stream is gone.
                second = client.stream_open("<i8")
                client.stream_abort(second)

    def test_bad_dtype_rejected(self, client):
        with pytest.raises(ServeError, match="bad-dtype"):
            client._call({"op": "stream-open", "dtype": "<f8"})

    def test_unknown_stream_ops(self, client):
        for op in ("stream-push", "stream-close", "stream-status",
                   "stream-fetch", "stream-abort"):
            with pytest.raises(ServeError, match="unknown-stream"):
                client._call({"op": op, "stream_id": "nope"})

    def test_push_after_close_is_bad_phase(self, client):
        stream_id = client.stream_open("<i8", chunk_keys=10_000)
        client.stream_push(stream_id, _keys(9, 5_000))
        client.stream_close(stream_id)
        with pytest.raises(ServeError, match="bad-phase"):
            client.stream_push(stream_id, _keys(10, 100))
        client.stream_wait(stream_id)
        client.stream_abort(stream_id)

    def test_fetch_before_done_is_not_ready(self, client):
        stream_id = client.stream_open("<i8", chunk_keys=10_000)
        client.stream_push(stream_id, _keys(11, 2_000))
        with pytest.raises(ServeError, match="not-ready"):
            client.stream_fetch(stream_id)
        client.stream_abort(stream_id)

    def test_abort_mid_ingest_cleans_up(self, client):
        stream_id = client.stream_open("<i8", chunk_keys=10_000)
        client.stream_push(stream_id, _keys(12, 25_000))
        reply = client.stream_abort(stream_id)
        assert reply["aborted"]
        with pytest.raises(ServeError, match="unknown-stream"):
            client.stream_status(stream_id)
