"""Arena slab allocator: leasing, exhaustion, and the no-create contract."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.native import shm
from repro.serve.arena import (
    SLAB_PREFIX,
    Arena,
    ArenaExhausted,
    JobTooLarge,
)


def _slab_files() -> set[str]:
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return set()
    return {p.name for p in shm_dir.glob(f"{SLAB_PREFIX}_*")}


class TestLeasing:
    def test_smallest_fit_prefers_meta_slabs(self):
        with Arena(data_bytes=1 << 20, meta_bytes=1 << 10) as arena:
            small = arena.lease(512)
            assert small.nbytes == 1 << 10
            big = arena.lease(1 << 16)
            assert big.nbytes == 1 << 20
            arena.release(small)
            arena.release(big)
            assert arena.in_use() == 0

    def test_exhaustion_is_typed(self):
        with Arena(data_bytes=1 << 16, n_data=2, meta_bytes=1 << 10) as arena:
            held = [arena.lease(1 << 16) for _ in range(2)]
            with pytest.raises(ArenaExhausted):
                arena.lease(1 << 16)
            for slab in held:
                arena.release(slab)
            assert arena.lease(1 << 16) is not None

    def test_job_too_large_is_typed(self):
        with Arena(data_bytes=1 << 16, meta_bytes=1 << 10) as arena:
            with pytest.raises(JobTooLarge):
                arena.lease((1 << 16) + 1)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Arena(n_data=1)
        with pytest.raises(ValueError):
            Arena(n_meta=2)


class TestBuffers:
    def test_views_alias_slab_memory_and_release(self):
        with Arena(data_bytes=1 << 16, meta_bytes=1 << 12) as arena:
            bufs = arena.buffers()
            src = np.arange(100, dtype=np.int64)
            view = bufs.from_array(src)
            assert np.array_equal(view.array, src)
            assert view.name.startswith(SLAB_PREFIX)
            other = bufs.empty((4, 8), np.int64)
            other.array[...] = 7
            assert arena.in_use() == 2
            bufs.release_all()
            assert arena.in_use() == 0
            bufs.release_all()  # idempotent

    def test_buffers_never_create_segments(self):
        with Arena(data_bytes=1 << 16, meta_bytes=1 << 12) as arena:
            before = shm.create_count()
            bufs = arena.buffers()
            for _ in range(10):
                view = bufs.from_array(np.arange(64, dtype=np.int64))
                view.array.sort()
                bufs.release_all()
            assert shm.create_count() == before

    def test_creation_cost_is_slab_count(self):
        before = shm.create_count()
        with Arena(data_bytes=1 << 16, n_data=2, meta_bytes=1 << 12, n_meta=3):
            assert shm.create_count() - before == 5


class TestLifecycle:
    def test_close_unlinks_every_slab(self):
        arena = Arena(data_bytes=1 << 16, meta_bytes=1 << 12)
        names = set(arena.slab_names)
        assert names <= _slab_files()
        arena.close()
        assert not (names & _slab_files())
        arena.close()  # idempotent

    def test_construction_failure_leaves_nothing(self, monkeypatch):
        import repro.serve.arena as arena_mod

        calls = {"n": 0}
        real_allocate = arena_mod.allocate

        def failing_allocate(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 3:
                raise OSError("injected construction failure")
            return real_allocate(*args, **kwargs)

        monkeypatch.setattr(arena_mod, "allocate", failing_allocate)
        before = _slab_files()
        with pytest.raises(OSError):
            Arena(data_bytes=1 << 16, meta_bytes=1 << 12)
        assert _slab_files() == before

    def test_lease_after_close_rejected(self):
        arena = Arena(data_bytes=1 << 16, meta_bytes=1 << 12)
        arena.close()
        with pytest.raises(RuntimeError):
            arena.lease(16)
