"""Shared fixtures for the job-server tests.

The module-scoped ``served`` fixture starts one real server (2 workers,
a deep queue, a memory trace recorder) per test module and tears it down
-- pool, arena and all -- afterwards; individual tests open their own
:class:`~repro.serve.ServeClient` connections against it.  Tests that
need special server parameters (tiny queues, fault plans, deadlines)
start their own short-lived server instead.
"""

from __future__ import annotations

import pytest

from repro.serve import ServeClient, server_in_thread
from repro.trace import MemoryRecorder


@pytest.fixture(scope="module")
def served():
    """(server, recorder): one live server shared across a module."""
    recorder = MemoryRecorder()
    with server_in_thread(
        n_workers=2, queue_depth=64, recorder=recorder
    ) as server:
        yield server, recorder


@pytest.fixture()
def client(served):
    server, _ = served
    with ServeClient(port=server.port) as c:
        yield c
