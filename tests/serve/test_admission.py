"""Admission-control verdicts and the retry_after_s backpressure hint."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.admission import AdmissionController


def make(queue_depth=4, max_job_bytes=8 << 20, meta_slab_bytes=4 << 20,
         n_workers=4):
    return AdmissionController(
        queue_depth=queue_depth,
        max_job_bytes=max_job_bytes,
        meta_slab_bytes=meta_slab_bytes,
        n_workers=n_workers,
    )


I64 = np.dtype(np.int64)


class TestVerdicts:
    def test_admit_counts(self):
        ctrl = make()
        assert ctrl.check(1000, I64, None, queue_len=0, draining=False) is None
        assert ctrl.stats.accepted == 1

    def test_busy_at_capacity_with_hint(self):
        ctrl = make(queue_depth=2)
        verdict = ctrl.check(1000, I64, None, queue_len=2, draining=False)
        assert verdict is not None and verdict.code == "busy"
        assert verdict.retry_after_s is not None and verdict.retry_after_s > 0
        assert verdict.to_header()["error"] == "busy"
        assert "retry_after_s" in verdict.to_header()
        assert ctrl.stats.rejected == {"busy": 1}

    def test_below_capacity_admits(self):
        ctrl = make(queue_depth=2)
        assert ctrl.check(1000, I64, None, queue_len=1, draining=False) is None

    def test_too_large(self):
        ctrl = make(max_job_bytes=1 << 10)
        verdict = ctrl.check(1000, I64, None, queue_len=0, draining=False)
        assert verdict is not None and verdict.code == "too-large"
        assert verdict.retry_after_s is None  # not a load problem

    def test_bad_radix(self):
        ctrl = make(n_workers=4, meta_slab_bytes=1 << 12)
        verdict = ctrl.check(100, I64, 16, queue_len=0, draining=False)
        assert verdict is not None and verdict.code == "bad-radix"
        assert ctrl.check(100, I64, 4, queue_len=0, draining=False) is None

    def test_draining_wins_over_everything(self):
        ctrl = make(queue_depth=1, max_job_bytes=1)
        verdict = ctrl.check(10**9, I64, 64, queue_len=5, draining=True)
        assert verdict is not None and verdict.code == "draining"


class TestRetryAfter:
    def test_floor_applies_before_any_job_ran(self):
        ctrl = make()
        assert ctrl.retry_after_s(1) >= ctrl.min_retry_after_s

    def test_hint_scales_with_queue_and_tracks_duration(self):
        ctrl = make()
        for _ in range(20):
            ctrl.note_job_duration(2.0)
        short = ctrl.retry_after_s(1)
        long = ctrl.retry_after_s(8)
        assert long > short
        assert long == pytest.approx(2.0 * 8 / 2, rel=0.05)

    def test_ewma_converges(self):
        ctrl = make()
        ctrl.note_job_duration(10.0)
        for _ in range(50):
            ctrl.note_job_duration(0.1)
        assert ctrl.retry_after_s(2) < 0.5
