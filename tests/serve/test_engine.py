"""SortEngine unit tests: warmup coverage and steady-state accounting.

The warmup race is timing-dependent in real pools (a fast worker can
drain every touch round before its slow-booting sibling pulls a single
task), so these tests script the pool's behavior instead: a stub pool
replays a fixed schedule of (slots, attaches) rounds and the tests pin
exactly when warmup is allowed to declare the engine warm.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.native.pool import PhaseTiming
from repro.serve.engine import MAX_WARMUP_ROUNDS, SortEngine


class ScriptedPool:
    """Stands in for WorkerPool during warmup: each run_phase call
    appends the next scripted round's timings."""

    def __init__(self, n_workers, rounds):
        self.n_workers = n_workers
        self.timings = []
        self.phase_failures = 0
        self._rounds = list(rounds)
        self.calls = 0

    def run_phase(self, fn, tasks, name=None):
        slots, attaches = (
            self._rounds.pop(0) if self._rounds else self._rounds_exhausted()
        )
        self.timings.append(
            PhaseTiming(
                name=name or "serve.warmup",
                begin=0.0,
                end=0.0,
                tasks=tuple((0.0, 0.0) for _ in slots),
                slots=tuple(slots),
                attaches=tuple(attaches),
            )
        )
        self.calls += 1
        return [len(t) for t in tasks]

    @staticmethod
    def _rounds_exhausted():
        return ((1, 2), (0, 0))  # fully covered, fully warm

    def close(self, force=False):
        pass


@pytest.fixture
def engine():
    eng = SortEngine(n_workers=1)  # real (inline) engine owns a real arena
    try:
        yield eng
    finally:
        eng.close()


def _scripted_engine(engine, rounds, n_workers=2):
    """Swap the engine's pool for a scripted one (the inline original is
    a plain in-process shim with nothing to tear down beyond close())."""
    engine.pool.close()
    engine.pool = ScriptedPool(n_workers, rounds)
    return engine


class TestWarmupCoverage:
    def test_zero_attach_round_alone_is_not_warm(self, engine):
        # Worker slot 2 boots slowly: rounds 1-2 run entirely on slot 1.
        # Round 2 reports zero fresh attaches -- the pre-fix exit
        # condition -- but slot 2 is still stone cold; warmup must keep
        # going until slot 2 participates AND a round is attach-free.
        _scripted_engine(engine, rounds=[
            ((1, 1, 1, 1), (5, 0, 0, 0)),   # slot 1 attaches everything
            ((1, 1, 1, 1), (0, 0, 0, 0)),   # zero attaches, slot 2 absent
            ((1, 2, 1, 2), (0, 5, 0, 0)),   # slot 2 finally joins, cold
            ((1, 2, 1, 2), (0, 0, 0, 0)),   # everyone warm
        ])
        assert engine.warmup() == 4
        assert engine.pool.calls == 4

    def test_covered_and_attach_free_round_ends_warmup(self, engine):
        _scripted_engine(engine, rounds=[
            ((1, 2, 1, 2), (5, 5, 0, 0)),
            ((1, 2, 1, 2), (0, 0, 0, 0)),
        ])
        assert engine.warmup() == 2

    def test_coverage_may_accumulate_across_rounds(self, engine):
        # Slots need not all appear in the *same* round -- only ever.
        _scripted_engine(engine, rounds=[
            ((1, 1, 1, 1), (5, 0, 0, 0)),
            ((2, 2, 2, 2), (5, 0, 0, 0)),
            ((1, 1, 1, 1), (0, 0, 0, 0)),   # covered by now, attach-free
        ])
        assert engine.warmup() == 3

    def test_warmup_gives_up_after_max_rounds(self, engine):
        # A worker that never shows up must not hang server startup.
        _scripted_engine(engine, rounds=[
            ((1, 1, 1, 1), (0, 0, 0, 0)) for _ in range(MAX_WARMUP_ROUNDS + 5)
        ])
        assert engine.warmup() == MAX_WARMUP_ROUNDS

    def test_real_inline_engine_warms_in_one_round(self):
        # The inline pool runs touch tasks in-process: slot coverage is
        # immediate and the second round is attach-free.
        with SortEngine(n_workers=1) as eng:
            rounds = eng.warmup()
            assert 1 <= rounds <= 2
            keys = np.random.default_rng(0).integers(0, 1 << 20, 5_000)
            out = eng.run("j0", keys.astype(np.int64), "radix")
            assert np.array_equal(out.sorted_keys, np.sort(keys))
            assert out.shm_creates == 0
            assert out.shm_attaches == 0


class TestKernelFlagOnEngine:
    """The serve arena must keep its zero-traffic steady state under
    every kernel the flag can select (the buffer shapes are unchanged
    by the blocked kernels, so slabs leased for the seed layout still
    fit)."""

    @pytest.mark.parametrize("flag", ["numpy", "naive", "numba"])
    def test_steady_state_under_kernel_flag(self, flag, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_KERNEL", flag)
        rng = np.random.default_rng(21)
        with SortEngine(n_workers=2) as eng:
            eng.warmup()
            for i, (alg, n) in enumerate(
                [("radix", 6_000), ("sample", 6_000), ("radix", 12_000)]
            ):
                keys = rng.integers(0, 1 << 20, n).astype(np.int64)
                out = eng.run(f"k{i}", keys, alg)
                assert np.array_equal(out.sorted_keys, np.sort(keys))
                assert out.shm_creates == 0
                assert out.shm_attaches == 0
            stats = eng.stats()
            assert stats["steady_shm_creates"] == 0
            assert stats["steady_shm_attaches"] == 0
            # numba without the package resolves to the numpy fallback.
            assert stats["kernel"] in ("numpy", "naive", "numba")
