"""Property-based testing at the serve seam.

Hypothesis drives random batches of concurrent jobs -- mixed sizes,
algorithms, dtypes-worth of value ranges, duplicate-heavy and adversarial
key patterns -- against one live server (module-scoped fixture: Hypothesis
forbids function-scoped fixtures under ``@given``, and one server across
all examples is also the semantics we want: state must not bleed between
jobs).  The properties:

- every job's result is exactly ``np.sort`` of *its own* keys, even when
  submitted interleaved (no cross-job buffer reuse bugs from the arena);
- per-job bookkeeping (n_keys, algorithm, shm counters) is attributed to
  the right job id;
- the server survives every batch: a later trivial sort still works.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import ServeClient

job_strategy = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=0, max_value=4_000),
        "algorithm": st.sampled_from(["radix", "sample"]),
        "lo": st.integers(min_value=-(1 << 30), max_value=0),
        "hi": st.integers(min_value=1, max_value=1 << 45),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "dup_heavy": st.booleans(),
    }
)


def _make_keys(spec: dict) -> np.ndarray:
    rng = np.random.default_rng(spec["seed"])
    # Radix is documented to take non-negative keys only; sample takes any.
    lo = 0 if spec["algorithm"] == "radix" else spec["lo"]
    if spec["dup_heavy"]:
        # A handful of distinct values: stresses counting/placement.
        pool = rng.integers(lo, spec["hi"], size=4, dtype=np.int64)
        return rng.choice(pool, size=spec["n"]).astype(np.int64)
    return rng.integers(lo, spec["hi"], size=spec["n"], dtype=np.int64)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(batch=st.lists(job_strategy, min_size=1, max_size=6))
def test_concurrent_batches_sort_and_attribute_correctly(served, batch):
    server, recorder = served
    with ServeClient(port=server.port) as client:
        seen_before = {e.args["job_id"] for e in recorder.by_cat("serve.job")}
        specs = []
        for spec in batch:
            keys = _make_keys(spec)
            job_id = client.submit(keys, spec["algorithm"])
            specs.append((job_id, spec, keys))
        # Wait in submission order; jobs complete in that order too (one
        # engine lane) but each wait is an independent server-side block.
        for job_id, spec, keys in specs:
            status = client.wait(job_id, timeout_s=120.0)
            assert status["status"] == "done", status
            assert status["job_id"] == job_id
            assert status["n_keys"] == len(keys)
            assert status["algorithm"] == spec["algorithm"]
            # Steady state holds under arbitrary traffic.
            assert status["shm_creates"] == 0
            assert status["shm_attaches"] == 0
            out = client.result(job_id)
            assert out.dtype == keys.dtype
            assert np.array_equal(out, np.sort(keys)), (
                f"job {job_id} ({spec}) returned wrong order"
            )
        # Each job produced exactly one serve.job span, tagged with its id.
        new_spans = [
            e
            for e in recorder.by_cat("serve.job")
            if e.args["job_id"] not in seen_before
        ]
        span_ids = sorted(e.args["job_id"] for e in new_spans)
        assert span_ids == sorted(j for j, _, _ in specs)
        for span in new_spans:
            spec_n = {j: len(k) for j, _, k in specs}
            assert span.args["n_keys"] == spec_n[span.args["job_id"]]


def test_invalid_keys_fail_structurally_not_fatally(served):
    """Radix rejects negative keys; the job must end 'failed' with the
    exception surfaced, and the server must keep serving afterwards."""
    server, _ = served
    with ServeClient(port=server.port) as client:
        bad = np.array([-5, 3, 1], dtype=np.int64)
        job_id = client.submit(bad, "radix")
        status = client.wait(job_id, timeout_s=60.0)
        assert status["status"] == "failed"
        assert status["error"] == "ValueError"
        assert "non-negative" in status["message"]
        good = np.arange(100, dtype=np.int64)[::-1].copy()
        assert np.array_equal(client.sort(good, "radix"), np.arange(100))


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=2_000),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_result_payload_round_trips_exactly(served, n, seed):
    server, _ = served
    rng = np.random.default_rng(seed)
    keys = rng.integers(-(1 << 62), 1 << 62, size=n, dtype=np.int64)
    with ServeClient(port=server.port) as client:
        out = client.sort(keys, "sample")
    expect = np.sort(keys)
    assert out.dtype == expect.dtype
    assert np.array_equal(out, expect)
