"""Structured-trace layer tests: recorders, ambient install, Chrome export."""

import json

import pytest

from repro.trace import (
    NULL_RECORDER,
    MemoryRecorder,
    NullRecorder,
    PID_NATIVE,
    PID_SIM,
    TraceEvent,
    current_recorder,
    to_chrome_trace,
    use_recorder,
    write_chrome_trace,
)


class TestRecorders:
    def test_null_by_default(self):
        rec = current_recorder()
        assert not rec.enabled
        rec.complete("x", "cat", 0.0, 1.0)  # silently dropped
        rec.instant("y", "cat", 0.0)
        rec.counter("z", "cat", 0.0, {"v": 1.0})

    def test_use_recorder_installs_and_restores(self):
        rec = MemoryRecorder()
        assert current_recorder() is NULL_RECORDER
        with use_recorder(rec):
            assert current_recorder() is rec
            with use_recorder(None):  # None keeps the current one
                assert current_recorder() is rec
        assert current_recorder() is NULL_RECORDER

    def test_use_recorder_restores_on_error(self):
        rec = MemoryRecorder()
        with pytest.raises(RuntimeError):
            with use_recorder(rec):
                raise RuntimeError("boom")
        assert current_recorder() is NULL_RECORDER

    def test_memory_recorder_collects(self):
        rec = MemoryRecorder()
        rec.complete("phase", "sim.phase", ts_us=1.0, dur_us=2.0, tid=3)
        rec.instant("msg", "sim.msg", ts_us=4.0)
        rec.counter("bytes", "model", ts_us=5.0, values={"b": 7.0})
        assert len(rec) == 3
        assert rec.by_cat("sim.msg") == [rec.events[1]]
        assert rec.by_name("phase")[0].dur_us == 2.0
        assert rec.events[0].end_us == 3.0

    def test_memory_recorder_cap_drops(self):
        rec = MemoryRecorder(max_events=2)
        for i in range(5):
            rec.instant(f"e{i}", "c", ts_us=float(i))
        assert len(rec) == 2
        assert rec.n_dropped == 3
        rec.clear()
        assert len(rec) == 0 and rec.n_dropped == 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MemoryRecorder(max_events=0)

    def test_verbose_flag(self):
        assert not MemoryRecorder().verbose
        assert MemoryRecorder(verbose=True).verbose
        assert not NullRecorder().enabled


class TestChromeExport:
    def _events(self):
        return [
            TraceEvent("span", "sim.phase", 10.0, 5.0, pid=PID_SIM, tid=1),
            TraceEvent("mark", "sim.msg", 12.0, ph="i", pid=PID_SIM, tid=2,
                       args={"bytes": 64}),
            TraceEvent("ctr", "native", 1.0, ph="C", pid=PID_NATIVE,
                       args={"v": 3.0}),
        ]

    def test_structure(self):
        doc = to_chrome_trace(self._events())
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        evs = doc["traceEvents"]
        meta = [e for e in evs if e["ph"] == "M"]
        # Both pids present -> both process_name metadata records.
        assert {m["pid"] for m in meta} == {PID_SIM, PID_NATIVE}
        span = next(e for e in evs if e["name"] == "span")
        assert span["ph"] == "X" and span["dur"] == 5.0 and span["ts"] == 10.0
        mark = next(e for e in evs if e["name"] == "mark")
        assert mark["ph"] == "i" and mark["s"] == "t" and mark["args"] == {"bytes": 64}
        ctr = next(e for e in evs if e["name"] == "ctr")
        assert ctr["ph"] == "C"

    def test_json_serializable_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), self._events())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 3 + 2  # events + 2 metadata

    def test_recorder_input_reports_drops(self):
        rec = MemoryRecorder(max_events=1)
        rec.instant("a", "c", 0.0)
        rec.instant("b", "c", 0.0)
        doc = to_chrome_trace(rec)
        assert doc["otherData"]["droppedEvents"] == 1

    def test_thread_names(self):
        doc = to_chrome_trace(
            self._events(), thread_names={(PID_SIM, 1): "proc 1"}
        )
        tn = [e for e in doc["traceEvents"]
              if e["ph"] == "M" and e["name"] == "thread_name"]
        assert tn and tn[0]["args"]["name"] == "proc 1"


class TestLayerIntegration:
    def test_simulated_run_emits_phases(self):
        import repro

        keys = repro.data.generate("gauss", 8 * 256, 8)
        rec = MemoryRecorder()
        repro.sort(keys, backend="sim", n_procs=8, trace=rec)
        phases = rec.by_cat("sim.phase")
        assert phases, "Team phases should be traced"
        assert rec.by_cat("model.exchange"), "model layer should mark exchanges"
        assert rec.by_cat("sim.barrier"), "barriers should be traced"
        # Timestamps are virtual-us and non-negative; spans have duration.
        assert all(e.ts_us >= 0 and e.dur_us > 0 for e in phases)
        # Every simulated processor appears as a track.
        assert {e.tid for e in phases} == set(range(8))

    def test_verbose_adds_messages_and_processes(self):
        import repro

        keys = repro.data.generate("gauss", 8 * 256, 8)
        quiet = MemoryRecorder()
        repro.sort(keys, backend="sim", model="mpi-new", n_procs=8, trace=quiet)
        assert not quiet.by_cat("sim.msg")

        verbose = MemoryRecorder(verbose=True)
        repro.sort(keys, backend="sim", model="mpi-new", n_procs=8, trace=verbose)
        assert verbose.by_cat("sim.msg"), "verbose traces carry message instants"
        assert verbose.by_cat("sim.process"), "verbose traces carry DES spans"

    def test_native_run_emits_pool_phases(self):
        import numpy as np

        import repro

        keys = np.random.default_rng(0).integers(
            0, 1 << 20, size=20_000, dtype=np.int64
        )
        rec = MemoryRecorder()
        repro.sort(keys, algorithm="sample", backend="native", n_procs=2,
                   trace=rec)
        assert rec.by_cat("native.sort")
        phase_names = {e.name for e in rec.by_cat("native.phase")}
        assert {"local-sort", "count", "scatter", "final-sort"} <= phase_names
        assert rec.by_cat("native.task")
