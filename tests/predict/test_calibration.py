"""Calibration artifact IO, resolution order, and a tiny end-to-end fit."""

import json

import pytest

from repro.core.experiment import ExperimentRunner, RunSpec
from repro.predict import (
    Calibration,
    calibration_grid,
    fit_calibration,
    load_calibration,
)
from repro.predict.calibration import CALIBRATION_VERSION


def _artifact() -> Calibration:
    return Calibration(
        version=CALIBRATION_VERSION,
        factors={"radix/shmem": {"BUSY": 1.0, "LMEM": 1.0, "RMEM": 0.93, "SYNC": 1.0}},
        error={"radix/shmem": {"median_abs_rel": 0.004, "p95_abs_rel": 0.01, "cells": 2.0}},
        meta={"grid": "test"},
    )


class TestArtifactIO:
    def test_round_trip(self, tmp_path):
        cal = _artifact()
        path = cal.save(tmp_path / "cal.json")
        loaded = load_calibration(path)
        assert loaded == cal

    def test_version_mismatch_rejected(self, tmp_path):
        doc = _artifact().to_json()
        doc["version"] = CALIBRATION_VERSION + 1
        path = tmp_path / "cal.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="version"):
            load_calibration(path)

    def test_missing_explicit_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_calibration(tmp_path / "nope.json")

    def test_env_var_resolution(self, tmp_path, monkeypatch):
        path = _artifact().save(tmp_path / "env.json")
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        loaded = load_calibration()
        assert loaded is not None
        assert loaded.factors_for("radix", "shmem")["RMEM"] == pytest.approx(0.93)

    def test_accessors(self):
        cal = _artifact()
        assert cal.factors_for("radix", "shmem")["RMEM"] == pytest.approx(0.93)
        assert cal.factors_for("sample", "shmem") is None
        assert cal.error_band("radix", "shmem")["cells"] == 2.0
        assert cal.worst_median_error() == pytest.approx(0.004)


class TestGrid:
    def test_small_grid_covers_every_group(self):
        specs = calibration_grid(small=True)
        groups = {f"{s.algorithm}/{s.model}" for s in specs}
        assert len(groups) == 9  # 5 radix + 4 sample models

    def test_full_grid_is_superset(self):
        assert len(calibration_grid(small=False)) > len(
            calibration_grid(small=True)
        )


class TestFit:
    def test_tiny_fit_produces_bounded_factors(self):
        """End-to-end fit on two shmem cells: factors near 1, tight band
        (the closed form was built to track the DES closely)."""
        specs = [
            RunSpec(
                "radix", "shmem", 1 << 16, 16, 8,
                distribution=dist, max_actual=1 << 14,
            )
            for dist in ("random", "gauss")
        ]
        cal = fit_calibration(
            specs=specs, runner=ExperimentRunner(cache=False)
        )
        fs = cal.factors_for("radix", "shmem")
        assert fs is not None
        for c in ("BUSY", "LMEM", "RMEM", "SYNC"):
            assert 0.5 <= fs[c] <= 2.0
        band = cal.error_band("radix", "shmem")
        assert band["median_abs_rel"] <= 0.05
        assert cal.meta["n_cells"] == 2
