"""The registered ``predict`` backend: parity with the simulator,
structural invariants, and the ignored-field warnings at the seam."""

import warnings

import numpy as np
import pytest

from repro.backend import SortJob, get_backend
from repro.data import generate
from repro.predict import PredictedBackend
from repro.verify import Sanitizer, use_sanitizer
from repro.verify.differential import RADIX_MODELS, SAMPLE_MODELS

N, P = 16 * 128, 16

#: Uncalibrated tolerance on total time vs. the simulator.  CC-SAS
#: exchanges reuse the simulator's code paths exactly; the MPI/SHMEM
#: closed forms were fitted well under this band.
PARITY_RTOL = 0.10


@pytest.fixture(scope="module")
def keys():
    return generate("gauss", N, P, radix=8)


def _cases():
    for model in RADIX_MODELS:
        yield "radix", model
    for model in SAMPLE_MODELS:
        yield "sample", model


class TestParity:
    @pytest.mark.parametrize("algorithm,model", list(_cases()))
    def test_predicted_time_matches_simulated(self, keys, algorithm, model):
        job = SortJob(keys=keys, algorithm=algorithm, model=model, n_procs=P)
        sim = get_backend("sim").run(job)
        pred = PredictedBackend(calibration=False).run(job)
        assert np.array_equal(pred.sorted_keys, sim.sorted_keys)
        assert pred.time_ns == pytest.approx(sim.time_ns, rel=PARITY_RTOL)

    def test_ccsas_reuses_simulated_exchange_exactly(self, keys):
        """CC-SAS has no closed-form stand-in: bit-identical reports."""
        job = SortJob(keys=keys, algorithm="radix", model="ccsas", n_procs=P)
        sim = get_backend("sim").run(job)
        pred = PredictedBackend(calibration=False).run(job)
        assert pred.time_ns == pytest.approx(sim.time_ns, rel=1e-9)


class TestStructure:
    def test_accounting_identity_holds(self, keys):
        """Regression: predicted reports satisfy the sanitizer's
        accounting identity (elapsed == BUSY+LMEM+RMEM+SYNC per proc)."""
        san = Sanitizer()
        with use_sanitizer(san):
            result = get_backend("predict").run(
                SortJob(keys=keys, algorithm="radix", model="mpi-new", n_procs=P)
            )
        assert san.checks["report.accounting-identity"] > 0
        assert result.time_ns > 0

    def test_identity_survives_calibration(self, keys):
        """Scaling outcome arrays by calibration factors must not break
        the per-processor accounting."""
        from repro.predict import Calibration

        cal = Calibration(
            version=1,
            factors={
                "radix/mpi-new": {
                    "BUSY": 1.1, "LMEM": 0.9, "RMEM": 1.2, "SYNC": 0.8,
                }
            },
            error={},
            meta={},
        )
        san = Sanitizer()
        with use_sanitizer(san):
            PredictedBackend(calibration=cal).run(
                SortJob(keys=keys, algorithm="radix", model="mpi-new", n_procs=P)
            )
        assert san.checks["report.accounting-identity"] > 0

    def test_report_shape_and_trace(self, keys):
        from repro.trace import MemoryRecorder

        rec = MemoryRecorder()
        result = PredictedBackend(calibration=False).run(
            SortJob(keys=keys, algorithm="sample", model="shmem", n_procs=P),
            recorder=rec,
        )
        assert result.backend == "predict"
        assert result.report.n_procs == P
        assert len(rec.events) > 0


class TestFamilyMode:
    def test_empty_keys_with_distribution(self):
        result = PredictedBackend(calibration=False).run(
            SortJob(
                keys=np.empty(0, dtype=np.int64),
                algorithm="radix",
                model="shmem",
                n_procs=16,
                n_labeled=1 << 22,
                distribution="gauss",
            )
        )
        assert result.time_ns > 0
        assert len(result.sorted_keys) == 0

    def test_empty_keys_without_distribution_rejected(self):
        with pytest.raises(ValueError, match="distribution"):
            PredictedBackend(calibration=False).run(
                SortJob(keys=np.empty(0, dtype=np.int64), algorithm="radix")
            )

    def test_paper_scale_is_fast(self):
        """256M x 64p predicts without materializing 256M keys."""
        import time

        t0 = time.perf_counter()
        result = PredictedBackend(calibration=False).run(
            SortJob(
                keys=np.empty(0, dtype=np.int64),
                algorithm="radix",
                model="shmem",
                n_procs=64,
                n_labeled=1 << 28,
                distribution="gauss",
            )
        )
        assert result.time_ns > 0
        assert time.perf_counter() - t0 < 30.0  # seconds of slack in CI


class TestInputValidation:
    def test_negative_keys_rejected(self):
        keys = np.array([-1, 2, 3, 4] * (N // 4), dtype=np.int64)
        with pytest.raises(ValueError, match="non-negative"):
            PredictedBackend(calibration=False).run(
                SortJob(keys=keys, algorithm="radix", n_procs=P)
            )

    def test_float_keys_transformed(self):
        # Floats now go through the order-preserving transform at the
        # seam; dtypes with no such mapping are still rejected.
        keys = np.linspace(0, 1, N)
        result = PredictedBackend(calibration=False).run(
            SortJob(keys=keys, algorithm="radix", n_procs=P)
        )
        assert np.array_equal(result.sorted_keys, np.sort(keys))
        with pytest.raises(TypeError, match="integer"):
            PredictedBackend(calibration=False).run(
                SortJob(keys=np.ones(N, dtype=complex), n_procs=P)
            )


class TestIgnoredFieldWarnings:
    def test_native_warns_on_sim_only_fields(self, keys):
        with pytest.warns(RuntimeWarning, match="model"):
            get_backend("native").run(
                SortJob(keys=keys[:64], algorithm="sample", model="ccsas")
            )

    def test_sim_warns_on_distribution(self, keys):
        with pytest.warns(RuntimeWarning, match="distribution"):
            get_backend("sim").run(
                SortJob(
                    keys=keys, algorithm="radix", n_procs=P,
                    distribution="gauss",
                )
            )

    def test_sim_silent_on_applicable_fields(self, keys):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            get_backend("sim").run(
                SortJob(keys=keys, algorithm="radix", model="ccsas", n_procs=P)
            )

    def test_predict_accepts_all_fields_silently(self, keys):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            PredictedBackend(calibration=False).run(
                SortJob(
                    keys=keys, algorithm="radix", model="shmem", n_procs=P,
                    key_bits=20,
                )
            )
