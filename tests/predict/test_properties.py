"""Hypothesis properties of the analytic predictor."""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.costs import DEFAULT_COSTS
from repro.predict import predict_outcome, sequential_time_ns, uniform_stats
from repro.sorts.radix import default_machine

MODELS = ["ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem"]


def _time(algorithm, model, n, p, radix):
    stats = uniform_stats(algorithm, n, p, radix)
    return predict_outcome(stats, model, machine=default_machine(p)).time_ns


class TestValidationProperties:
    @given(
        n=st.integers(-(1 << 20), 1 << 20),
        p=st.sampled_from([4, 16, 64]),
    )
    @settings(max_examples=40, deadline=None)
    def test_invalid_sizes_always_raise(self, n, p):
        if n > 0 and n % p == 0:
            assert uniform_stats("radix", n, p, 8).n == n
        else:
            with pytest.raises(ValueError):
                uniform_stats("radix", n, p, 8)

    @given(radix=st.integers(-4, 24))
    @settings(max_examples=30, deadline=None)
    def test_radix_range_enforced(self, radix):
        if 1 <= radix <= 16:
            uniform_stats("radix", 1 << 12, 16, radix)
        else:
            with pytest.raises(ValueError):
                uniform_stats("radix", 1 << 12, 16, radix)


class TestMonotonicity:
    @given(
        model=st.sampled_from(MODELS),
        algorithm=st.sampled_from(["radix", "sample"]),
        p=st.sampled_from([16, 64]),
        log_n=st.integers(14, 26),
    )
    @settings(max_examples=25, deadline=None)
    def test_time_nondecreasing_in_n(self, model, algorithm, p, log_n):
        """Doubling the keys never makes the predicted sort faster."""
        if algorithm == "sample" and model == "ccsas-new":
            model = "ccsas"
        radix = 8 if algorithm == "radix" else 11
        t1 = _time(algorithm, model, 1 << log_n, p, radix)
        t2 = _time(algorithm, model, 1 << (log_n + 1), p, radix)
        assert t2 >= t1 > 0


class TestSpeedupBounds:
    @given(
        model=st.sampled_from(MODELS),
        p=st.sampled_from([16, 32, 64]),
        log_n=st.integers(16, 28),
    )
    @settings(max_examples=25, deadline=None)
    def test_speedup_bounded_by_p_with_cache_margin(self, model, p, log_n):
        """Speedup stays within a constant factor of p.  The bound must
        leave room above p itself: the paper's (and this model's) large
        sorts go *superlinear* once per-processor partitions fit in cache
        while the uniprocessor baseline thrashes -- the existing headline
        test asserts speedup > 64 at p=64."""
        n = 1 << log_n
        seq = sequential_time_ns(n, 8, DEFAULT_COSTS)
        par = _time("radix", model, n, p, 8)
        speedup = seq / par
        assert 0 < speedup <= 4 * p

    def test_superlinear_region_allowed(self):
        """The bound above must not be so tight it forbids the paper's
        superlinear headline claim."""
        n = 1 << 30
        speedup = sequential_time_ns(n, 8, DEFAULT_COSTS) / _time(
            "radix", "shmem", n, 64, 8
        )
        assert speedup > 64  # superlinear, and well under the 4p cap
        assert speedup <= 4 * 64


class TestDeprecatedShims:
    def test_predict_time_warns_and_matches(self):
        from repro.core.predict import predict_time

        with pytest.warns(DeprecationWarning):
            t_old = predict_time("radix", "shmem", 1 << 20, 16, 8)
        t_new = _time("radix", "shmem", 1 << 20, 16, 8)
        assert t_old == pytest.approx(t_new, rel=1e-12)

    def test_predict_speedup_warns_once(self):
        from repro.core.predict import predict_speedup

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            predict_speedup("radix", "shmem", 1 << 20, 16)
        deps = [w for w in caught if w.category is DeprecationWarning]
        assert len(deps) == 1  # the inner predict_time call is silenced

    def test_sequential_baseline_memoized(self):
        a = sequential_time_ns(1 << 22, 8, DEFAULT_COSTS)
        b = sequential_time_ns(1 << 22, 8, DEFAULT_COSTS)
        assert a == b
        info = sequential_time_ns.cache_info()
        assert info.hits >= 1
