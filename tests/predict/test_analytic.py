"""Workload statistics: closed-form, measured, and family-drawn."""

import numpy as np
import pytest

from repro.data import generate
from repro.predict import family_stats, measured_stats, uniform_stats
from repro.sorts.common import n_passes


class TestValidation:
    @pytest.mark.parametrize("algorithm", ["quick", "", "RADIX"])
    def test_unknown_algorithm(self, algorithm):
        with pytest.raises(ValueError, match="unknown algorithm"):
            uniform_stats(algorithm, 1 << 12, 16, 8)

    @pytest.mark.parametrize("n,p", [(0, 16), (100, 16), (-64, 4), (64, 0)])
    def test_bad_sizes(self, n, p):
        with pytest.raises(ValueError, match="positive multiple"):
            uniform_stats("radix", n, p, 8)

    @pytest.mark.parametrize("radix", [0, 17, -1])
    def test_bad_radix(self, radix):
        with pytest.raises(ValueError, match="radix"):
            uniform_stats("radix", 1 << 12, 16, radix)

    def test_measured_rejects_bad_labeled_size(self):
        keys = generate("gauss", 1 << 10, 4)
        with pytest.raises(ValueError, match="multiple of the actual"):
            measured_stats(keys, "radix", 4, 8, n_labeled=3000)


class TestUniformStats:
    def test_radix_shapes(self):
        n, p, r = 1 << 14, 16, 8
        stats = uniform_stats("radix", n, p, r)
        assert stats.passes == n_passes(r, 31)
        assert len(stats.radix_passes) == stats.passes
        ps = stats.radix_passes[0]
        assert ps.comm.bytes_matrix.shape == (p, p)
        # Traffic conserves the keys: every row moves n/p keys' bytes.
        assert ps.comm.bytes_matrix.sum() == pytest.approx(n * 4)
        assert (ps.comm.chunks_matrix >= 1.0).all()
        assert 0.0 < ps.locality <= 1.0
        assert 1 <= ps.active_buckets <= 1 << r

    def test_sample_shapes(self):
        n, p, r = 1 << 14, 16, 11
        stats = uniform_stats("sample", n, p, r)
        assert stats.local1 is not None and stats.local2 is not None
        assert stats.distribute is not None
        assert stats.local1.counts.sum() == pytest.approx(n)
        assert stats.distribute.bytes_matrix.sum() == pytest.approx(n * 4)


class TestMeasuredStats:
    def test_radix_traffic_conserves_keys(self):
        p = 8
        keys = generate("gauss", 1 << 12, p)
        stats = measured_stats(keys, "radix", p, 8)
        for ps in stats.radix_passes:
            assert ps.comm.bytes_matrix.sum() == pytest.approx(len(keys) * 4)

    def test_scale_extrapolation(self):
        """Labeled statistics are the actual draw's, scaled up."""
        p = 8
        keys = generate("gauss", 1 << 12, p)
        small = measured_stats(keys, "radix", p, 8)
        big = measured_stats(keys, "radix", p, 8, n_labeled=1 << 16)
        assert big.n == 1 << 16
        ratio = (
            big.radix_passes[0].comm.bytes_matrix.sum()
            / small.radix_passes[0].comm.bytes_matrix.sum()
        )
        assert ratio == pytest.approx(16.0)

    def test_sample_distribute_counts(self):
        p = 8
        keys = generate("gauss", 1 << 12, p)
        stats = measured_stats(keys, "sample", p, 11)
        assert stats.distribute.bytes_matrix.sum() == pytest.approx(
            len(keys) * 4
        )
        # Second local sort sees exactly the distributed keys.
        assert stats.local2.counts.sum() == pytest.approx(len(keys))

    def test_zero_distribution_degenerate_histogram(self):
        """All-equal keys concentrate every pass in one bucket."""
        p = 8
        keys = np.zeros(1 << 10, dtype=np.int64)
        stats = measured_stats(keys, "radix", p, 8)
        assert stats.radix_passes[0].active_buckets == 1


class TestFamilyStats:
    def test_uniform_shortcut(self):
        a = family_stats(None, "radix", 1 << 14, 16, 8)
        b = uniform_stats("radix", 1 << 14, 16, 8)
        assert a.radix_passes[0].comm.bytes_matrix.sum() == pytest.approx(
            b.radix_passes[0].comm.bytes_matrix.sum()
        )

    def test_memoized_across_models(self):
        a = family_stats("gauss", "radix", 1 << 20, 16, 8)
        b = family_stats("gauss", "radix", 1 << 20, 16, 8)
        assert a is b

    def test_labeled_size_respected(self):
        stats = family_stats("gauss", "radix", 1 << 24, 16, 8)
        assert stats.n == 1 << 24
        assert stats.radix_passes[0].comm.bytes_matrix.sum() == pytest.approx(
            (1 << 24) * 4
        )
