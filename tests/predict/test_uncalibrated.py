"""The predictor must *reject* machines with no calibration artifact.

A silent mis-prediction on an uncalibrated machine kind is worse than an
error: the closed forms and the calibration factors were fitted against
the Origin2000 cost model, so numbers for the zoo machines would look
plausible and be wrong.  The typed
:class:`~repro.predict.calibration.UncalibratedMachineError` makes the
gap explicit and machine-handleable.
"""

import numpy as np
import pytest

from repro.backend import SortJob, get_backend
from repro.data import generate
from repro.machine.zoo import get_machine
from repro.predict import PredictedBackend
from repro.predict.calibration import (
    CALIBRATED_KINDS,
    UncalibratedMachineError,
    check_machine_calibrated,
)

N, P = 16 * 64, 16


@pytest.fixture(scope="module")
def keys():
    return generate("gauss", N, P)


class TestCheck:
    def test_default_machine_is_calibrated(self):
        check_machine_calibrated(None)  # no raise: None = default origin2000
        check_machine_calibrated(get_machine("origin2000", n_procs=P))

    @pytest.mark.parametrize("name", ["multicore", "bsp", "ap1000"])
    def test_zoo_kinds_rejected_with_kind_attached(self, name):
        machine = get_machine(name, n_procs=P)
        with pytest.raises(UncalibratedMachineError) as exc_info:
            check_machine_calibrated(machine)
        assert exc_info.value.machine_kind == machine.kind
        # The message names the gap and the covered kinds.
        assert machine.kind in str(exc_info.value)
        assert "calibration" in str(exc_info.value)

    def test_error_is_a_value_error(self):
        """Callers catching ValueError (the backend seam's input-error
        contract) also catch the calibration rejection."""
        assert issubclass(UncalibratedMachineError, ValueError)

    def test_calibrated_kinds_is_the_paper_machine(self):
        assert CALIBRATED_KINDS == ("ccdsm",)


class TestBackendIntegration:
    @pytest.mark.parametrize("name", ["multicore", "bsp", "ap1000"])
    def test_predict_backend_rejects_before_predicting(self, keys, name):
        job = SortJob(
            keys=keys, algorithm="radix", model="mpi-new", n_procs=P,
            machine=get_machine(name, n_procs=P),
        )
        with pytest.raises(UncalibratedMachineError):
            PredictedBackend(calibration=False).run(job)
        with pytest.raises(UncalibratedMachineError):
            get_backend("predict").run(job)

    def test_simulated_backend_still_accepts_zoo_machines(self, keys):
        """The rejection is the predictor's, not the machine's: the same
        job simulates fine."""
        job = SortJob(
            keys=keys, algorithm="radix", model="mpi-new", n_procs=P,
            machine=get_machine("bsp", n_procs=P),
        )
        result = get_backend("sim").run(job)
        assert np.array_equal(result.sorted_keys, np.sort(keys))

    def test_origin2000_machine_still_predicts(self, keys):
        machine = get_machine("origin2000", n_procs=P)
        result = PredictedBackend(calibration=False).run(
            SortJob(keys=keys, algorithm="radix", model="mpi-new",
                    n_procs=P, machine=machine)
        )
        assert np.array_equal(result.sorted_keys, np.sort(keys))
