"""CLI (`python -m repro`) tests."""

import pytest

from repro.__main__ import SMALL_GRID, main
from repro.report.experiments import EXPERIMENTS


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_small_grid_covers_all_experiments(self):
        assert set(SMALL_GRID) == set(EXPERIMENTS)

    def test_run_table1_small(self, capsys):
        assert main(["table1", "--small"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "1M" in out

    def test_run_fig4_small(self, capsys):
        assert main(["fig4", "--small"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "BUSY" in out

    def test_no_args_rejected(self):
        with pytest.raises(SystemExit):
            main([])
