"""CLI (`python -m repro`) tests."""

import json

import pytest

from repro.__main__ import SMALL_GRID, main
from repro.report.experiments import EXPERIMENTS


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_small_grid_covers_all_experiments(self):
        assert set(SMALL_GRID) == set(EXPERIMENTS)

    def test_run_table1_small(self, capsys):
        assert main(["table1", "--small"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "1M" in out

    def test_run_fig4_small(self, capsys):
        assert main(["fig4", "--small"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "BUSY" in out

    def test_no_args_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceCLI:
    def test_trace_sim(self, tmp_path, capsys):
        out = tmp_path / "sim.json"
        assert main([
            "trace", "--backend", "sim", "--size", "4096", "--procs", "8",
            "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        stdout = capsys.readouterr().out
        assert "sim/radix" in stdout and "trace events" in stdout

    def test_trace_native(self, tmp_path, capsys):
        out = tmp_path / "native.json"
        assert main([
            "trace", "--backend", "native", "--algorithm", "sample",
            "--size", "20000", "--procs", "2", "--trace-out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"native.sort", "native.phase", "native.task"} <= cats
        assert "native/sample" in capsys.readouterr().out

    def test_experiment_trace_out(self, tmp_path, capsys):
        out = tmp_path / "fig4.json"
        assert main(["fig4", "--small", "--trace-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert any(
            e.get("cat") == "sim.phase" for e in doc["traceEvents"]
        )
        assert "trace events" in capsys.readouterr().err

    def test_rejects_native_backend_for_grid(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig4", "--small", "--backend", "native"])


class TestCacheCLI:
    def test_stats_empty(self, tmp_path, capsys):
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "entries" in out

    def test_populate_then_stats_clear(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig4", "--small"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "run" in out and "entries        0" not in out
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries        0" in capsys.readouterr().out

    def test_gc(self, tmp_path, capsys):
        assert main(["cache", "gc", "--dir", str(tmp_path)]) == 0
        assert "gc removed 0" in capsys.readouterr().out

    def test_bad_action_rejected(self):
        with pytest.raises(SystemExit):
            main(["cache", "frobnicate"])

    def test_no_cache_leaves_dir_empty(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig4", "--small", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        assert "entries        0" in capsys.readouterr().out

    def test_parallel_grid(self, capsys):
        assert main(["fig4", "--small", "--parallel", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "BUSY" in out
