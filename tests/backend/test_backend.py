"""Backend seam tests: resolution, result shape, and sim/native parity."""

import numpy as np
import pytest

from repro.backend import (
    Backend,
    NativeBackend,
    SimulatedBackend,
    SortJob,
    SortResult,
    check_keys,
    get_backend,
    infer_key_bits,
)
from repro.backend.native import report_from_timings
from repro.data import generate
from repro.native.pool import PhaseTiming
from repro.smp.perf import CATEGORIES


class TestRegistry:
    def test_resolution(self):
        assert isinstance(get_backend("sim"), SimulatedBackend)
        assert isinstance(get_backend("simulated"), SimulatedBackend)
        assert isinstance(get_backend("native"), NativeBackend)

    def test_instance_passthrough(self):
        b = SimulatedBackend()
        assert get_backend(b) is b

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")


class TestValidation:
    def test_check_keys(self):
        out = check_keys(np.array([3, 1, 2]), "radix")
        assert out.flags["C_CONTIGUOUS"]
        with pytest.raises(ValueError):
            check_keys(np.array([1]), "quick")
        with pytest.raises(ValueError):
            check_keys(np.zeros((2, 2), dtype=np.int64), "radix")
        with pytest.raises(ValueError):
            check_keys(np.empty(0, dtype=np.int64), "radix")

    def test_infer_key_bits(self):
        assert infer_key_bits(np.array([0])) == 1
        assert infer_key_bits(np.array([255])) == 8
        assert infer_key_bits(np.array([256])) == 9
        assert infer_key_bits(np.empty(0, dtype=np.int64)) == 1

    def test_simulated_rejects_bad_dtypes(self):
        b = SimulatedBackend()
        with pytest.raises(ValueError):
            b.run(SortJob(keys=np.array([-1] * 16), n_procs=16))
        # Float keys are supported via the order-preserving transform at
        # the seam; dtypes with no such mapping still raise.
        result = b.run(SortJob(keys=np.ones(16) * 0.5, n_procs=16))
        assert np.array_equal(result.sorted_keys, np.full(16, 0.5))
        with pytest.raises(TypeError):
            b.run(SortJob(keys=np.ones(16, dtype=complex), n_procs=16))


class TestSimulatedBackend:
    def test_result_shape(self):
        keys = generate("gauss", 16 * 128, 16)
        result = get_backend("sim").run(SortJob(keys=keys, n_procs=16))
        assert isinstance(result, SortResult)
        assert result.backend == "sim"
        assert np.array_equal(result.sorted_keys, np.sort(keys))
        assert result.outcome is not None
        assert result.report.n_procs == 16
        assert result.time_ns == result.report.total_time_ns > 0
        assert result.radix == 8  # the paper's tuned default for radix sort

    def test_sample_default_radix(self):
        keys = generate("gauss", 16 * 128, 16)
        result = get_backend("sim").run(
            SortJob(keys=keys, algorithm="sample", n_procs=16)
        )
        assert result.radix == 11

    def test_key_bits_override_controls_passes(self):
        keys = np.tile(np.arange(256, dtype=np.int64), 16)
        few = SimulatedBackend().run(SortJob(keys=keys, n_procs=16, radix=8))
        assert few.outcome.passes == 1  # inferred 8-bit keys
        full = SimulatedBackend().run(
            SortJob(keys=keys, n_procs=16, radix=8, key_bits=31)
        )
        assert full.outcome.passes == 4  # pinned to the paper's width


class TestNativeBackend:
    def test_result_shape(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 1 << 30, size=20_000, dtype=np.int64)
        result = get_backend("native").run(SortJob(keys=keys, n_procs=2))
        assert result.backend == "native"
        assert np.array_equal(result.sorted_keys, np.sort(keys))
        assert result.model_name is None
        assert result.wall_time_s is not None and result.wall_time_s > 0
        assert result.report.n_procs == 2
        means = result.report.category_means_ns()
        assert set(means) == set(CATEGORIES)
        assert means["BUSY"] > 0
        assert means["LMEM"] == means["RMEM"] == 0.0

    def test_shared_pool_not_closed(self):
        from repro.native import WorkerPool

        rng = np.random.default_rng(6)
        keys = rng.integers(0, 1 << 20, size=8_000, dtype=np.int64)
        with WorkerPool(2, collect_timings=True) as pool:
            backend = NativeBackend(pool=pool)
            r1 = backend.run(SortJob(keys=keys, algorithm="sample"))
            r2 = backend.run(SortJob(keys=keys, algorithm="radix"))
            # Pool survives both runs, and each report only sees its own
            # phases (no leakage across jobs sharing the pool).
            assert pool.run_phase(abs, [-1]) == [1]
        assert np.array_equal(r1.sorted_keys, r2.sorted_keys)
        assert {p.name for p in r1.report.phases} != {
            p.name for p in r2.report.phases
        }

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            get_backend("native").run(
                SortJob(keys=np.empty(0, dtype=np.int64))
            )


class TestReportFromTimings:
    def test_busy_sync_split(self):
        timings = [
            PhaseTiming("a", begin=0.0, end=1.0, tasks=((0.0, 0.6), (0.1, 1.0))),
            # 0.5 s parent-side gap, then a second phase.
            PhaseTiming("b", begin=1.5, end=2.0, tasks=((1.5, 2.0), (1.5, 1.6))),
        ]
        report = report_from_timings(timings, wall_s=2.0, label="t")
        assert report.n_procs == 2
        names = [p.name for p in report.phases]
        assert names == ["a", "coordinate", "b"]
        c0, c1 = report.counters
        assert c0.busy_ns == pytest.approx((0.6 + 0.5) * 1e9)
        # sync = (phase walls - busy) + coordinate gap
        assert c0.sync_ns == pytest.approx((0.4 + 0.0 + 0.5) * 1e9)
        assert c1.busy_ns == pytest.approx((0.9 + 0.1) * 1e9)
        assert c1.sync_ns == pytest.approx((0.1 + 0.4 + 0.5) * 1e9)
        # Every worker's total equals the phased region's wall-clock.
        for c in report.counters:
            assert c.total_ns == pytest.approx(2.0 * 1e9)

    def test_degenerate_no_phases(self):
        report = report_from_timings([], wall_s=0.25, label="t")
        assert report.n_procs == 1
        assert report.total_time_ns == pytest.approx(0.25e9)

    def test_uneven_task_counts(self):
        timings = [
            PhaseTiming("a", 0.0, 1.0, ((0.0, 1.0), (0.0, 0.5))),
            PhaseTiming("b", 1.0, 2.0, ((1.0, 2.0),)),
        ]
        report = report_from_timings(timings, wall_s=2.0, label="t")
        assert report.n_procs == 2
        # Worker 1 had no task in phase b: all of it is sync.
        assert report.counters[1].sync_ns == pytest.approx(1.5e9)


@pytest.mark.parametrize("algorithm", ["radix", "sample"])
@pytest.mark.parametrize("distribution", ["gauss", "random", "bucket"])
class TestBackendParity:
    """The acceptance bar: one SortJob, two substrates, identical keys out,
    same report shape."""

    def test_parity(self, algorithm, distribution):
        n_procs = 4
        keys = generate(distribution, n_procs * 2048, n_procs)
        job = SortJob(keys=keys, algorithm=algorithm, n_procs=n_procs)
        results = {
            name: get_backend(name).run(job) for name in ("sim", "native")
        }
        expected = np.sort(keys)
        mats = {}
        for name, result in results.items():
            assert np.array_equal(result.sorted_keys, expected), name
            assert result.algorithm == algorithm
            mat = result.report.category_matrix()
            assert mat.shape[1] == 4
            assert np.isfinite(mat).all() and (mat >= 0).all()
            assert result.report.total_time_ns > 0
            assert result.report.phases, name
            mats[name] = mat
        # Same report vocabulary; per-category means all retrievable.
        assert set(results["sim"].report.category_means_ns()) == set(
            results["native"].report.category_means_ns()
        )
