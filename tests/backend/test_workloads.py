"""Property tests for the widened workload matrix at the backend seam.

Every property drives all three backends through the same
:class:`~repro.backend.SortJob` and compares against the NumPy oracle
(``np.sort`` for keys, stable ``np.argsort`` for records):

- IEEE doubles through the order-preserving transform, including the
  corners the transform's policy defines (-0.0 vs 0.0, infinities, NaN);
- 64-bit keys exercised near ``2**64``, where a sign-confused transform
  or a 63-bit truncation would reorder;
- key+payload record sorts: the payload must follow its key under the
  *stable* permutation (equal keys keep input order);
- the adversarial generators (duplicate-heavy, anti-sampling) on every
  backend.

The native backend shares one small worker pool across the module so the
properties don't pay fork startup per example.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.backend import SortJob, get_backend
from repro.backend.native import NativeBackend
from repro.data.workloads import (
    Workload,
    float_to_sortable_u64,
    make_workload,
    reference_sort,
    sortable_u64_to_float,
    workloads_equal,
)
from repro.native.pool import WorkerPool
from repro.predict import PredictedBackend

P = 4  # simulated processors; every generated n divides by it

SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def backends():
    with WorkerPool(2, collect_timings=True) as pool:
        yield {
            "sim": get_backend("sim"),
            "native": NativeBackend(pool),
            "predict": PredictedBackend(calibration=False),
        }


def _run_all(backends, keys, payload=None, algorithm="sample"):
    """Sort the same workload on all three backends; yield (name, got)."""
    for name, backend in backends.items():
        job = SortJob(
            keys=keys.copy(),
            algorithm=algorithm,
            model="shmem",
            n_procs=P if name != "native" else None,
            payload=None if payload is None else payload.copy(),
        )
        result = backend.run(job)
        yield name, Workload("prop", result.sorted_keys, result.payload)


def _pad_to_p(values, fill):
    """Round a drawn list up to a non-empty multiple of P."""
    values = list(values)
    while not values or len(values) % P:
        values.append(fill)
    return values


# ----------------------------------------------------------------------
# Float keys: -0.0, infinities, NaN
# ----------------------------------------------------------------------
@given(
    drawn=st.lists(
        st.floats(allow_nan=True, allow_infinity=True, width=64)
        | st.sampled_from([-0.0, 0.0, np.inf, -np.inf, float("nan")]),
        min_size=P,
        max_size=64,
    )
)
@settings(**SETTINGS)
def test_float_keys_match_numpy_on_every_backend(backends, drawn):
    keys = np.array(_pad_to_p(drawn, 0.5), dtype=np.float64)
    reference = reference_sort(Workload("prop", keys))
    for name, got in _run_all(backends, keys):
        assert workloads_equal(got, reference), (
            f"{name} disagrees with np.sort on {keys!r}"
        )


@given(
    keys=npst.arrays(
        np.float64,
        st.integers(1, 48),
        elements=st.floats(allow_nan=False, allow_infinity=True, width=64),
    )
)
@settings(**SETTINGS)
def test_float_transform_roundtrips_and_preserves_order(keys):
    """The sign-flip transform is an order isomorphism and (NaN aside)
    a bijection -- the property every backend's correctness rests on."""
    codes = float_to_sortable_u64(keys)
    assert np.array_equal(sortable_u64_to_float(codes), keys)
    order_f = np.argsort(keys, kind="stable")
    assert np.array_equal(np.sort(keys), sortable_u64_to_float(np.sort(codes)))
    del order_f


# ----------------------------------------------------------------------
# 64-bit keys near 2**64
# ----------------------------------------------------------------------
@given(
    drawn=st.lists(
        st.integers(2**64 - 2**16, 2**64 - 1)
        | st.integers(2**63 - 2**10, 2**63 + 2**10)
        | st.integers(0, 2**20),
        min_size=P,
        max_size=64,
    )
)
@settings(**SETTINGS)
def test_u64_keys_near_top_of_range_on_every_backend(backends, drawn):
    keys = np.array(_pad_to_p(drawn, 2**64 - 1), dtype=np.uint64)
    reference = reference_sort(Workload("prop", keys))
    for name, got in _run_all(backends, keys):
        assert workloads_equal(got, reference), (
            f"{name} disagrees with np.sort near 2**64"
        )


# ----------------------------------------------------------------------
# Key+payload records: permutation consistency
# ----------------------------------------------------------------------
@given(
    drawn=st.lists(st.integers(0, 7), min_size=P, max_size=64),
    algorithm=st.sampled_from(["radix", "sample"]),
)
@settings(**SETTINGS)
def test_payload_follows_key_stably_on_every_backend(backends, drawn, algorithm):
    keys = np.array(_pad_to_p(drawn, 3), dtype=np.int64)
    payload = np.arange(len(keys), dtype=np.int64) * 11 + 5
    reference = reference_sort(Workload("prop", keys, payload))
    for name, got in _run_all(backends, keys, payload, algorithm):
        assert workloads_equal(got, reference), (
            f"{name}/{algorithm}: payload did not follow its key under "
            f"the stable permutation for keys {keys!r}"
        )
        # The payload is a permutation of the input, not a copy artifact.
        assert np.array_equal(np.sort(got.payload), np.sort(payload))


# ----------------------------------------------------------------------
# Adversarial generators on every backend
# ----------------------------------------------------------------------
@given(
    kind=st.sampled_from(["dupheavy", "antisample"]),
    seed=st.integers(1, 1000),
    algorithm=st.sampled_from(["radix", "sample"]),
)
@settings(**SETTINGS)
def test_adversarial_distributions_on_every_backend(
    backends, kind, seed, algorithm
):
    w = make_workload(kind, 16 * P, P, seed=seed)
    reference = reference_sort(w)
    for name, got in _run_all(backends, w.keys, algorithm=algorithm):
        assert workloads_equal(got, reference), (
            f"{name}/{algorithm} disagrees with np.sort on "
            f"{kind} seed={seed}"
        )
