"""Property tests at the backend seam: for arbitrary keys, processor
counts, radix widths and programming models, ``sort()`` returns the
sorted permutation of its input and a self-consistent PerfReport -- on
both backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import sort
from repro.verify import Sanitizer, check_report, use_sanitizer

RADIX_MODELS = ["ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem"]
SAMPLE_MODELS = ["ccsas", "mpi-new", "mpi-sgi", "shmem"]


@st.composite
def sim_workload(draw, models):
    p = draw(st.sampled_from([2, 4, 8]))
    per = draw(st.integers(min_value=1, max_value=32))
    keys = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 20) - 1),
            min_size=p * per,
            max_size=p * per,
        )
    )
    model = draw(st.sampled_from(models))
    radix = draw(st.sampled_from([4, 8, 11]))
    return np.asarray(keys, dtype=np.int64), p, model, radix


def _assert_seam_contract(result, keys, p):
    assert np.array_equal(result.sorted_keys, np.sort(keys))
    assert result.report.n_procs == p
    check_report(result.report, label=f"{result.backend}/{result.algorithm}")
    assert result.time_ns > 0


@given(work=sim_workload(RADIX_MODELS))
@settings(max_examples=25, deadline=None)
def test_sim_radix_sorts_any_workload(work):
    keys, p, model, radix = work
    with use_sanitizer(Sanitizer()) as san:
        result = sort(
            keys, algorithm="radix", model=model, n_procs=p, radix=radix
        )
    _assert_seam_contract(result, keys, p)
    assert not san.violations


@given(work=sim_workload(SAMPLE_MODELS))
@settings(max_examples=25, deadline=None)
def test_sim_sample_sorts_any_workload(work):
    keys, p, model, radix = work
    with use_sanitizer(Sanitizer()) as san:
        result = sort(
            keys, algorithm="sample", model=model, n_procs=p, radix=radix
        )
    _assert_seam_contract(result, keys, p)
    assert not san.violations


@pytest.fixture(scope="module")
def shared_pool():
    from repro.native.pool import WorkerPool

    pool = WorkerPool(2, collect_timings=True)
    yield pool
    pool.close()


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=(1 << 20) - 1),
        min_size=2,
        max_size=256,
    ),
    algorithm=st.sampled_from(["radix", "sample"]),
)
@settings(max_examples=10, deadline=None)
def test_native_sorts_any_workload(shared_pool, keys, algorithm):
    from repro.backend.native import NativeBackend

    arr = np.asarray(keys, dtype=np.int64)
    with use_sanitizer(Sanitizer()) as san:
        result = sort(arr, algorithm=algorithm, backend=NativeBackend(shared_pool))
    assert np.array_equal(result.sorted_keys, np.sort(arr))
    check_report(result.report, label=f"native/{algorithm}")
    assert not san.violations
