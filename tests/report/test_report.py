"""Report/rendering tests plus smoke runs of the experiment harnesses."""

import pytest

from repro.core.experiment import ExperimentRunner
from repro.report import (
    EXPERIMENTS,
    bar_chart,
    breakdown_panel,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    format_table,
    grouped_series,
    per_proc_strip,
    table1,
    tables2_and_3,
)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(l) for l in lines[1:]} ) <= 2  # header sep may differ

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5], [0.1234], [12.34]])
        assert "1,234" in text or "1,235" in text
        assert "0.12" in text


class TestFigures:
    def test_bar_chart_scales(self):
        text = bar_chart({"a": 1.0, "bb": 2.0}, title="T", unit="x")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[2].count("#") == 2 * lines[1].count("#")

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="empty") == "empty"

    def test_grouped_series(self):
        text = grouped_series({"g1": {"a": 1.0}, "g2": {"a": 2.0}}, "All")
        assert "-- g1 --" in text and "-- g2 --" in text

    def test_breakdown_panel(self):
        text = breakdown_panel("m", {"BUSY": 5e6, "SYNC": 5e6}, 1e7)
        assert "BUSY" in text and "50.0%" in text

    def test_per_proc_strip(self):
        strip = per_proc_strip([0.0, 5.0, 10.0], "x")
        assert strip.startswith("x[")
        assert len(strip) == len("x[]") + 3


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


SMALL = dict(sizes=["1M"], procs=[16])


class TestHarnesses:
    def test_registry_complete(self):
        expected = {f"fig{i}" for i in range(1, 11)} | {
            "table1", "tables2_and_3", "summary", "predict_compare",
            "native_path", "stream_path", "machine_zoo",
        }
        assert set(EXPERIMENTS) == expected

    def test_table1(self, runner):
        res = table1(runner, sizes=["1M"])
        assert "1M" in res.data
        assert "paper" in res.text

    def test_figure1(self, runner):
        res = figure1(runner, **SMALL)
        cell = res.data["1M/16p"]
        assert cell["mpi-new"] > cell["mpi-sgi"]
        assert "Figure 1" in res.text

    def test_figure3(self, runner):
        res = figure3(runner, **SMALL)
        assert set(res.data["1M/16p"]) == {"shmem", "ccsas", "mpi-new", "ccsas-new"}

    def test_figure4(self, runner):
        res = figure4(runner, size="1M", n_procs=16)
        assert set(res.data) == {"ccsas", "ccsas-new", "mpi-new", "shmem"}
        for panel in res.data.values():
            assert panel["total_ns"] > 0
            assert len(panel["per_proc_total_ns"]) == 16

    def test_figure5(self, runner):
        res = figure5(runner, sizes=["1M"], n_procs=16,
                      distributions=["gauss", "local"])
        assert res.data["1M"]["gauss"] == pytest.approx(1.0)
        assert res.data["1M"]["local"] < 1.0

    def test_figure6(self, runner):
        res = figure6(runner, sizes=["1M"], n_procs=16, radix_range=range(7, 9))
        assert res.data["1M"]["r=8"] == pytest.approx(1.0)

    def test_tables2_and_3(self, runner):
        t2, t3 = tables2_and_3(
            runner, sizes=["1M"], procs=[16], radix_choices=[8, 11],
            radix_models=["shmem"], sample_models=["ccsas"],
        )
        assert t2.data["radix"]["1M"][16] > 0
        assert t3.data["radix"]["1M"][16] == ("shmem", 8) or \
            t3.data["radix"]["1M"][16] == ("shmem", 11)
        assert "Table 2" in t2.text and "Table 3" in t3.text


class TestProfile:
    def test_profile_structure(self, runner):
        from repro.core.experiment import RunSpec
        from repro.report import format_profile, profile_by_step, profile_outcome

        out = runner.run(RunSpec("radix", "shmem", 1 << 16, 16, 8))
        profs = profile_outcome(out)
        assert len(profs) == len(out.report.phases)
        # Radix structure: histogram/exchange/barrier steps appear per pass.
        steps = profile_by_step(out)
        for step in ("histogram", "exchange", "barrier"):
            assert step in steps, steps
        for p in profs:
            assert p.max_ns >= p.mean_ns >= 0
            assert p.imbalance >= 1.0 or p.mean_ns == 0

    def test_format_profile(self, runner):
        from repro.core.experiment import RunSpec
        from repro.report import format_profile

        out = runner.run(RunSpec("sample", "ccsas", 1 << 16, 16, 11))
        text = format_profile(out)
        assert "localsort1" in text
        assert "distribute" in text

    def test_min_ns_filter(self, runner):
        from repro.core.experiment import RunSpec
        from repro.report import format_profile

        out = runner.run(RunSpec("radix", "shmem", 1 << 16, 16, 8))
        full = format_profile(out)
        filtered = format_profile(out, min_ns=1e18)
        assert len(filtered.splitlines()) < len(full.splitlines())


class TestSummaryExperiment:
    def test_summary_small(self, runner):
        from repro.report import summary

        res = summary(runner, sizes=["1M"], procs=[16])
        cell = res.data["1M/16p"]
        assert cell["winner"] in cell["times_ns"]
        assert cell["keys_per_proc"] == (1 << 20) // 16
        assert "best" in res.text
