"""The machine-readable benchmark emitter and its checked-in baseline."""

import json
import math
import pathlib

import numpy as np

from repro.report.emit import (
    SCHEMA_VERSION,
    results_to_document,
    to_jsonable,
    write_results_json,
)
from repro.report.experiments import ExperimentResult

BENCH_BASELINE = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "BENCH_0.json"
)


def test_to_jsonable_converts_numpy_and_nonfinite():
    out = to_jsonable(
        {
            "arr": np.arange(3),
            "f32": np.float32(1.5),
            "i64": np.int64(7),
            "nan": float("nan"),
            "inf": np.inf,
            "flag": np.bool_(True),
            "nested": [(1, 2), {3}],
            16: "int key",
        }
    )
    assert out["arr"] == [0, 1, 2]
    assert out["f32"] == 1.5 and isinstance(out["f32"], float)
    assert out["i64"] == 7 and isinstance(out["i64"], int)
    assert out["nan"] is None and out["inf"] is None
    assert out["flag"] is True
    assert out["nested"] == [[1, 2], [3]]
    assert out["16"] == "int key"  # JSON keys are strings
    json.dumps(out, allow_nan=False)  # strict JSON throughout


def test_write_results_json_round_trips(tmp_path):
    results = [
        ExperimentResult(
            exp_id="t",
            description="demo",
            data={"x": np.float64(2.0), "ys": np.array([1.0, math.nan])},
            text="ignored",
            paper_reference={"x": 1},
        )
    ]
    path = write_results_json(tmp_path / "out.json", results, meta={"k": "v"})
    doc = json.loads(path.read_text())
    assert doc["schema_version"] == SCHEMA_VERSION
    assert doc["meta"] == {"k": "v"}
    (r,) = doc["results"]
    assert r["exp_id"] == "t"
    assert r["data"] == {"x": 2.0, "ys": [1.0, None]}
    assert "text" not in r  # JSON is for numbers, not rendering


def test_checked_in_baseline_is_valid():
    doc = json.loads(BENCH_BASELINE.read_text())
    assert doc["schema_version"] == SCHEMA_VERSION
    ids = [r["exp_id"] for r in doc["results"]]
    assert "table1" in ids
    for r in doc["results"]:
        assert r["data"], f"{r['exp_id']} baseline has no data"
