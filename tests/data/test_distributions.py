"""Tests for the paper's eight key distributions (Section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DISTRIBUTIONS,
    DistributionSpec,
    EXTRA_DISTRIBUTIONS,
    KEY_DTYPE,
    MAX_KEY,
    PAPER_ORDER,
    generate,
)

ALL = sorted(DISTRIBUTIONS)


class TestGeneric:
    @pytest.mark.parametrize("name", ALL)
    def test_shape_dtype_range(self, name):
        keys = generate(name, 4096, 16, radix=8, seed=3)
        assert keys.shape == (4096,)
        assert keys.dtype == KEY_DTYPE
        assert keys.min() >= 0
        assert keys.max() < MAX_KEY

    @pytest.mark.parametrize("name", ALL)
    def test_deterministic_per_seed(self, name):
        a = generate(name, 1024, 8, radix=8, seed=5)
        b = generate(name, 1024, 8, radix=8, seed=5)
        c = generate(name, 1024, 8, radix=8, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            generate("nope", 64, 4)

    def test_indivisible_n(self):
        with pytest.raises(ValueError):
            generate("random", 100, 7)

    @pytest.mark.parametrize("seed", [0, -1])
    def test_nonpositive_seed_rejected(self, seed):
        """Seeds are 1-based LCG stream indices; seed 0 used to surface
        as a raw uint64 OverflowError from inside the NAS recurrence."""
        with pytest.raises(ValueError, match="seed"):
            generate("gauss", 64, 4, seed=seed)
        with pytest.raises(ValueError, match="seed"):
            DistributionSpec("gauss", 64, 4, seed=seed)

    def test_paper_order_covers_all(self):
        # The paper's eight plus the adversarial extras make up the
        # registry; PAPER_ORDER lists exactly the paper's ones.
        assert sorted(PAPER_ORDER + EXTRA_DISTRIBUTIONS) == ALL


class TestSpec:
    def test_valid(self):
        spec = DistributionSpec("gauss", 1024, 8)
        keys = spec.generate()
        assert keys.shape == (1024,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="bad", n=64, p=4),
            dict(name="gauss", n=0, p=4),
            dict(name="gauss", n=63, p=4),
            dict(name="gauss", n=64, p=4, radix=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            DistributionSpec(**kwargs)


class TestGauss:
    def test_bell_shape(self):
        """Average-of-4-uniforms concentrates around MAX/2."""
        keys = generate("gauss", 1 << 16, 1)
        mean = keys.mean() / MAX_KEY
        assert 0.48 < mean < 0.52
        middle = np.sum((keys > MAX_KEY // 4) & (keys < 3 * MAX_KEY // 4))
        assert middle / len(keys) > 0.85  # far above uniform's 0.5


class TestZero:
    def test_every_tenth_zero(self):
        keys = generate("zero", 1000, 10)
        assert np.all(keys[9::10] == 0)
        # Other positions are rarely zero.
        others = np.delete(keys, np.s_[9::10])
        assert (others == 0).mean() < 0.01


class TestBucket:
    def test_subblocks_in_value_ranges(self):
        p, n = 4, 4 * 4 * 32
        keys = generate("bucket", n, p)
        n_per, width = n // p, MAX_KEY // p
        sub = n_per // p
        for i in range(p):
            for j in range(p):
                block = keys[i * n_per + j * sub : i * n_per + (j + 1) * sub]
                assert block.min() >= j * width
                if j < p - 1:
                    assert block.max() < (j + 1) * width

    def test_needs_divisible_subblocks(self):
        with pytest.raises(ValueError):
            generate("bucket", 4 * 2, 4)  # n/p = 2 not divisible by p


class TestStagger:
    def test_each_partition_one_range(self):
        p, n = 8, 8 * 64
        keys = generate("stagger", n, p)
        n_per, width = n // p, MAX_KEY // p
        for i in range(p):
            j = (2 * i + 1) if i < p // 2 else (2 * i - p)
            j = min(j, p - 1)
            part = keys[i * n_per : (i + 1) * n_per]
            assert part.min() >= j * width
            if j < p - 1:
                assert part.max() < (j + 1) * width

    def test_ranges_distinct_across_partitions(self):
        p, n = 8, 8 * 64
        keys = generate("stagger", n, p)
        n_per, width = n // p, MAX_KEY // p
        ranges = {int(keys[i * n_per] // width) for i in range(p)}
        assert len(ranges) == p  # stagger is a permutation of the ranges


class TestHalf:
    def test_all_even(self):
        keys = generate("half", 4096, 8)
        assert np.all(keys % 2 == 0)

    def test_matches_gauss_otherwise(self):
        g = generate("gauss", 4096, 8, seed=2)
        h = generate("half", 4096, 8, seed=2)
        assert np.array_equal(h, g & ~np.int64(1))


class TestRemoteLocal:
    def test_local_digits_stay_in_own_subrange(self):
        p, r, n = 8, 8, 8 * 128
        keys = generate("local", n, p, radix=r)
        n_per = n // p
        span = (1 << r) // p
        for i in range(p):
            part = keys[i * n_per : (i + 1) * n_per]
            for g in range(31 // r + 1):
                width = min(r, 31 - g * r)
                if width <= 0:
                    break
                digits = (part >> (g * r)) & ((1 << width) - 1)
                # Digits are the own-range digit masked to the group width.
                full = (part >> 0) & ((1 << r) - 1)
                assert np.all(digits == (full & ((1 << width) - 1)))
            first = part & ((1 << r) - 1)
            assert np.all((first >= i * span) & (first < (i + 1) * span))

    def test_remote_first_digit_avoids_own_subrange(self):
        p, r, n = 8, 8, 8 * 256
        keys = generate("remote", n, p, radix=r)
        n_per = n // p
        span = (1 << r) // p
        for i in range(p):
            part = keys[i * n_per : (i + 1) * n_per]
            first = part & ((1 << r) - 1)
            own = (first >= i * span) & (first < (i + 1) * span)
            assert not own.any()

    def test_remote_second_digit_in_own_subrange(self):
        p, r, n = 8, 8, 8 * 256
        keys = generate("remote", n, p, radix=r)
        n_per = n // p
        span = (1 << r) // p
        for i in range(p):
            part = keys[i * n_per : (i + 1) * n_per]
            second = (part >> r) & ((1 << r) - 1)
            assert np.all((second >= i * span) & (second < (i + 1) * span))

    def test_rejects_too_small_radix(self):
        with pytest.raises(ValueError):
            generate("remote", 64, 16, radix=3)  # 2**3 < 16
        with pytest.raises(ValueError):
            generate("local", 64, 16, radix=3)

    def test_local_needs_no_communication(self):
        """The defining property: after any radix pass, keys stay in their
        original partition."""
        from repro.sorts.common import digits_for_pass, proc_histograms, radix_comm_matrices

        p, r, n = 8, 8, 8 * 512
        keys = generate("local", n, p, radix=r)
        digits = digits_for_pass(keys, 0, r)
        hist = proc_histograms(digits, p, r)
        comm = radix_comm_matrices(hist, n // p)
        assert comm.remote_fraction == pytest.approx(0.0, abs=1e-9)

    def test_remote_maximizes_communication(self):
        from repro.sorts.common import digits_for_pass, proc_histograms, radix_comm_matrices

        p, r, n = 8, 8, 8 * 512
        keys = generate("remote", n, p, radix=r)
        digits = digits_for_pass(keys, 0, r)
        hist = proc_histograms(digits, p, r)
        comm = radix_comm_matrices(hist, n // p)
        assert comm.remote_fraction > 0.95


@given(
    name=st.sampled_from(ALL),
    log_n=st.integers(6, 12),
    p=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=40, deadline=None)
def test_any_distribution_any_shape(name, log_n, p):
    if name == "remote" and p < 2:
        p = 2  # remote needs someone else's sub-range to land in
    n = (1 << log_n) * p * p // p  # keep n divisible by p**2 for bucket
    n = max(n, p * p)
    n -= n % (p * p)
    keys = generate(name, n, p, radix=8, seed=1)
    assert keys.min() >= 0 and keys.max() < MAX_KEY


@given(
    name=st.sampled_from(ALL),
    seed=st.integers(1, 2**20),
    log_n=st.integers(6, 11),
    p=st.sampled_from([2, 4, 8]),
)
@settings(max_examples=60, deadline=None)
def test_byte_identical_replay(name, seed, log_n, p):
    """Property: every generator is byte-for-byte deterministic for a
    fixed (seed, n, p, radix) -- the contract the disk cache, the chaos
    harness and the differential checker all build on."""
    n = (1 << log_n)
    n -= n % (p * p)  # bucket needs n/p divisible by p
    n = max(n, p * p)
    a = generate(name, n, p, radix=8, seed=seed)
    b = generate(name, n, p, radix=8, seed=seed)
    assert a.tobytes() == b.tobytes()


@given(
    name=st.sampled_from(ALL),
    seed=st.integers(1, 2**20),
    log_n=st.integers(6, 11),
    p=st.sampled_from([2, 4, 8]),
)
@settings(max_examples=60, deadline=None)
def test_dtype_and_range_bounds(name, seed, log_n, p):
    """Property: every generator honors the paper's key contract --
    KEY_DTYPE keys in [0, MAX_KEY) -- for any seed and valid shape."""
    n = (1 << log_n)
    n -= n % (p * p)
    n = max(n, p * p)
    keys = generate(name, n, p, radix=8, seed=seed)
    assert keys.dtype == KEY_DTYPE
    assert keys.shape == (n,)
    assert keys.min() >= 0
    assert keys.max() < MAX_KEY


def test_remote_rejects_single_process():
    with pytest.raises(ValueError, match="at least 2"):
        generate("remote", 64, 1, radix=8)


def test_stagger_single_process_valid():
    keys = generate("stagger", 64, 1)
    assert keys.min() >= 0 and keys.max() < MAX_KEY
