"""NAS LCG tests: exactness vs a scalar reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.nas_lcg import (
    DEFAULT_A,
    DEFAULT_SEED,
    MOD,
    lcg_sequence,
    lcg_uniform,
    mulmod46,
    powmod46,
)


def scalar_sequence(n, a=DEFAULT_A, seed=DEFAULT_SEED):
    """Ground truth: iterate the recurrence with Python big ints."""
    out = []
    x = seed
    for _ in range(n):
        x = (a * x) % MOD
        out.append(x)
    return out


class TestMulmod:
    @given(st.integers(0, MOD - 1), st.integers(0, MOD - 1))
    @settings(max_examples=200, deadline=None)
    def test_matches_bigint(self, a, b):
        got = mulmod46(np.array([a], dtype=np.uint64), np.array([b], dtype=np.uint64))
        assert int(got[0]) == (a * b) % MOD

    def test_broadcasting(self):
        a = np.arange(5, dtype=np.uint64)
        b = np.array([3], dtype=np.uint64)
        assert list(mulmod46(a, b)) == [0, 3, 6, 9, 12]


class TestPowmod:
    @given(st.integers(0, 2**20))
    @settings(max_examples=100, deadline=None)
    def test_matches_pow(self, k):
        got = powmod46(DEFAULT_A, np.array([k], dtype=np.uint64))
        assert int(got[0]) == pow(DEFAULT_A, k, MOD)

    def test_vector(self):
        ks = np.array([0, 1, 2, 100, 12345], dtype=np.uint64)
        got = powmod46(DEFAULT_A, ks)
        for k, g in zip(ks, got):
            assert int(g) == pow(DEFAULT_A, int(k), MOD)


class TestSequence:
    def test_matches_scalar_reference(self):
        assert list(lcg_sequence(200).astype(object)) == scalar_sequence(200)

    def test_start_index_offsets(self):
        full = lcg_sequence(100)
        tail = lcg_sequence(50, start_index=51)
        assert np.array_equal(full[50:], tail)

    def test_empty_and_negative(self):
        assert lcg_sequence(0).size == 0
        with pytest.raises(ValueError):
            lcg_sequence(-1)

    def test_uniform_range_and_mean(self):
        u = lcg_uniform(20_000)
        assert np.all((u >= 0) & (u < 1))
        assert abs(u.mean() - 0.5) < 0.01

    def test_deterministic(self):
        assert np.array_equal(lcg_sequence(64), lcg_sequence(64))
