"""Analytic cache model vs. the exact LRU reference simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    AnalyticCache,
    BucketedAppend,
    CacheConfig,
    RandomAccess,
    ReferenceCache,
    SequentialScan,
    StridedScan,
)

SMALL = CacheConfig(8 * 1024, 64, 2)  # 128 lines, 64 sets


class TestSequentialScan:
    def test_streaming_misses_once_per_line(self):
        cache = AnalyticCache(SMALL)
        # 4096 4-byte elems = 16 KB = 2x cache: pure streaming.
        stats = cache.misses(SequentialScan(4096, 4))
        assert stats.accesses == 4096
        assert stats.misses == pytest.approx(4096 * 4 / 64)

    def test_resident_fitting_scan_hits(self):
        cache = AnalyticCache(SMALL)
        stats = cache.misses(SequentialScan(1024, 4, resident=True))  # 4 KB fits
        assert stats.misses == 0.0

    def test_resident_flag_ignored_when_too_big(self):
        cache = AnalyticCache(SMALL)
        stats = cache.misses(SequentialScan(4096, 4, resident=True))
        assert stats.misses > 0

    def test_write_scan_beyond_capacity_writes_back(self):
        cache = AnalyticCache(SMALL)
        stats = cache.misses(SequentialScan(4096, 4, is_write=True))
        assert stats.writebacks == pytest.approx(stats.misses)

    def test_write_scan_within_capacity_no_writebacks(self):
        cache = AnalyticCache(SMALL)
        stats = cache.misses(SequentialScan(512, 4, is_write=True))
        assert stats.writebacks == 0.0

    def test_empty_scan(self):
        stats = AnalyticCache(SMALL).misses(SequentialScan(0, 4))
        assert stats.accesses == 0 and stats.misses == 0

    def test_matches_reference_streaming(self):
        ref = ReferenceCache(SMALL)
        addrs = np.arange(4096) * 4
        ref.run(addrs)
        model = AnalyticCache(SMALL).misses(SequentialScan(4096, 4))
        assert model.misses == pytest.approx(ref.stats.misses, rel=0.01)


class TestRandomAccess:
    def test_fitting_footprint_mostly_hits(self):
        cache = AnalyticCache(SMALL)
        stats = cache.misses(RandomAccess(100_000, 4096, 4))
        # Warmup misses only: at most one per line of the 4 KB footprint.
        assert stats.misses <= 4096 / 64 + 1

    def test_oversized_footprint_miss_rate(self):
        cache = AnalyticCache(SMALL)
        stats = cache.misses(RandomAccess(10_000, SMALL.size_bytes * 4, 4))
        assert stats.miss_rate == pytest.approx(0.75, abs=0.02)

    def test_reference_agrees_on_oversized_uniform(self):
        rng = np.random.default_rng(7)
        footprint = SMALL.size_bytes * 4
        addrs = rng.integers(0, footprint, size=20_000) * 1  # byte addresses
        ref = ReferenceCache(SMALL)
        ref.run(addrs)
        model = AnalyticCache(SMALL).misses(RandomAccess(20_000, footprint, 4))
        assert model.miss_rate == pytest.approx(ref.stats.miss_rate, abs=0.08)

    def test_zero_accesses(self):
        stats = AnalyticCache(SMALL).misses(RandomAccess(0, 4096, 4))
        assert stats.accesses == 0


class TestBucketedAppend:
    def test_few_buckets_stream_cleanly(self):
        cache = AnalyticCache(SMALL)
        # 8 buckets x 64-byte lines fit trivially: cold misses only.
        stats = cache.misses(BucketedAppend(16_384, 8, 4, 65_536))
        assert stats.misses == pytest.approx(16_384 * 4 / 64)

    def test_many_buckets_thrash(self):
        cache = AnalyticCache(SMALL)
        # 1024 buckets x 64 B = 64 KB of active lines vs 8 KB cache.
        many = cache.misses(BucketedAppend(16_384, 1024, 4, 1 << 20))
        few = cache.misses(BucketedAppend(16_384, 8, 4, 1 << 20))
        assert many.misses > 4 * few.misses

    def test_locality_suppresses_thrashing(self):
        cache = AnalyticCache(SMALL)
        scattered = cache.misses(BucketedAppend(16_384, 1024, 4, 1 << 20, locality=0.0))
        grouped = cache.misses(BucketedAppend(16_384, 1024, 4, 1 << 20, locality=1.0))
        assert grouped.misses < scattered.misses / 2

    def test_reference_agrees_on_bucketed_pattern(self):
        """Round-robin-ish appends into many buckets measured exactly."""
        rng = np.random.default_rng(3)
        n_buckets, n = 256, 8192
        # Offset bucket bases by an extra line each so they spread across
        # cache sets (a base stride that is a multiple of the way size
        # would alias every bucket into one set -- a pathological conflict
        # layout the analytic capacity model deliberately does not cover).
        bucket_size = 64 * n + 64
        ptrs = np.zeros(n_buckets, dtype=np.int64)
        order = rng.integers(0, n_buckets, size=n)
        addrs = np.empty(n, dtype=np.int64)
        for k, b in enumerate(order):
            addrs[k] = b * bucket_size + ptrs[b] * 4
            ptrs[b] += 1
        ref = ReferenceCache(SMALL)
        ref.run(addrs, is_write=True)
        model = AnalyticCache(SMALL).misses(
            BucketedAppend(n, n_buckets, 4, n_buckets * bucket_size)
        )
        assert model.miss_rate == pytest.approx(ref.stats.miss_rate, abs=0.15)

    def test_invalid_locality(self):
        with pytest.raises(ValueError):
            BucketedAppend(10, 4, 4, 100, locality=1.5)


class TestStridedScan:
    def test_large_stride_misses_every_access(self):
        stats = AnalyticCache(SMALL).misses(StridedScan(100, 4, 256))
        assert stats.misses == 100

    def test_small_stride_shares_lines(self):
        stats = AnalyticCache(SMALL).misses(StridedScan(160, 4, 16))
        assert stats.misses == pytest.approx(160 / 4)


class TestMissStatsInvariants:
    def test_addition(self):
        from repro.machine import MissStats

        total = MissStats(10, 4.0, 1.0) + MissStats(5, 2.0, 0.5)
        assert total.accesses == 15
        assert total.misses == 6.0
        assert total.hits == 9.0

    def test_rejects_misses_above_accesses(self):
        from repro.machine import MissStats

        with pytest.raises(ValueError):
            MissStats(5, 6.0)

    @given(
        n=st.integers(0, 50_000),
        elem=st.sampled_from([1, 2, 4, 8]),
        write=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_sequential_misses_bounded(self, n, elem, write):
        stats = AnalyticCache(SMALL).misses(SequentialScan(n, elem, is_write=write))
        assert 0 <= stats.misses <= stats.accesses
        assert stats.writebacks <= stats.misses + 1e-9

    @given(
        n=st.integers(0, 50_000),
        buckets=st.integers(1, 4096),
        locality=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_bucketed_misses_bounded(self, n, buckets, locality):
        stats = AnalyticCache(SMALL).misses(
            BucketedAppend(n, buckets, 4, max(1, n * 4), locality=locality)
        )
        assert 0 <= stats.misses <= stats.accesses


class TestReferenceCache:
    def test_repeat_access_hits(self):
        ref = ReferenceCache(SMALL)
        assert not ref.access(0)
        assert ref.access(0)
        assert ref.access(63)  # same line
        assert not ref.access(64)  # next line

    def test_lru_eviction_within_set(self):
        cfg = CacheConfig(256, 64, 2)  # 4 lines, 2 sets
        ref = ReferenceCache(cfg)
        # Addresses mapping to set 0: multiples of 128.
        ref.access(0)
        ref.access(128)
        ref.access(256)  # evicts line 0
        assert not ref.access(0)

    def test_dirty_eviction_counts_writeback(self):
        cfg = CacheConfig(256, 64, 2)
        ref = ReferenceCache(cfg)
        ref.access(0, is_write=True)
        ref.access(128)
        ref.access(256)  # evicts dirty line 0
        assert ref.stats.writebacks == 1

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            ReferenceCache(SMALL).access(-1)

    def test_reset(self):
        ref = ReferenceCache(SMALL)
        ref.access(0)
        ref.reset()
        assert ref.stats.accesses == 0
        assert ref.resident_lines == 0
