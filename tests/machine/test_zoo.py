"""The machine-model zoo registry (docs/MACHINES.md): resolution,
aliases, per-kind cost shape, transport gating, and the grid plumbing."""

import numpy as np
import pytest

from repro.machine.config import MACHINE_KINDS, MachineConfig
from repro.machine.zoo import (
    MACHINES,
    SUPPORTED_MODELS,
    UnsupportedTransportError,
    check_transport,
    get_machine,
    supported_models,
)
from repro.smp.phases import Transport


class TestRegistry:
    def test_every_member_resolves_to_its_kind(self):
        kinds = {
            "origin2000": "ccdsm",
            "multicore": "multicore",
            "bsp": "bsp",
            "ap1000": "ap1000",
        }
        assert set(MACHINES) == set(kinds)
        for name, kind in kinds.items():
            machine = get_machine(name, n_procs=16)
            assert machine.kind == kind
            assert machine.n_processors == 16
            assert machine.kind in MACHINE_KINDS

    @pytest.mark.parametrize(
        "alias,canonical",
        [("origin", "origin2000"), ("o2k", "origin2000"), ("smp", "multicore"),
         ("llc", "multicore"), ("bsp-gl", "bsp"), ("ap-1000", "ap1000"),
         ("AP1000", "ap1000")],
    )
    def test_aliases_and_case(self, alias, canonical):
        assert get_machine(alias, n_procs=8) == get_machine(canonical, n_procs=8)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="unknown machine"):
            get_machine("cray-t3e")

    def test_page_bytes_tunes_origin_only(self):
        o2k = get_machine("origin2000", n_procs=16, page_bytes=64 * 1024)
        assert o2k.page_bytes == 64 * 1024
        # Kinds without a meaningful page abstraction ignore the knob.
        assert (
            get_machine("bsp", n_procs=16, page_bytes=64 * 1024)
            == get_machine("bsp", n_procs=16)
        )


class TestKindShape:
    def test_multicore_is_one_uniform_node(self):
        m = get_machine("multicore", n_procs=8)
        assert m.n_nodes == 1
        assert m.remote_base_ns == 0.0

    def test_bsp_carries_g_and_l(self):
        m = MachineConfig.bsp(n_processors=8, g_ns_per_byte=3.0, l_ns=700.0)
        assert (m.bsp_g_ns_per_byte, m.bsp_l_ns) == (3.0, 700.0)
        with pytest.raises(ValueError, match="positive g and L"):
            MachineConfig.bsp(n_processors=8, g_ns_per_byte=0.0)

    def test_ap1000_is_one_proc_per_node(self):
        m = get_machine("ap1000", n_procs=16)
        assert m.procs_per_node == 1
        assert m.n_nodes == 16

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown machine kind"):
            MachineConfig(kind="quantum")


class TestTransportGating:
    def test_ap1000_supports_only_message_passing(self):
        assert SUPPORTED_MODELS["ap1000"] == ("mpi-new", "mpi-sgi")
        assert supported_models(get_machine("ap1000")) == ("mpi-new", "mpi-sgi")
        assert supported_models(get_machine("multicore")) is None

    @pytest.mark.parametrize(
        "transport",
        [Transport.CCSAS_SCATTERED, Transport.CCSAS_BULK, Transport.CCSAS_READ,
         Transport.SHMEM_GET, Transport.SHMEM_PUT],
    )
    def test_shared_address_transports_rejected_on_ap1000(self, transport):
        with pytest.raises(UnsupportedTransportError) as exc_info:
            check_transport(get_machine("ap1000"), transport)
        assert exc_info.value.machine_kind == "ap1000"
        assert exc_info.value.transport == str(transport)

    @pytest.mark.parametrize(
        "transport", [Transport.MPI_NEW, Transport.MPI_SGI]
    )
    def test_message_passing_allowed_on_ap1000(self, transport):
        check_transport(get_machine("ap1000"), transport)  # no raise

    def test_other_kinds_accept_everything(self):
        for name in ("origin2000", "multicore", "bsp"):
            check_transport(get_machine(name), Transport.CCSAS_SCATTERED)

    def test_end_to_end_rejection_is_typed(self):
        """A SHMEM sort on the AP1000 surfaces the typed error through
        the whole backend stack, not a generic failure."""
        from repro.core.api import sort
        from repro.data import generate

        keys = generate("gauss", 256, 4)
        with pytest.raises(UnsupportedTransportError):
            sort(keys, model="shmem", n_procs=4,
                 machine=get_machine("ap1000", n_procs=4))


class TestGridPlumbing:
    def test_runspec_accepts_zoo_machines(self):
        from repro.core.experiment import RunSpec

        spec = RunSpec("radix", "mpi-new", 1 << 20, 16, 8, machine="bsp")
        assert "@bsp" in spec.cell_label()
        default = RunSpec("radix", "mpi-new", 1 << 20, 16, 8)
        assert "@" not in default.cell_label()

    def test_runspec_rejects_unknown_machine(self):
        from repro.core.experiment import RunSpec

        with pytest.raises(ValueError, match="machine"):
            RunSpec("radix", "mpi-new", 1 << 20, 16, 8, machine="cray")

    @pytest.mark.parametrize("name", sorted(MACHINES))
    def test_every_machine_sorts_correctly(self, name):
        """One end-to-end sort per zoo member: output equals np.sort."""
        from repro.core.api import sort
        from repro.data import generate
        from repro.verify.differential import machine_model

        keys = generate("gauss", 512, 8)
        machine = None if name == "origin2000" else get_machine(name, n_procs=8)
        result = sort(
            keys, algorithm="sample", model=machine_model(name),
            n_procs=8, machine=machine,
        )
        assert np.array_equal(result.sorted_keys, np.sort(keys))
        assert result.time_ns > 0
