"""Directory-protocol accounting tests."""

import numpy as np
import pytest

from repro.machine import DirectoryProtocol, MachineConfig

M16 = MachineConfig.origin2000(n_processors=16, scale=1)


def uniform_traffic(p, bytes_per_pair, local_too=False):
    t = np.full((p, p), float(bytes_per_pair))
    if not local_too:
        np.fill_diagonal(t, 0.0)
    return t


class TestRemoteWriteLoad:
    def test_local_writes_free(self):
        d = DirectoryProtocol(M16)
        t = np.zeros((16, 16))
        t[3, 3] = 1 << 20
        loads = d.remote_write_load(t, scattered=True)
        assert loads[3].transactions == 0.0
        assert loads[3].stall_ns == 0.0

    def test_transactions_proportional_to_lines(self):
        d = DirectoryProtocol(M16)
        loads = d.remote_write_load(uniform_traffic(16, 128 * 100), True)
        # 15 destinations x 100 lines x 4 transactions each.
        assert loads[0].transactions == pytest.approx(15 * 100 * 4)

    def test_scattered_costs_more_than_bulk(self):
        d = DirectoryProtocol(M16)
        t = uniform_traffic(16, 1 << 18)
        scat = d.remote_write_load(t, scattered=True)
        bulk = d.remote_write_load(t, scattered=False)
        assert scat[0].stall_ns > bulk[0].stall_ns

    def test_load_dependent_degradation(self):
        """Per-byte stall grows as node load approaches saturation."""
        d = DirectoryProtocol(M16)
        lo = d.remote_write_load(uniform_traffic(16, 1 << 10), True)
        hi = d.remote_write_load(uniform_traffic(16, 1 << 19), True)
        per_byte_lo = lo[0].stall_ns / (15 * (1 << 10))
        per_byte_hi = hi[0].stall_ns / (15 * (1 << 19))
        assert per_byte_hi > 1.5 * per_byte_lo

    def test_bulk_unaffected_by_load_level(self):
        d = DirectoryProtocol(M16)
        lo = d.remote_write_load(uniform_traffic(16, 1 << 10), False)
        hi = d.remote_write_load(uniform_traffic(16, 1 << 19), False)
        per_byte_lo = lo[0].stall_ns / (15 * (1 << 10))
        per_byte_hi = hi[0].stall_ns / (15 * (1 << 19))
        assert per_byte_hi == pytest.approx(per_byte_lo, rel=0.05)

    def test_fewer_writers_less_contention(self):
        """The p-scaling of hot-spotting: the same per-writer traffic from
        fewer writers stalls less per line."""
        d = DirectoryProtocol(M16)
        full = uniform_traffic(16, 1 << 16)
        sparse = np.zeros((16, 16))
        sparse[0, 8] = 15 * (1 << 16)  # one writer, same total from it
        loads_full = d.remote_write_load(full, True)
        loads_sparse = d.remote_write_load(sparse, True)
        lines = 15 * (1 << 16) / 128
        assert loads_sparse[0].stall_ns / lines < loads_full[0].stall_ns / lines

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            DirectoryProtocol(M16).remote_write_load(np.zeros((4, 4)), True)

    def test_zero_traffic(self):
        d = DirectoryProtocol(M16)
        loads = d.remote_write_load(np.zeros((16, 16)), True)
        assert all(l.stall_ns == 0 for l in loads)
